"""Tests for the whole-graph valency decomposition."""

from repro.analysis.valency_map import build_valency_map
from repro.core.valency import Valency


class TestValencyMap:
    def test_census_totals(self, arbiter3, arbiter3_analyzer):
        root = arbiter3.initial_configuration([0, 0, 1])
        vmap = build_valency_map(arbiter3, root, analyzer=arbiter3_analyzer)
        assert vmap.complete
        assert vmap.total > 0
        assert sum(vmap.counts.values()) == vmap.total
        assert vmap.counts[Valency.BIVALENT] >= 1

    def test_univalent_root_has_no_bivalent_region(
        self, arbiter3, arbiter3_analyzer
    ):
        root = arbiter3.initial_configuration([0, 0, 0])
        vmap = build_valency_map(arbiter3, root, analyzer=arbiter3_analyzer)
        assert Valency.BIVALENT not in vmap.counts
        assert vmap.bivalent_fraction == 0.0
        assert vmap.critical_steps == ()

    def test_critical_steps_are_real_edges(self, arbiter3, arbiter3_analyzer):
        root = arbiter3.initial_configuration([0, 0, 1])
        vmap = build_valency_map(arbiter3, root, analyzer=arbiter3_analyzer)
        assert vmap.critical_steps
        for step in vmap.critical_steps:
            assert (
                arbiter3_analyzer.valency(step.source) is Valency.BIVALENT
            )
            target = arbiter3.apply_event(step.source, step.event)
            assert target == step.target
            assert (
                arbiter3_analyzer.valency(target) is step.target_valency
            )
            assert step.target_valency.is_univalent

    def test_parity_arbiter_critical_steps_exist(
        self, parity_arbiter3, parity_arbiter3_analyzer
    ):
        # Even the eternally-stallable protocol HAS critical steps (the
        # fresh-claim deliveries); the adversary just never takes them.
        root = parity_arbiter3.initial_configuration([0, 0, 1])
        vmap = build_valency_map(
            parity_arbiter3, root, analyzer=parity_arbiter3_analyzer
        )
        assert vmap.critical_steps
        assert 0 < vmap.bivalent_fraction < 1

    def test_summary_mentions_counts(self, arbiter3, arbiter3_analyzer):
        root = arbiter3.initial_configuration([0, 0, 1])
        vmap = build_valency_map(arbiter3, root, analyzer=arbiter3_analyzer)
        text = vmap.summary()
        assert "configurations" in text
        assert "critical steps" in text
