"""FaultedProtocol: exhaustive exploration under the static fragment."""

import pytest

from repro.core.errors import FaultModelError
from repro.core.exploration import GlobalConfigurationGraph
from repro.core.valency import Valency, ValencyAnalyzer
from repro.faults import (
    Crash,
    CrashRecovery,
    Drop,
    FaultedProtocol,
    FaultPlan,
    Omission,
    Partition,
)
from repro.protocols import (
    ArbiterProcess,
    TwoPhaseCommitProcess,
    WaitForAllProcess,
    make_protocol,
)


def test_time_dependent_plans_are_rejected():
    protocol = make_protocol(ArbiterProcess, 3)
    with pytest.raises(FaultModelError):
        FaultedProtocol(protocol, FaultPlan([Crash("p0", 5)]))
    with pytest.raises(FaultModelError):
        FaultedProtocol(protocol, FaultPlan([CrashRecovery("p0", 1, 5)]))
    with pytest.raises(FaultModelError):
        FaultedProtocol(protocol, FaultPlan([Omission("p0", budget=1)]))


def test_unknown_process_rejected():
    protocol = make_protocol(ArbiterProcess, 3)
    with pytest.raises(FaultModelError):
        FaultedProtocol(protocol, FaultPlan([Crash("ghost", 0)]))


def test_dead_processes_take_no_events_and_get_no_mail():
    protocol = make_protocol(WaitForAllProcess, 3)
    faulted = FaultedProtocol(
        protocol, FaultPlan.initially_dead(["p0"])
    )
    initial = faulted.initial_configuration([1, 1, 1])
    events = faulted.enabled_events(initial)
    assert all(event.process != "p0" for event in events)
    # A step by p1 broadcasts votes; the copy to dead p0 is filtered.
    after = faulted.apply_event(initial, events[0])
    assert all(
        message.destination != "p0"
        for message in after.buffer.distinct_messages()
    )
    assert faulted.fault_counters.send_blocks == 0
    assert faulted.fault_counters.dead_exclusions > 0


def test_drop_edges_branch_on_lossy_destinations():
    protocol = make_protocol(WaitForAllProcess, 3)
    faulted = FaultedProtocol(
        protocol, FaultPlan([Omission(destination="p1", budget=None)])
    )
    initial = faulted.initial_configuration([1, 0, 1])
    stepped = faulted.apply_event(
        initial, faulted.enabled_events(initial)[0]
    )
    events = faulted.enabled_events(stepped)
    drops = [e for e in events if isinstance(e.value, Drop)]
    assert drops, "a copy to the lossy destination must offer a drop edge"
    # Dropping removes the copy without touching anyone's state.
    dropped = faulted.apply_event(stepped, drops[0])
    lost = next(
        m
        for m in stepped.buffer.distinct_messages()
        if m.destination == "p1" and m.value == drops[0].value.value
    )
    assert dropped.buffer.count(lost) == stepped.buffer.count(lost) - 1
    for name in faulted.process_names:
        assert dropped.state_of(name) == stepped.state_of(name)
    assert faulted.fault_counters.drop_edges == 1


def test_severed_links_filter_sends():
    protocol = make_protocol(WaitForAllProcess, 3)
    faulted = FaultedProtocol(
        protocol,
        FaultPlan(
            [Partition((frozenset({"p0"}), frozenset({"p1", "p2"})))]
        ),
    )
    initial = faulted.initial_configuration([1, 1, 1])
    stepped = faulted.apply_event(
        initial, faulted.enabled_events(initial)[0]
    )
    # p0's broadcast crosses the cut for p1 and p2: both filtered.
    assert faulted.fault_counters.send_blocks == 2


@pytest.mark.parametrize(
    "plan",
    [
        FaultPlan.initially_dead(["p0"]),
        FaultPlan([Omission(destination="p1", budget=None)]),
        FaultPlan(
            [Partition((frozenset({"p0"}), frozenset({"p1", "p2"})))]
        ),
    ],
    ids=["dead", "lossy", "severed"],
)
def test_faulted_packed_engine_matches_the_dict_engine(plan):
    # FaultedProtocol no longer downgrades to the dict engine: its
    # packed codec speaks the fault semantics.  The dict engine stays
    # available as the cross-check — same nodes, same ids, same edges.
    protocol = make_protocol(WaitForAllProcess, 3)
    packed = GlobalConfigurationGraph(
        FaultedProtocol(protocol, plan), packed=True
    )
    assert packed.packed
    dictg = GlobalConfigurationGraph(
        FaultedProtocol(protocol, plan), packed=False
    )
    root_inputs = [1, 0, 1]
    packed_result = packed.explore(
        packed.protocol.initial_configuration(root_inputs)
    )
    dict_result = dictg.explore(
        dictg.protocol.initial_configuration(root_inputs)
    )
    assert packed_result.complete and dict_result.complete
    assert len(packed) == len(dictg)
    for node in range(len(packed)):
        assert packed.successors[node] == dictg.successors[node]
        assert packed.configuration_at(node) == dictg.configurations[node]


def test_valency_analysis_honours_the_faults_and_mirrors_counters():
    # 2PC with the coordinator's inbox severed can never commit: with
    # one lossy destination every initial configuration keeps a path
    # that drops all votes, and p0 decides only on full knowledge.
    protocol = make_protocol(TwoPhaseCommitProcess, 3)
    faulted = FaultedProtocol(
        protocol, FaultPlan([Omission(destination="p0", budget=None)])
    )
    analyzer = ValencyAnalyzer(faulted, max_configurations=200_000)
    valency = analyzer.valency(faulted.initial_configuration([1, 1, 1]))
    # All-commit inputs are univalent-1 without faults; with the lossy
    # coordinator a never-deciding path exists, so no 0-decision appears
    # but the 1-decision is still reachable (deliver everything).
    assert valency in (Valency.ONE_VALENT, Valency.NONE)
    stats = analyzer.stats
    assert stats.fault_drop_edges > 0
    assert stats.as_dict()["fault_drop_edges"] == stats.fault_drop_edges
    analyzer.close()
