"""Tests for the space-time diagram renderer."""

from repro.adversary.flp import FLPAdversary
from repro.analysis.spacetime import _resolve_events, spacetime_diagram
from repro.core.events import NULL, Event, Schedule


def arbiter_schedule():
    return Schedule(
        [
            Event("p1", NULL),
            Event("p2", NULL),
            Event("p0", ("claim", "p1", 0)),
            Event("p1", ("verdict", 0)),
        ]
    )


class TestResolveEvents:
    def test_delivery_links_to_send_step(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        rows = _resolve_events(arbiter3, initial, arbiter_schedule())
        delivery = rows[2]
        assert delivery.kind == "recv"
        assert delivery.sent_at == 0  # p1's claim was sent at step 0

    def test_sends_recorded(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        rows = _resolve_events(arbiter3, initial, arbiter_schedule())
        assert rows[0].sends == (("p0", ("claim", "p1", 0)),)
        # The arbiter's decision broadcasts two verdicts.
        assert len(rows[2].sends) == 2

    def test_decisions_marked_once(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        rows = _resolve_events(arbiter3, initial, arbiter_schedule())
        decided = [(r.process, r.decided) for r in rows if r.decided is not None]
        assert decided == [("p0", 0), ("p1", 0)]

    def test_null_steps(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        rows = _resolve_events(arbiter3, initial, arbiter_schedule())
        assert rows[0].kind == "null"
        assert rows[0].value is None


class TestDiagram:
    def test_columns_and_markers(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        text = spacetime_diagram(arbiter3, initial, arbiter_schedule())
        assert "p0" in text.splitlines()[0]
        assert "◁" in text and "▷" in text and "·" in text
        assert "★DECIDES 0" in text
        assert "decisions: p0=0, p1=0" in text

    def test_truncation(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        text = spacetime_diagram(
            arbiter3, initial, arbiter_schedule(), max_rows=2
        )
        assert "2 more steps" in text

    def test_adversary_run_shows_no_decisions(
        self, parity_arbiter3, parity_arbiter3_analyzer
    ):
        adversary = FLPAdversary(
            parity_arbiter3, analyzer=parity_arbiter3_analyzer
        )
        certificate = adversary.build_run(stages=6)
        text = spacetime_diagram(
            parity_arbiter3, certificate.initial, certificate.schedule
        )
        assert "nobody ever decided" in text
        assert "★" not in text
