"""Hash-salt-free seeding: deterministic RNGs from structured keys.

Python's builtin ``hash()`` on strings is salted per-process by
``PYTHONHASHSEED``, so any RNG keyed on ``hash(("seed", sender, ...))``
produces different streams in different interpreter invocations — a
reproducibility bug that already bit the schedulers (fixed there) and,
until this module, lived on in :mod:`repro.synchrony`.

:func:`stable_seed` derives a 64-bit integer from an arbitrary tuple of
primitive parts via SHA-256 over a canonical, type-tagged encoding; the
same parts give the same seed in every process, on every platform, under
every ``PYTHONHASHSEED``.  :func:`stable_rng` wraps it into a
``random.Random``.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["stable_seed", "stable_rng"]

_SeedPart = "int | str | bytes | float | bool | None | tuple"


def _encode(part: object, out: list[bytes]) -> None:
    # Type tags keep 1, "1", 1.0, and True from colliding.
    if part is None:
        out.append(b"N;")
    elif isinstance(part, bool):
        out.append(b"B1;" if part else b"B0;")
    elif isinstance(part, int):
        out.append(b"I" + str(part).encode("ascii") + b";")
    elif isinstance(part, float):
        out.append(b"F" + part.hex().encode("ascii") + b";")
    elif isinstance(part, str):
        data = part.encode("utf-8")
        out.append(b"S" + str(len(data)).encode("ascii") + b":" + data + b";")
    elif isinstance(part, bytes):
        out.append(b"Y" + str(len(part)).encode("ascii") + b":" + part + b";")
    elif isinstance(part, (tuple, list)):
        out.append(b"T" + str(len(part)).encode("ascii") + b"[")
        for item in part:
            _encode(item, out)
        out.append(b"];")
    else:
        raise TypeError(
            f"stable_seed parts must be {_SeedPart}, got {type(part).__name__}"
        )


def stable_seed(*parts: object) -> int:
    """A 64-bit seed that is a pure function of *parts*.

    Parts may be ints, strs, bytes, floats, bools, ``None``, or
    (nested) tuples/lists of those.  Unlike ``hash()``, the result does
    not depend on ``PYTHONHASHSEED``, the platform, or the process.
    """
    out: list[bytes] = []
    _encode(tuple(parts), out)
    digest = hashlib.sha256(b"".join(out)).digest()
    return int.from_bytes(digest[:8], "big")


def stable_rng(*parts: object) -> random.Random:
    """A ``random.Random`` seeded with :func:`stable_seed` of *parts*."""
    return random.Random(stable_seed(*parts))
