"""Tests for the GST model and the rotating-coordinator protocol."""

import pytest

from repro.synchrony.partial import (
    RotatingCoordinatorProcess,
    always_deliver,
    coordinator_blackout,
    random_drops,
    run_partial_sync,
)

NAMES = tuple(f"p{i}" for i in range(5))


def make_processes(f=2):
    return [RotatingCoordinatorProcess(n, NAMES, f=f) for n in NAMES]


def inputs(bits):
    return dict(zip(NAMES, bits))


class TestDropRules:
    def test_always_deliver(self):
        assert always_deliver("a", "b", 1, 0)

    def test_random_drops_deterministic(self):
        rule = random_drops(seed=4, deliver_probability=0.5)
        assert rule("a", "b", 1, 0) == rule("a", "b", 1, 0)

    def test_random_drops_probability_bounds(self):
        with pytest.raises(ValueError):
            random_drops(seed=0, deliver_probability=1.5)

    def test_random_drops_extremes(self):
        never = random_drops(seed=0, deliver_probability=0.0)
        always = random_drops(seed=0, deliver_probability=1.0)
        assert not never("a", "b", 1, 0)
        assert always("a", "b", 1, 0)

    def test_coordinator_blackout_isolates(self):
        rule = coordinator_blackout(lambda r: NAMES[(r - 1) % 5])
        assert not rule("p0", "p1", 1, 0)  # p0 coordinates round 1
        assert not rule("p1", "p0", 1, 0)
        assert rule("p1", "p2", 1, 0)
        # Round 2's coordinator is p1, so p0→p1 is dropped then too;
        # traffic not touching the coordinator flows.
        assert not rule("p0", "p1", 2, 0)
        assert rule("p0", "p2", 2, 0)


class TestRotatingCoordinator:
    def test_f_bound(self):
        with pytest.raises(ValueError):
            RotatingCoordinatorProcess("p0", NAMES, f=3)

    def test_synchronous_network_decides_round_one(self):
        result = run_partial_sync(
            make_processes(),
            inputs([1, 0, 1, 0, 1]),
            gst=1,
            drop_rule=always_deliver,
        )
        assert result.all_live_decided
        assert result.agreement_holds
        assert set(result.decision_rounds.values()) == {1}

    def test_validity_unanimous(self):
        for value in (0, 1):
            result = run_partial_sync(
                make_processes(),
                inputs([value] * 5),
                gst=1,
                drop_rule=always_deliver,
            )
            assert result.decision_values == frozenset({value})

    def test_blackout_stalls_until_gst(self):
        rule = coordinator_blackout(lambda r: NAMES[(r - 1) % 5])
        result = run_partial_sync(
            make_processes(),
            inputs([1, 0, 1, 0, 1]),
            gst=7,
            drop_rule=rule,
            max_rounds=30,
        )
        assert result.all_live_decided
        assert min(result.decision_rounds.values()) >= 7

    def test_gst_never_means_no_decision_but_safety(self):
        rule = coordinator_blackout(lambda r: NAMES[(r - 1) % 5])
        result = run_partial_sync(
            make_processes(),
            inputs([1, 0, 1, 0, 1]),
            gst=10**9,
            drop_rule=rule,
            max_rounds=30,
        )
        assert result.decisions == {}
        assert result.agreement_holds  # vacuous, but no violation

    def test_crash_rotates_past_dead_coordinator(self):
        # p0 (round-1 coordinator) is dead from the start.
        result = run_partial_sync(
            make_processes(),
            inputs([1, 1, 1, 1, 1]),
            gst=1,
            drop_rule=always_deliver,
            crash_rounds={"p0": 1},
        )
        assert result.all_live_decided
        assert set(result.decision_rounds.values()) == {2}

    def test_random_losses_safe_and_eventually_live(self):
        result = run_partial_sync(
            make_processes(),
            inputs([0, 1, 0, 1, 0]),
            gst=8,
            drop_rule=random_drops(seed=3, deliver_probability=0.3),
            max_rounds=40,
        )
        assert result.agreement_holds
        assert result.all_live_decided

    def test_safety_before_gst_under_heavy_loss(self):
        """Paxos-style safety: whatever decisions happen pre-GST under
        lossy delivery, they never conflict."""
        for seed in range(15):
            result = run_partial_sync(
                make_processes(),
                inputs([0, 1, 1, 0, 1]),
                gst=25,
                drop_rule=random_drops(
                    seed=seed, deliver_probability=0.55
                ),
                max_rounds=25,
            )
            assert result.agreement_holds, seed
