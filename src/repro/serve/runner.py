"""Executes one job against the exploration engine.

:func:`execute_job` is a synchronous, daemon-agnostic function — the
job manager runs it on a worker thread, the chaos harness and tests
call it directly to produce cold reference results.  Robustness wiring:

* The engine checkpoints into the job's spool slot
  (``CheckpointConfig(every_seconds=...)``), and resumes from that slot
  when it already holds a snapshot — which is exactly what a restarted
  daemon does with a job it found ``running`` in the spool.  Resume is
  byte-identical (the PR-3 contract), so the ``result`` block of a
  recovered job equals an uninterrupted run's.
* Deadlines degrade instead of failing: the per-engine budget guards
  (``wall_clock_limit_s`` / ``memory_limit_mb``) and the manager's
  deadline watchdog (via :class:`JobHandle` →
  :meth:`~repro.core.exploration.GlobalConfigurationGraph.request_stop`)
  both stop the engine at a consistency point; the job completes with
  ``partial`` set and a final checkpoint on disk.
* A ``drain`` stop (graceful shutdown) raises :class:`JobSuspended`
  instead of producing a result — the manager puts the job back in the
  ``queued`` state and the next daemon finishes it.

Worker-pool faults need no handling here: jobs run the engine with the
PR-3 :class:`~repro.core.resilience.ResilienceConfig` defaults, whose
retry/backoff/serial-fallback dispatch recovers below this layer.
"""

from __future__ import annotations

import hashlib
import os
import time

from repro import registry
from repro.core.errors import AdversaryStuck
from repro.core.resilience import CheckpointConfig, ResilienceConfig
from repro.core.valency import ValencyAnalyzer
from repro.serve.wire import JobSpec, WireError

__all__ = [
    "JobHandle",
    "JobSuspended",
    "execute_job",
    "census_fingerprint",
]

#: Stop reasons that mean "suspend and requeue" rather than "answer
#: partially" — the daemon is going away, not the job's time budget.
SUSPEND_REASONS = ("drain",)


class JobSuspended(Exception):
    """The job was drained to a checkpoint; requeue it, don't answer."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class JobHandle:
    """Thread-safe bridge between the manager and a running engine.

    The manager may request a stop (deadline fired, shutdown drain)
    *before* the worker thread has built the engine; the handle latches
    the request and forwards it at :meth:`attach` time, so the stop is
    never lost to that race.
    """

    def __init__(self) -> None:
        self.engine = None
        self.stop_reason: str | None = None

    def attach(self, engine) -> None:
        self.engine = engine
        if self.stop_reason is not None:
            engine.request_stop(self.stop_reason)

    def request_stop(self, reason: str) -> None:
        self.stop_reason = reason
        if self.engine is not None:
            self.engine.request_stop(reason)


def census_fingerprint(census: dict[tuple[int, ...], object]) -> str:
    """SHA-256 over the sorted ``inputs → valency`` census lines."""
    digest = hashlib.sha256()
    for inputs, valency in sorted(census.items()):
        name = getattr(valency, "name", str(valency))
        digest.update(f"{tuple(inputs)}:{name}\n".encode())
    return digest.hexdigest()


def _edge_count(graph) -> int:
    if graph.packed:
        return graph.store.edges.total_pairs
    return sum(len(out) for out in graph.successors)


def _reduction_policy(spec: JobSpec):
    if not (spec.por or spec.symmetry):
        return None
    from repro.core.reduction import ReductionPolicy

    return ReductionPolicy(por=spec.por, symmetry=spec.symmetry)


def _parse_inputs(spec: JobSpec, n: int) -> list[int]:
    if spec.inputs is None:
        return [i % 2 for i in range(n)]
    bits = [int(c) for c in spec.inputs]
    if len(bits) != n:
        raise WireError(
            f"inputs must supply exactly {n} bits, got {spec.inputs!r}"
        )
    return bits


def _partial_state(graph) -> tuple[dict[str, object] | None, str | None]:
    """(partial dict, suspend reason) from the engine's last stop."""
    partial = graph.last_partial
    if partial is None:
        return None, None
    if partial.reason in SUSPEND_REASONS:
        return None, partial.reason
    return partial.as_dict(), None


def execute_job(
    spec: JobSpec,
    *,
    checkpoint_path: str | None = None,
    handle: JobHandle | None = None,
    checkpoint_every_s: float = 1.0,
) -> dict[str, object]:
    """Run *spec* to a result dict (raises :class:`JobSuspended` on a
    drain stop, any other exception on genuine failure).

    The ``result`` block is a pure function of the spec — cold,
    resumed, serial, and parallel executions all produce the same
    bytes for it (fingerprint identity of the underlying engine).  The
    ``meta`` block carries run-specific observability (wall time,
    resumed node counts) and is excluded from determinism comparisons.
    """
    started = time.perf_counter()
    if spec.verb == "spectrum":
        return _run_spectrum(
            spec,
            started,
            checkpoint_path=checkpoint_path,
            handle=handle,
        )
    entry = registry.info(spec.protocol)
    protocol = entry.build(spec.resolved_n)
    base = {
        "verb": spec.verb,
        "protocol": spec.protocol,
        "protocol_repr": repr(protocol),
        "n": spec.resolved_n,
        "budget": spec.budget,
        "reduction": spec.reduction_stamp(),
    }

    if spec.verb == "survive":
        # Simulation-based: no engine, no checkpoints.  Recovery after
        # a crash is a deterministic re-run (fixed seeds).
        result = _run_survive(spec)
        return {
            **base,
            "result": result,
            "partial": None,
            "meta": {"elapsed_s": round(time.perf_counter() - started, 6)},
        }

    resilience = ResilienceConfig(
        wall_clock_limit_s=spec.max_seconds,
        memory_limit_mb=spec.max_memory_mb,
    )
    checkpoint = None
    resume_from = None
    if checkpoint_path is not None:
        checkpoint = CheckpointConfig(
            path=str(checkpoint_path), every_seconds=checkpoint_every_s
        )
        if os.path.exists(checkpoint_path):
            resume_from = str(checkpoint_path)
    analyzer = ValencyAnalyzer(
        protocol,
        max_configurations=spec.budget,
        resilience=resilience,
        checkpoint=checkpoint,
        resume_from=resume_from,
        reduction=_reduction_policy(spec),
    )
    if handle is not None:
        handle.attach(analyzer.graph)
    try:
        if spec.verb == "check":
            result = _run_check(spec, analyzer)
        elif spec.verb == "map":
            result = _run_map(spec, protocol, analyzer)
        else:
            result = _run_attack(spec, protocol, analyzer)
        graph = analyzer.graph
        partial, suspend = _partial_state(graph)
        if suspend is not None:
            raise JobSuspended(suspend)
        stats = graph.stats
        return {
            **base,
            "result": result,
            "partial": partial,
            "meta": {
                "elapsed_s": round(time.perf_counter() - started, 6),
                "resumed_nodes": stats.resumed_nodes,
                "checkpoints_written": stats.checkpoints_written,
                "expansions": stats.expansions,
                "explore_time_s": round(stats.explore_time, 6),
            },
        }
    finally:
        analyzer.close()


def _graph_block(analyzer: ValencyAnalyzer) -> dict[str, object]:
    graph = analyzer.graph
    return {
        "graph_fingerprint": graph.fingerprint(),
        "nodes": len(graph),
        "edges": _edge_count(graph),
        "complete": graph.complete,
    }


def _run_check(spec: JobSpec, analyzer: ValencyAnalyzer) -> dict[str, object]:
    """Initial-hypercube valency census (the CLI ``check`` core)."""
    census = analyzer.classify_initials()
    rows = [
        {
            "inputs": "".join(str(b) for b in inputs),
            "valency": valency.value,
        }
        for inputs, valency in sorted(census.items())
    ]
    return {
        "census": rows,
        "census_fingerprint": census_fingerprint(census),
        **_graph_block(analyzer),
    }


def _run_map(
    spec: JobSpec, protocol, analyzer: ValencyAnalyzer
) -> dict[str, object]:
    from repro.analysis.valency_map import build_valency_map

    inputs = _parse_inputs(spec, protocol.num_processes)
    root = protocol.initial_configuration(inputs)
    vmap = build_valency_map(protocol, root, analyzer=analyzer)
    return {
        "inputs": "".join(str(b) for b in inputs),
        "summary": vmap.summary(),
        "counts": {
            valency.value: count
            for valency, count in sorted(
                vmap.counts.items(), key=lambda item: item[0].value
            )
            if count
        },
        "critical_steps": len(vmap.critical_steps),
        "map_complete": vmap.complete,
        **_graph_block(analyzer),
    }


def _run_attack(
    spec: JobSpec, protocol, analyzer: ValencyAnalyzer
) -> dict[str, object]:
    from repro.adversary.flp import FLPAdversary
    from repro.analysis.admissibility import analyze_admissibility

    adversary = FLPAdversary(protocol, analyzer=analyzer)
    try:
        certificate = adversary.build_run(stages=spec.stages)
    except AdversaryStuck as error:
        # A deadline can strand the adversary on an UNKNOWN-valency
        # region; that is graceful degradation (partial + checkpoint),
        # not a failure.  Stuck with no deadline in play is a genuine
        # job failure and propagates.
        partial, suspend = _partial_state(analyzer.graph)
        if suspend is not None:
            raise JobSuspended(suspend) from None
        if partial is None:
            raise
        return {
            "outcome": "stuck",
            "detail": str(error),
            **_graph_block(analyzer),
        }
    faulty = (
        frozenset({certificate.faulty_process})
        if certificate.faulty_process
        else frozenset()
    )
    admissibility = analyze_admissibility(
        protocol,
        certificate.initial,
        certificate.schedule,
        faulty=faulty,
        fault_point=certificate.fault_point,
    )
    return {
        "outcome": certificate.summary(),
        "stages": spec.stages,
        "schedule_length": certificate.length,
        "faulty_process": certificate.faulty_process,
        "fault_point": certificate.fault_point,
        "fairness": admissibility.summary(),
        "verified": certificate.verify(protocol),
        **_graph_block(analyzer),
    }


def _run_spectrum(
    spec: JobSpec,
    started: float,
    *,
    checkpoint_path: str | None,
    handle: JobHandle | None,
) -> dict[str, object]:
    """Monte-Carlo sweep job: cell-granular checkpoints in the job's
    spool slot, drain suspension at the next cell boundary, deadline
    degradation to a partial covering the completed cells."""
    import dataclasses

    from repro.spectrum import (
        SweepRunner,
        check_phase_expectations,
        default_grid,
        smoke_grid,
    )

    cells = smoke_grid() if spec.preset == "smoke" else default_grid()
    if spec.protocol != "all":
        cells = [cell for cell in cells if cell.protocol == spec.protocol]
    if spec.samples is not None:
        cells = [
            dataclasses.replace(cell, samples=spec.samples)
            for cell in cells
        ]
    runner = SweepRunner(
        cells,
        base_seed=spec.seed,
        checkpoint_path=checkpoint_path,
        max_seconds=spec.max_seconds,
        max_memory_mb=spec.max_memory_mb,
    )
    if handle is not None:
        handle.attach(runner)
    sweep = runner.run()
    if sweep.partial is not None and sweep.partial.reason in SUSPEND_REASONS:
        raise JobSuspended(sweep.partial.reason)
    violations = check_phase_expectations(sweep)
    return {
        "verb": spec.verb,
        "protocol": spec.protocol,
        "preset": spec.preset,
        "seed": spec.seed,
        "result": {
            "fingerprint": sweep.fingerprint(),
            "total_cells": sweep.total_cells,
            "completed_cells": len(sweep.outcomes),
            "cells": {
                key: outcome.to_dict()
                for key, outcome in sorted(sweep.outcomes.items())
            },
            "phase_ok": not violations,
            "phase_violations": violations,
        },
        "partial": (
            None if sweep.partial is None else sweep.partial.as_dict()
        ),
        "meta": {
            "elapsed_s": round(time.perf_counter() - started, 6),
            "resumed_cells": sweep.resumed_cells,
        },
    }


def _run_survive(spec: JobSpec) -> dict[str, object]:
    from repro.faults.survivability import (
        check_expectations,
        survivability_matrix,
    )

    cells = survivability_matrix(
        [spec.protocol],
        n=spec.n,
        seeds=spec.seeds,
        max_steps=spec.max_steps,
    )
    failures = check_expectations(cells)
    return {
        "cells": [cell.as_dict() for cell in cells],
        "expectations_ok": not failures,
        "expectation_failures": failures,
    }
