"""Tests for the shared transition cache."""

import pytest

from repro.core.events import NULL, Event
from repro.core.exploration import TransitionCache, explore
from repro.protocols import ArbiterProcess, WaitForAllProcess, make_protocol


class TestTransitionCache:
    def test_apply_matches_protocol(self, arbiter3):
        cache = TransitionCache(arbiter3)
        config = arbiter3.initial_configuration([0, 0, 1])
        event = Event("p1", NULL)
        assert cache.apply(arbiter3, config, event) == (
            arbiter3.apply_event(config, event)
        )

    def test_memoizes(self, arbiter3):
        cache = TransitionCache(arbiter3)
        config = arbiter3.initial_configuration([0, 0, 1])
        cache.apply(arbiter3, config, Event("p1", NULL))
        assert len(cache) == 1
        cache.apply(arbiter3, config, Event("p1", NULL))
        assert len(cache) == 1
        cache.apply(arbiter3, config, Event("p2", NULL))
        assert len(cache) == 2

    def test_rejects_foreign_protocol(self, arbiter3):
        other = make_protocol(WaitForAllProcess, 3)
        cache = TransitionCache(other)
        config = arbiter3.initial_configuration([0, 0, 1])
        with pytest.raises(ValueError, match="different protocol"):
            cache.apply(arbiter3, config, Event("p1", NULL))

    def test_explore_with_cache_matches_without(self, arbiter3):
        root = arbiter3.initial_configuration([0, 1, 0])
        cache = TransitionCache(arbiter3)
        cached = explore(arbiter3, root, cache=cache)
        plain = explore(arbiter3, root)
        assert cached.configurations == plain.configurations
        assert list(cached.iter_edges()) == list(plain.iter_edges())
        assert len(cache) > 0

    def test_cache_shared_across_explorations(self, arbiter3):
        cache = TransitionCache(arbiter3)
        explore(
            arbiter3,
            arbiter3.initial_configuration([0, 0, 1]),
            cache=cache,
        )
        size_after_first = len(cache)
        # Overlapping second exploration adds few or no new entries
        # beyond its own distinct region.
        explore(
            arbiter3,
            arbiter3.initial_configuration([1, 0, 1]),
            cache=cache,
        )
        assert len(cache) >= size_after_first

    def test_analyzer_exposes_shared_cache(self, arbiter3):
        from repro.core.valency import ValencyAnalyzer

        analyzer = ValencyAnalyzer(arbiter3)
        config = arbiter3.initial_configuration([0, 0, 1])
        analyzer.valency(config)
        # The packed engine memoizes at the step level during exploration;
        # the rich-level cache stays lazy but remains shared and usable.
        assert analyzer.stats.packed_step_misses > 0
        assert analyzer.transitions is analyzer.graph.transitions
        analyzer.transitions.apply(arbiter3, config, Event("p1", NULL))
        assert len(analyzer.transitions) > 0
