"""Soundness and determinism of the Lemma-1 ample-set reducer.

The reduction's contract is *verdict identity*: a POR-reduced graph may
intern fewer configurations, but every valency classification — and
everything built on it, up to the adversary's certificates — must be
identical to the unreduced graph's.  The zoo-wide sweep below is the
empirical closure of the honest caveat in ``MODEL.md`` ("Reduction
soundness"): the deferral heuristic is not locally checkable for
protocols where a deferred step sends new mail to the chosen process,
so identity is pinned here for every analyzable protocol in the
registry, not argued abstractly.
"""

import logging

import pytest

from repro import registry
from repro.adversary import FLPAdversary
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.errors import CheckpointMismatch
from repro.core.exploration import GlobalConfigurationGraph
from repro.core.reduction import ReductionPolicy
from repro.core.valency import ValencyAnalyzer
from repro.protocols import BenOrProcess, WaitForAllProcess, make_protocol

POR = ReductionPolicy(por=True)

ZOO = sorted(
    name for name in registry.names() if registry.info(name).analyzable
)


def classify(protocol, reduction=None):
    analyzer = ValencyAnalyzer(protocol, reduction=reduction)
    try:
        return analyzer.classify_initials(), analyzer.stats.por_pruned
    finally:
        analyzer.close()


class TestZooVerdictIdentity:
    @pytest.mark.parametrize("name", ZOO)
    def test_reduced_and_full_censuses_agree(self, name):
        info = registry.info(name)
        full, _ = classify(info.build())
        reduced, _ = classify(info.build(), reduction=POR)
        assert reduced == full

    def test_reduction_actually_happens(self):
        # The sweep above would pass vacuously if the reducer never
        # pruned; wait-for-all's broadcast phase is all-commuting, so
        # here the pruning counter must move.
        protocol = make_protocol(WaitForAllProcess, 3)
        _, pruned = classify(protocol, reduction=POR)
        assert pruned > 0

    def test_adversary_certificates_identical(self):
        # The strongest downstream consumer: staged non-deciding runs
        # read witnesses and valencies off the shared graph.  Both
        # analyzers must hand the adversary the exact same certificate.
        runs = {}
        for label, reduction in (("full", None), ("por", POR)):
            protocol = registry.build("parity-arbiter")
            analyzer = ValencyAnalyzer(protocol, reduction=reduction)
            certificate = FLPAdversary(
                protocol, analyzer=analyzer
            ).build_run(stages=5)
            assert certificate.verify(protocol)
            runs[label] = certificate
            analyzer.close()
        assert runs["por"].schedule == runs["full"].schedule
        assert runs["por"].initial == runs["full"].initial
        assert runs["por"].mode == runs["full"].mode


class TestReductionRatio:
    def test_depth_horizon_expansion_shrinks(self):
        # Ben-Or's interleaving blowup is the reducer's target: at a
        # pinned depth horizon the reduced frontier must stay well
        # below the full one (the headline ratio lives in bench_por).
        protocol = make_protocol(BenOrProcess, 3)
        root = protocol.initial_configuration([0, 1, 1])
        sizes = {}
        for label, reduction in (("full", None), ("por", POR)):
            graph = GlobalConfigurationGraph(protocol, reduction=reduction)
            graph.explore(root, 200_000, max_levels=4)
            sizes[label] = len(graph)
            if label == "por":
                assert graph.stats.por_pruned > 0
                assert graph.stats.replay_violations == 0
                assert graph.stats.replay_checks > 0
        assert sizes["por"] * 2 <= sizes["full"]


class TestDeterminism:
    def test_two_reduced_runs_fingerprint_identically(self):
        protocol = make_protocol(WaitForAllProcess, 3)
        root_inputs = [1, 0, 1]
        prints = set()
        for _ in range(2):
            graph = GlobalConfigurationGraph(protocol, reduction=POR)
            graph.explore(protocol.initial_configuration(root_inputs))
            prints.add(graph.fingerprint())
        assert len(prints) == 1

    def test_reduced_resume_matches_uninterrupted_run(self, tmp_path):
        # Checkpoint a reduced exploration mid-flight, restore into a
        # fresh engine, finish both: the resumed graph must be
        # fingerprint-identical, reducer sample position included.
        protocol = make_protocol(WaitForAllProcess, 3)
        root = protocol.initial_configuration([1, 1, 0])
        straight = GlobalConfigurationGraph(protocol, reduction=POR)
        straight.explore(root)

        partial = GlobalConfigurationGraph(protocol, reduction=POR)
        partial.explore(root, max_levels=2)
        path = str(tmp_path / "reduced.ckpt")
        save_checkpoint(partial, path)

        resumed = load_checkpoint(path, protocol)
        assert resumed.reduction is not None and resumed.reduction.por
        assert resumed._reducer.reduced_nodes == partial._reducer.reduced_nodes
        resumed.explore(root)
        assert resumed.fingerprint() == straight.fingerprint()
        assert resumed.stats.replay_violations == 0

    def test_restore_refuses_a_mismatched_policy(self, tmp_path):
        protocol = make_protocol(WaitForAllProcess, 3)
        graph = GlobalConfigurationGraph(protocol, reduction=POR)
        graph.explore(
            protocol.initial_configuration([1, 1, 0]), max_levels=2
        )
        path = str(tmp_path / "reduced.ckpt")
        save_checkpoint(graph, path)
        with pytest.raises(CheckpointMismatch, match="reduction"):
            load_checkpoint(
                path, protocol, reduction=ReductionPolicy(por=False)
            )
        # And the converse: an unreduced snapshot cannot be resumed
        # into a reducing engine (the pruned edges were never pruned).
        plain = GlobalConfigurationGraph(protocol)
        plain.explore(
            protocol.initial_configuration([1, 1, 0]), max_levels=2
        )
        plain_path = str(tmp_path / "plain.ckpt")
        save_checkpoint(plain, plain_path)
        with pytest.raises(CheckpointMismatch, match="reduction"):
            load_checkpoint(plain_path, protocol, reduction=POR)


class TestEngineGuards:
    def test_reduction_requires_the_packed_engine(self):
        protocol = make_protocol(WaitForAllProcess, 3)
        with pytest.raises(ValueError, match="packed"):
            GlobalConfigurationGraph(
                protocol, packed=False, reduction=POR
            )

    def test_max_levels_requires_the_packed_engine(self):
        protocol = make_protocol(WaitForAllProcess, 3)
        graph = GlobalConfigurationGraph(protocol, packed=False)
        with pytest.raises(ValueError, match="max_levels"):
            graph.explore(
                protocol.initial_configuration([1, 1, 1]), max_levels=2
            )


class TestWorkerHonesty:
    def test_serial_utilization_is_none_not_zero(self):
        protocol = make_protocol(WaitForAllProcess, 3)
        graph = GlobalConfigurationGraph(protocol)
        graph.explore(protocol.initial_configuration([1, 0, 1]))
        assert graph.stats.worker_utilization is None
        assert graph.stats.as_dict()["worker_utilization"] is None

    def test_small_batches_skip_the_pool_and_say_so(self, caplog):
        # Every level of this tiny graph falls below the dispatch
        # threshold: the pool must never see a batch, utilization must
        # stay None (not 0.0), and exactly one honest log line explains.
        protocol = make_protocol(WaitForAllProcess, 3)
        graph = GlobalConfigurationGraph(
            protocol, workers=2, min_batch_per_worker=10_000
        )
        try:
            with caplog.at_level(logging.INFO, logger="repro.exploration"):
                graph.explore(protocol.initial_configuration([1, 0, 1]))
        finally:
            graph.close()
        assert graph.stats.small_batch_levels > 0
        assert graph.stats.worker_utilization is None
        inline = [
            record
            for record in caplog.records
            if "expanding inline without the pool" in record.getMessage()
        ]
        assert len(inline) == 1  # logged once, not per level
        assert any(
            "expanded serially" in record.getMessage()
            for record in caplog.records
        )
