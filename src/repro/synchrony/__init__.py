"""Refined timing models: the escape hatches the conclusion points to.

The asynchronous impossibility "point[s] up the need for more refined
models of distributed computing that better reflect realistic
assumptions about processor and communication timings".  This subpackage
supplies three such refinements:

* :mod:`repro.synchrony.rounds` — full lock-step synchrony (the
  Byzantine-Generals contrast of the abstract);
* :mod:`repro.synchrony.partial` — partial synchrony with a Global
  Stabilization Time (Dwork-Lynch-Stockmeyer, reference [10]);
* :mod:`repro.synchrony.detectors` — unreliable failure detectors
  (Chandra-Toueg's later formulation of the same boundary).
"""

from repro.synchrony.detectors import (
    DetectorGuidedProcess,
    EventuallyStrongDetector,
    FailureDetector,
    PerfectDetector,
    check_eventual_weak_accuracy,
    check_strong_accuracy,
    check_strong_completeness,
)
from repro.synchrony.partial import (
    AdversaryView,
    Envelope,
    PartialSyncResult,
    PhaseAdversary,
    PhasedProcess,
    RotatingCoordinatorProcess,
    always_deliver,
    coordinator_blackout,
    random_drops,
    run_partial_sync,
)
from repro.synchrony.rounds import (
    SyncCrashPlan,
    SyncProcess,
    SyncResult,
    run_rounds,
)

__all__ = [
    "DetectorGuidedProcess",
    "EventuallyStrongDetector",
    "FailureDetector",
    "PerfectDetector",
    "check_eventual_weak_accuracy",
    "check_strong_accuracy",
    "check_strong_completeness",
    "AdversaryView",
    "Envelope",
    "PartialSyncResult",
    "PhaseAdversary",
    "PhasedProcess",
    "RotatingCoordinatorProcess",
    "always_deliver",
    "coordinator_blackout",
    "random_drops",
    "run_partial_sync",
    "SyncCrashPlan",
    "SyncProcess",
    "SyncResult",
    "run_rounds",
]
