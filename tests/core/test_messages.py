"""Unit + property tests for the message buffer multiset."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import InvalidEvent
from repro.core.messages import Message, MessageBuffer


def msg(dest="p0", value="m"):
    return Message(dest, value)


class TestMessage:
    def test_equality_by_fields(self):
        assert msg() == msg()
        assert msg("p0", "a") != msg("p0", "b")
        assert msg("p0", "a") != msg("p1", "a")

    def test_hash_consistent_with_equality(self):
        assert hash(msg()) == hash(msg())

    def test_immutable(self):
        with pytest.raises(AttributeError):
            msg().destination = "p9"

    def test_not_equal_to_other_types(self):
        assert msg() != ("p0", "m")

    def test_repr_mentions_fields(self):
        assert "p0" in repr(msg())
        assert "m" in repr(msg())


class TestBufferBasics:
    def test_empty_is_singleton_and_empty(self):
        buffer = MessageBuffer.empty()
        assert len(buffer) == 0
        assert list(buffer) == []
        assert not buffer.has_message_for("p0")

    def test_send_adds_a_copy(self):
        buffer = MessageBuffer.empty().send(msg())
        assert len(buffer) == 1
        assert msg() in buffer
        assert buffer.count(msg()) == 1

    def test_send_is_persistent(self):
        empty = MessageBuffer.empty()
        empty.send(msg())
        assert len(empty) == 0  # The original is untouched.

    def test_multiplicity_accumulates(self):
        buffer = MessageBuffer.empty().send(msg()).send(msg())
        assert buffer.count(msg()) == 2
        assert len(buffer) == 2

    def test_send_all_models_atomic_broadcast(self):
        buffer = MessageBuffer.empty().send_all(
            [msg("p1", "x"), msg("p2", "x")]
        )
        assert buffer.has_message_for("p1")
        assert buffer.has_message_for("p2")

    def test_deliver_removes_one_copy(self):
        buffer = MessageBuffer.empty().send(msg()).send(msg())
        buffer = buffer.deliver(msg())
        assert buffer.count(msg()) == 1

    def test_deliver_absent_raises_invalid_event(self):
        with pytest.raises(InvalidEvent):
            MessageBuffer.empty().deliver(msg())

    def test_deliver_last_copy_removes_key(self):
        buffer = MessageBuffer.empty().send(msg()).deliver(msg())
        assert msg() not in buffer
        assert buffer == MessageBuffer.empty()

    def test_constructor_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            MessageBuffer({msg(): 0})
        with pytest.raises(ValueError):
            MessageBuffer({msg(): -1})

    def test_of_counts_duplicates(self):
        buffer = MessageBuffer.of([msg(), msg(), msg("p1")])
        assert buffer.count(msg()) == 2
        assert buffer.count(msg("p1")) == 1


class TestBufferQueries:
    def test_messages_for_filters_by_destination(self):
        buffer = MessageBuffer.of(
            [msg("p0", "a"), msg("p1", "b"), msg("p0", "c")]
        )
        addressed = buffer.messages_for("p0")
        assert {m.value for m in addressed} == {"a", "c"}

    def test_messages_for_is_deterministic(self):
        buffer = MessageBuffer.of([msg("p0", "b"), msg("p0", "a")])
        assert buffer.messages_for("p0") == buffer.messages_for("p0")

    def test_destinations(self):
        buffer = MessageBuffer.of([msg("p0"), msg("p2")])
        assert buffer.destinations() == frozenset({"p0", "p2"})

    def test_iteration_repeats_multiplicity(self):
        buffer = MessageBuffer.of([msg(), msg()])
        assert sum(1 for _ in buffer) == 2

    def test_distinct_messages_sorted(self):
        buffer = MessageBuffer.of([msg("p1", "z"), msg("p0", "a")])
        distinct = buffer.distinct_messages()
        assert distinct[0].destination == "p0"


class TestBufferEquality:
    def test_equality_ignores_construction_order(self):
        a = MessageBuffer.empty().send(msg("p0", 1)).send(msg("p1", 2))
        b = MessageBuffer.empty().send(msg("p1", 2)).send(msg("p0", 1))
        assert a == b
        assert hash(a) == hash(b)

    def test_multiplicity_matters(self):
        a = MessageBuffer.of([msg()])
        b = MessageBuffer.of([msg(), msg()])
        assert a != b

    def test_usable_as_dict_key(self):
        table = {MessageBuffer.of([msg()]): "x"}
        assert table[MessageBuffer.of([msg()])] == "x"


# -- property-based: multiset laws ------------------------------------------

message_strategy = st.builds(
    Message,
    st.sampled_from(["p0", "p1", "p2"]),
    st.integers(min_value=0, max_value=3),
)
message_lists = st.lists(message_strategy, max_size=12)


@given(message_lists)
def test_of_length_equals_input_length(messages):
    assert len(MessageBuffer.of(messages)) == len(messages)


@given(message_lists, message_strategy)
def test_send_then_deliver_roundtrips(messages, extra):
    buffer = MessageBuffer.of(messages)
    assert buffer.send(extra).deliver(extra) == buffer


@given(message_lists)
def test_sequential_send_equals_of(messages):
    sequential = MessageBuffer.empty()
    for message in messages:
        sequential = sequential.send(message)
    assert sequential == MessageBuffer.of(messages)


@given(message_lists, message_lists)
def test_send_all_commutes(first, second):
    a = MessageBuffer.of(first).send_all(second)
    b = MessageBuffer.of(second).send_all(first)
    assert a == b
    assert hash(a) == hash(b)


@given(message_lists)
def test_draining_everything_reaches_empty(messages):
    buffer = MessageBuffer.of(messages)
    for message in messages:
        buffer = buffer.deliver(message)
    assert buffer == MessageBuffer.empty()
