"""Fault-injection suite: safety survives everything we throw at it.

FLP kills *liveness*; safety (agreement + validity) of the safe zoo
must hold under arbitrary crash plans, delay windows, and scheduler
noise.  These property tests inject random faults and assert that no
run — decided, stalled, or half-decided — ever violates safety.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.admissibility import analyze_admissibility
from repro.core.resilience import ChaosConfig, ResilienceConfig
from repro.core.simulation import StopCondition, simulate
from repro.core.valency import ValencyAnalyzer
from repro.faults import (
    Crash,
    Duplication,
    FaultPlan,
    Omission,
    Partition,
    audit_run,
)
from repro.schedulers.faulty import FaultyScheduler
from repro.protocols import (
    ArbiterProcess,
    InitiallyDeadProcess,
    ParityArbiterProcess,
    ThreePhaseCommitProcess,
    TwoPhaseCommitProcess,
    WaitForAllProcess,
    make_protocol,
)
from repro.schedulers import (
    CrashPlan,
    DelayScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    random_crash_plan,
)

FACTORIES = {
    "arbiter": lambda: make_protocol(ArbiterProcess, 3),
    "parity": lambda: make_protocol(ParityArbiterProcess, 3),
    "wfa": lambda: make_protocol(WaitForAllProcess, 3),
    "2pc": lambda: make_protocol(TwoPhaseCommitProcess, 3),
    "3pc": lambda: make_protocol(ThreePhaseCommitProcess, 3),
    "initially-dead": lambda: make_protocol(InitiallyDeadProcess, 3),
}
_CACHE = {}


def get(name):
    if name not in _CACHE:
        _CACHE[name] = FACTORIES[name]()
    return _CACHE[name]


def check_safety(protocol, result, inputs):
    assert result.agreement_holds, (
        f"disagreement: {result.decisions}"
    )
    assert result.decision_values <= set(inputs) | _allowed_extra(
        protocol, inputs
    )


def _allowed_extra(protocol, inputs):
    # The arbiter's own input is unused: validity is over proposer
    # inputs.  For simplicity we allow any input value — every zoo
    # protocol decides some process's input — so the extra set is empty.
    return set()


@settings(max_examples=80, deadline=None)
@given(
    name=st.sampled_from(sorted(FACTORIES)),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_safety_under_random_crashes_and_schedules(name, seed):
    protocol = get(name)
    rng = random.Random(seed)
    n = protocol.num_processes
    inputs = [rng.randint(0, 1) for _ in range(n)]
    plan = random_crash_plan(
        protocol.process_names, max_faulty=n - 1, max_step=60, rng=rng
    )
    scheduler = RandomScheduler(
        seed=seed, null_probability=0.25, crash_plan=plan
    )
    result = simulate(
        protocol,
        protocol.initial_configuration(inputs),
        scheduler,
        max_steps=600,
        stop=StopCondition.ALL_DECIDED,
    )
    check_safety(protocol, result, inputs)


@settings(max_examples=50, deadline=None)
@given(
    name=st.sampled_from(sorted(FACTORIES)),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_safety_under_delay_windows(name, seed):
    protocol = get(name)
    rng = random.Random(seed)
    inputs = [rng.randint(0, 1) for _ in protocol.process_names]
    victim = rng.choice(protocol.process_names)
    start = rng.randint(0, 20)
    end = None if rng.random() < 0.5 else start + rng.randint(1, 60)
    scheduler = DelayScheduler({victim}, window=(start, end))
    result = simulate(
        protocol,
        protocol.initial_configuration(inputs),
        scheduler,
        max_steps=500,
        stop=StopCondition.ALL_DECIDED,
    )
    check_safety(protocol, result, inputs)


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(["wfa", "2pc", "3pc", "arbiter", "parity"]),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_liveness_without_faults_under_fair_scheduling(name, seed):
    """The complement: with zero faults and a fair scheduler, the safe
    zoo always decides — asynchrony alone is not the problem."""
    protocol = get(name)
    rng = random.Random(seed)
    inputs = [rng.randint(0, 1) for _ in protocol.process_names]
    result = simulate(
        protocol,
        protocol.initial_configuration(inputs),
        RoundRobinScheduler(),
        max_steps=500,
        stop=StopCondition.ALL_DECIDED,
    )
    assert result.decided
    check_safety(protocol, result, inputs)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_partial_decisions_never_conflict_with_late_ones(seed):
    """Kill a process mid-run, let the rest continue: any decisions
    made before, during, and after the crash agree."""
    protocol = get("parity")
    rng = random.Random(seed)
    inputs = [rng.randint(0, 1) for _ in protocol.process_names]
    victim = rng.choice(protocol.process_names)
    crash_at = rng.randint(1, 30)
    scheduler = RandomScheduler(
        seed=seed + 1,
        null_probability=0.2,
        crash_plan=CrashPlan({victim: crash_at}),
    )
    result = simulate(
        protocol,
        protocol.initial_configuration(inputs),
        scheduler,
        max_steps=800,
        stop=StopCondition.NEVER,
    )
    assert result.agreement_holds


# ---------------------------------------------------------------------------
# FaultPlan engine: safety of the safe zoo under random message-level
# fault plans, and auditor agreement with the legacy admissibility
# checker on the crash-only fragment.
# ---------------------------------------------------------------------------


def _random_message_plan(rng, names):
    """A random plan of omission / duplication / partition clauses."""
    clauses = []
    for _ in range(rng.randint(1, 3)):
        kind = rng.choice(["omit", "dup", "split"])
        if kind == "omit":
            clauses.append(
                Omission(
                    destination=rng.choice([None, *names]),
                    budget=rng.choice([None, 1, 2, 4]),
                    probability=rng.choice([1.0, 0.5]),
                )
            )
        elif kind == "dup":
            clauses.append(
                Duplication(
                    destination=rng.choice([None, *names]),
                    budget=rng.randint(1, 4),
                    probability=rng.choice([1.0, 0.5]),
                )
            )
        elif not any(isinstance(c, Partition) for c in clauses):
            cut = rng.randint(1, len(names) - 1)
            shuffled = list(names)
            rng.shuffle(shuffled)
            clauses.append(
                Partition(
                    (frozenset(shuffled[:cut]), frozenset(shuffled[cut:])),
                    start=rng.randint(0, 10),
                    heal_at=rng.choice([None, 40, 80]),
                )
            )
    return FaultPlan(clauses)


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(sorted(FACTORIES)),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_safety_under_random_message_fault_plans(name, seed):
    """Omission, duplication, and partitions may stall the safe zoo but
    can never make it disagree or decide a non-input value."""
    protocol = get(name)
    rng = random.Random(seed)
    inputs = [rng.randint(0, 1) for _ in protocol.process_names]
    plan = _random_message_plan(rng, protocol.process_names)
    base = (
        RoundRobinScheduler()
        if rng.random() < 0.5
        else RandomScheduler(seed=seed, null_probability=0.1)
    )
    scheduler = FaultyScheduler(base, plan, seed=seed)
    result = simulate(
        protocol,
        protocol.initial_configuration(inputs),
        scheduler,
        max_steps=600,
        stop=StopCondition.ALL_DECIDED,
    )
    check_safety(protocol, result, inputs)


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(sorted(FACTORIES)),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_auditor_matches_legacy_checker_on_crash_only_plans(name, seed):
    """On the crash-only fragment the new auditor must accept exactly
    the runs the replay-based admissibility checker accepts."""
    protocol = get(name)
    rng = random.Random(seed)
    names = protocol.process_names
    victims = rng.sample(names, rng.randint(0, len(names) - 1))
    plan = FaultPlan(
        Crash(name, rng.randint(0, 40)) for name in sorted(victims)
    )
    inputs = [rng.randint(0, 1) for _ in names]
    scheduler = FaultyScheduler(
        RandomScheduler(seed=seed, null_probability=0.1), plan
    )
    initial = protocol.initial_configuration(inputs)
    result = simulate(
        protocol, initial, scheduler, max_steps=400,
        stop=StopCondition.ALL_DECIDED,
    )
    verdict = audit_run(
        protocol,
        initial,
        result.schedule,
        plan,
        fault_actions=tuple(result.fault_actions),
    )
    report = analyze_admissibility(
        protocol,
        initial,
        result.schedule,
        faulty=plan.faulty_processes,
        fault_point=plan.fault_point(),
    )
    assert verdict.report is not None
    assert verdict.admissible == report.fault_ok


# ---------------------------------------------------------------------------
# Engine-level fault injection: the analysis pipeline must reach the
# same verdicts whichever engine runs it — packed or dict-backed, serial
# or parallel, faulted or clean.
# ---------------------------------------------------------------------------

ENGINE_CONFIGS = [
    pytest.param({"packed": True, "workers": 0}, id="packed-serial"),
    pytest.param({"packed": False, "workers": 0}, id="dict-serial"),
    pytest.param({"packed": True, "workers": 2}, id="packed-workers2"),
]


def _census(protocol, *, chaos=None, **engine):
    analyzer = ValencyAnalyzer(
        protocol,
        resilience=ResilienceConfig(batch_timeout_s=10.0, max_retries=3),
        **engine,
    )
    if engine.get("workers", 0) > 1:
        # Force the pool to engage even on tiny frontiers.
        analyzer.graph._min_batch_per_worker = 1
    if chaos is not None:
        analyzer.graph.chaos = chaos
    try:
        return {
            vector: valency.value
            for vector, valency in analyzer.classify_initials().items()
        }, analyzer.stats
    finally:
        analyzer.close()


@pytest.mark.parametrize("engine", ENGINE_CONFIGS)
@pytest.mark.parametrize("name", ["parity", "2pc"])
def test_valency_census_is_engine_independent(name, engine):
    baseline, _stats = _census(get(name), packed=True, workers=0)
    census, _stats = _census(get(name), **engine)
    assert census == baseline


def test_census_survives_a_sigkilled_worker(tmp_path):
    """A worker crash mid-classification must not change one verdict."""
    baseline, _stats = _census(get("parity"), packed=True, workers=0)
    census, stats = _census(
        get("parity"),
        packed=True,
        workers=2,
        chaos=ChaosConfig(
            kill_once_path=str(tmp_path / "census-kill.sentinel")
        ),
    )
    assert census == baseline
    assert stats.worker_timeouts >= 1
    assert stats.pool_rebuilds >= 1
