"""Lemma-1 partial-order reduction and the process-symmetry quotient.

The exploration engine's cost is interleaving blowup: Lemma 1 of the
paper says schedules over disjoint process sets commute, so most of the
n! orderings of cross-process deliveries reach configurations the graph
has already seen — or will see — by another route.  This module turns
that observation into two opt-in reductions for the packed engine:

**Ample sets** (:class:`AmpleReducer`).  At a frontier node ``C`` the
reducer may record only an *ample subset* of the enabled events — all
events of one chosen process ``p`` — deferring the other processes'
events to ``C``'s descendants, where they remain enabled (in this model
a step by ``p`` can never disable another process's event: deliveries
consume per-destination messages and null steps are always enabled).
The clause-by-clause correspondence with Lemma 1 and with the classical
ample-set conditions is spelled out in ``MODEL.md`` ("Reduction
soundness"); operationally the reducer enforces:

* **non-emptiness** — a reduced node keeps every event of the chosen
  process, nulls included, so no enabled behaviour of ``p`` is lost and
  the reduced node is expanded iff the full node would be;
* **invisibility** — reduction is refused at any node that carries a
  decision or has a successor that gains one (pruning there could hide
  a decision value from the valency classifier);
* **commutation** — on a deterministic sample of reduced nodes the
  Lemma-1 diamond is replayed concretely: for kept event ``a`` and
  pruned event ``b``, ``b(a(C)) == a(b(C))`` on packed tuples.  A
  violation (impossible for conforming protocols, cheap insurance
  against custom step semantics) disables the reducer for the rest of
  the run and is counted in ``GraphStats.replay_violations``.

The invisibility clause is checkable locally; the deferral itself is
heuristic for protocols where a deferred step can send *new* mail to
the chosen process (see MODEL.md for the honest discussion), which is
why verdict identity against the unreduced graph is additionally pinned
by the zoo-wide property tests and the ``bench_por`` CI gate.

**Symmetry quotient** (:class:`SymmetryQuotient`).  For protocols whose
automata declare ``symmetric = True``, configurations are canonicalized
under process-name permutation before interning: the stored
representative is the lexicographically smallest packed image over all
``n!`` renamings (process names are rewritten both in tuple slots and
inside state data / message values).  The declaration is *validated* —
a transition-level automorphism check replays ``π(e(C)) == π(e)(π(C))``
over a bounded sample before the quotient is trusted; a protocol that
declares symmetry but fails the check falls back to the identity
quotient with a warning, and a protocol that never declared it is
rejected with :class:`~repro.core.errors.SymmetryError`.  Witness
schedules are *not* available from a quotient graph (recorded edges
connect orbit representatives, not concrete successors), so consumers
that extract replayable runs refuse to operate under ``--symmetry``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import TYPE_CHECKING, Hashable

from repro.core.configuration import Configuration
from repro.core.errors import FLPError, SymmetryError
from repro.core.events import Event
from repro.core.messages import Message, MessageBuffer
from repro.core.process import ProcessState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.exploration import GraphStats
    from repro.core.packing import PackedCodec
    from repro.core.protocol import Protocol

__all__ = [
    "ReductionPolicy",
    "AmpleReducer",
    "SymmetryQuotient",
    "declares_symmetry",
    "validate_symmetry",
    "rename_value",
    "rename_configuration",
]


@dataclass(frozen=True)
class ReductionPolicy:
    """What reductions to apply, and how paranoid to be about them.

    Attributes
    ----------
    por:
        Enable the Lemma-1 ample-set reducer.
    symmetry:
        Enable the process-permutation quotient (requires the protocol's
        automata to declare ``symmetric = True``).
    replay_every:
        Replay the commutation diamond at the first reduced node and
        every *replay_every*-th one after it.  Deterministic (a node
        counter, not a clock), so serial, parallel, and resumed runs
        sample identically.
    replay_pairs:
        Kept×pruned event pairs verified per sampled node.
    symmetry_max_processes:
        The quotient enumerates all ``n!`` renamings; above this roster
        size it falls back (with a warning) instead of exploding.
    """

    por: bool = False
    symmetry: bool = False
    replay_every: int = 64
    replay_pairs: int = 4
    symmetry_max_processes: int = 5

    @property
    def enabled(self) -> bool:
        return self.por or self.symmetry

    def describe(self) -> dict[str, bool]:
        """The checkpoint-header form: just the graph-shaping switches.

        Sampling cadence does not change which nodes exist, only which
        diamonds get double-checked, so it is not part of compatibility.
        """
        return {"por": self.por, "symmetry": self.symmetry}


# ---------------------------------------------------------------------------
# Renaming (shared by the quotient and its validator)
# ---------------------------------------------------------------------------


def rename_value(value: Hashable, mapping: dict[str, str]) -> Hashable:
    """Rewrite process names inside a protocol value.

    Descends through tuples and frozensets (the containers protocols use
    for hashable state) and maps any string equal to a process name to
    its image.  Everything else passes through untouched.  Protocols
    whose *non-name* string values collide with process names would be
    mis-renamed — the transition-level automorphism check catches that
    (the renamed transition no longer matches) and the quotient falls
    back.
    """
    if isinstance(value, str):
        return mapping.get(value, value)
    if isinstance(value, tuple):
        return tuple(rename_value(item, mapping) for item in value)
    if isinstance(value, frozenset):
        return frozenset(rename_value(item, mapping) for item in value)
    return value


def _rename_state(state: ProcessState, mapping: dict[str, str]) -> ProcessState:
    """*state* with process names rewritten inside its data field.

    Input and output registers are name-free by the model, so renaming
    preserves decision values by construction.
    """
    return ProcessState(
        state.input, state.output, rename_value(state.data, mapping)
    )


def _rename_buffer(
    buffer: MessageBuffer, mapping: dict[str, str]
) -> MessageBuffer:
    counts: dict[Message, int] = {}
    for message, count in buffer.items():
        renamed = Message(
            mapping.get(message.destination, message.destination),
            rename_value(message.value, mapping),
        )
        counts[renamed] = counts.get(renamed, 0) + count
    return MessageBuffer(counts)


def rename_configuration(
    configuration: Configuration, mapping: dict[str, str]
) -> Configuration:
    """The image ``π(C)``: process ``π(p)`` holds ``p``'s renamed state."""
    return Configuration(
        {
            mapping[name]: _rename_state(state, mapping)
            for name, state in configuration.states()
        },
        _rename_buffer(configuration.buffer, mapping),
    )


def declares_symmetry(protocol: "Protocol") -> bool:
    """Whether every automaton in *protocol* declares ``symmetric = True``."""
    return all(
        getattr(protocol.process(name), "symmetric", False)
        for name in protocol.process_names
    )


def validate_symmetry(
    protocol: "Protocol", sample_limit: int = 200
) -> list[str]:
    """Transition-level automorphism check for a declared symmetry.

    Replays ``π(e(C)) == π(e)(π(C))`` for every non-identity renaming
    ``π`` over a breadth-first sample of at most *sample_limit*
    configurations drawn from every initial configuration.  Returns a
    list of human-readable problems — empty iff the sample found the
    declaration consistent.
    """
    names = list(protocol.process_names)
    mappings = [
        dict(zip(names, image))
        for image in permutations(names)
        if list(image) != names
    ]
    problems: list[str] = []
    seen: set[Configuration] = set()
    queue: list[Configuration] = list(protocol.initial_configurations())
    for configuration in queue:
        seen.add(configuration)
    cursor = 0
    while cursor < len(queue) and len(seen) <= sample_limit:
        configuration = queue[cursor]
        cursor += 1
        for event in protocol.enabled_events(configuration):
            successor = protocol.apply_event(configuration, event)
            if successor not in seen and len(seen) < sample_limit:
                seen.add(successor)
                queue.append(successor)
            for mapping in mappings:
                image = rename_configuration(configuration, mapping)
                image_event = Event(
                    mapping[event.process],
                    rename_value(event.value, mapping),
                )
                via_rename = rename_configuration(successor, mapping)
                via_step = protocol.apply_event(image, image_event)
                if via_rename != via_step:
                    problems.append(
                        "automorphism check failed: "
                        f"renaming {mapping!r} does not commute with "
                        f"{event!r} (the automata are not "
                        "permutation-equivariant)"
                    )
                    return problems
    return problems


# ---------------------------------------------------------------------------
# The ample-set reducer
# ---------------------------------------------------------------------------


class AmpleReducer:
    """Per-node ample-subset filter for the packed engine's edge lists.

    Called by the engine inside the (node-ordered) merge, so serial,
    parallel, and resumed explorations reduce identically.  The filter
    is a pure function of the node, its full edge list, and the
    deterministic sample counter — all of which the checkpoint captures.
    """

    def __init__(
        self,
        codec: "PackedCodec",
        policy: ReductionPolicy,
        stats: "GraphStats",
    ):
        self._codec = codec
        self._policy = policy
        self._stats = stats
        #: False after a replay violation: the rest of the run expands
        #: fully (the honest response to a protocol whose steps do not
        #: commute the way the model promises).
        self.active = True
        #: Reduced nodes seen, driving the deterministic replay sample.
        self.reduced_nodes = 0

    def filter(
        self,
        packed: tuple[int, ...],
        edges: list[tuple[Event, tuple[int, ...]]],
    ) -> list[tuple[Event, tuple[int, ...]]]:
        """The edges to record for *packed*: ample subset or all of them."""
        if not self.active or len(edges) <= 1:
            return edges
        codec = self._codec
        stats = self._stats
        # Invisibility: a decided node, or any successor that gains a
        # decision, pins the node to full expansion — pruning here could
        # hide a decision value from the valency classifier.
        if codec.has_decision(packed):
            return edges
        position_of = codec.position_of
        candidate: int | None = None
        for event, successor in edges:
            if codec.has_decision(successor):
                stats.ample_fallbacks += 1
                return edges
            if not event.is_null_delivery:
                position = position_of(event.process)
                if candidate is None or position < candidate:
                    candidate = position
        if candidate is None:
            # Null-only phase: every process has exactly its null step,
            # there is no interleaving to collapse.
            return edges
        ample = [
            (event, successor)
            for event, successor in edges
            if position_of(event.process) == candidate
        ]
        if len(ample) == len(edges):
            return edges
        self.reduced_nodes += 1
        if (
            self.reduced_nodes == 1
            or self.reduced_nodes % self._policy.replay_every == 0
        ):
            pruned = [
                (event, successor)
                for event, successor in edges
                if position_of(event.process) != candidate
            ]
            if not self._diamonds_commute(ample, pruned):
                stats.replay_violations += 1
                stats.ample_fallbacks += 1
                self.active = False
                return edges
        stats.por_pruned += len(edges) - len(ample)
        return ample

    def _diamonds_commute(self, ample, pruned) -> bool:
        """Replay Lemma-1 diamonds between kept and pruned events.

        Every pair steps *different* processes by construction, so the
        lemma asserts the two orders meet at one configuration; checking
        it concretely on packed tuples guards against step semantics
        that break the model's commutation promise.
        """
        apply_packed = self._codec.apply_packed
        stats = self._stats
        budget = self._policy.replay_pairs
        checked = 0
        for kept_event, kept_successor in ample:
            for pruned_event, pruned_successor in pruned:
                if checked >= budget:
                    return True
                checked += 1
                stats.replay_checks += 1
                meet_via_kept = apply_packed(kept_successor, pruned_event)
                meet_via_pruned = apply_packed(pruned_successor, kept_event)
                if meet_via_kept != meet_via_pruned:
                    return False
        return True

    # -- checkpointing ------------------------------------------------------

    def snapshot_state(self) -> dict[str, object]:
        """Picklable sample-position state (the codec snapshots itself)."""
        return {
            "active": self.active,
            "reduced_nodes": self.reduced_nodes,
        }

    def restore_state(self, state: dict[str, object]) -> None:
        self.active = bool(state["active"])
        self.reduced_nodes = int(state["reduced_nodes"])


# ---------------------------------------------------------------------------
# The symmetry quotient
# ---------------------------------------------------------------------------


class SymmetryQuotient:
    """Canonicalize packed configurations under process-name permutation.

    The canonical representative of an orbit is the lexicographically
    smallest packed image over every renaming.  All derived tables
    (per-renaming state/buffer image memos, the orbit cache) are pure
    functions of the codec's interning tables, so checkpoint/resume
    rebuilds them on demand and stays byte-identical.

    Construct via :meth:`build`, which enforces the declaration and the
    automorphism validation.
    """

    def __init__(self, codec: "PackedCodec", names: list[str]):
        self._codec = codec
        self._names = list(names)
        self._mappings = [
            dict(zip(self._names, image))
            for image in permutations(self._names)
            if list(image) != self._names
        ]
        self._state_images: list[dict[int, int]] = [
            {} for _ in self._mappings
        ]
        self._buffer_images: list[dict[int, int]] = [
            {} for _ in self._mappings
        ]
        self._orbit: dict[tuple[int, ...], tuple[int, ...]] = {}

    @classmethod
    def build(
        cls,
        protocol: "Protocol",
        codec: "PackedCodec",
        policy: ReductionPolicy,
    ) -> "tuple[SymmetryQuotient | None, str | None]":
        """``(quotient, fallback_reason)`` for *protocol*.

        Raises :class:`SymmetryError` when the protocol never declared
        symmetry (an operator error: the flag asserts something about
        the protocol that its author did not).  A *declared* symmetry
        that fails validation, or a roster too large to quotient, is a
        soft failure: ``(None, reason)`` so the engine can warn and run
        unreduced.
        """
        names = list(protocol.process_names)
        if not declares_symmetry(protocol):
            raise SymmetryError(
                "the symmetry quotient needs every process automaton to "
                "declare `symmetric = True`; "
                f"{type(protocol.process(names[0])).__name__} does not — "
                "refusing to canonicalize an asymmetric protocol"
            )
        if len(names) > policy.symmetry_max_processes:
            return None, (
                f"roster of {len(names)} processes needs "
                f"{len(names)}! renamings per configuration; "
                "running without the quotient"
            )
        problems = validate_symmetry(protocol)
        if problems:
            return None, problems[0]
        return cls(codec, names), None

    def canonicalize(self, packed: tuple[int, ...]) -> tuple[int, ...]:
        """The orbit representative of *packed* (memoized)."""
        best = self._orbit.get(packed)
        if best is not None:
            return best
        best = packed
        for k in range(len(self._mappings)):
            candidate = self._image(packed, k)
            if candidate < best:
                best = candidate
        if best is not packed and self._codec.decision_values(
            best
        ) != self._codec.decision_values(packed):
            raise FLPError(
                "symmetry canonicalization changed the decision set — "
                "renaming must never touch output registers (model bug)"
            )
        self._orbit[packed] = best
        return best

    def _image(self, packed: tuple[int, ...], k: int) -> tuple[int, ...]:
        codec = self._codec
        mapping = self._mappings[k]
        slots = [0] * len(packed)
        for index, name in enumerate(self._names):
            slots[codec.position_of(mapping[name])] = self._image_state(
                packed[index], k
            )
        slots[-1] = self._image_buffer(packed[-1], k)
        return tuple(slots)

    def _image_state(self, state_id: int, k: int) -> int:
        memo = self._state_images[k]
        image = memo.get(state_id)
        if image is None:
            renamed = _rename_state(
                self._codec.state_at(state_id), self._mappings[k]
            )
            image = self._codec.intern_state(renamed)
            memo[state_id] = image
        return image

    def _image_buffer(self, buffer_id: int, k: int) -> int:
        memo = self._buffer_images[k]
        image = memo.get(buffer_id)
        if image is None:
            renamed = _rename_buffer(
                self._codec.buffer_at(buffer_id), self._mappings[k]
            )
            image = self._codec.intern_buffer(renamed)
            memo[buffer_id] = image
        return image
