"""The ``spectrum`` serve verb: cached sweeps, family filters, drain.

A spectrum job is a Monte-Carlo sweep, not an exploration — but it
rides the same job machinery: content-keyed cache, single-flight
dedup, per-cell checkpoint into the job's spool slot, and drain →
suspend → resume on a successor daemon with a byte-identical
fingerprint.
"""

import json
import time

from repro.serve.wire import JobSpec, cache_key
from repro.spectrum import SweepRunner, smoke_grid

SMOKE = {"verb": "spectrum", "protocol": "all", "preset": "smoke"}


def _wait_for(predicate, timeout_s=120.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    raise TimeoutError("condition not met in time")


class TestSpectrumQuery:
    def test_smoke_sweep_round_trip(self, daemon):
        client = daemon().client
        response = client.query(SMOKE)
        assert response.status == 200
        payload = json.loads(response.body)
        assert payload["verb"] == "spectrum"
        assert payload["partial"] is None
        result = payload["result"]
        assert result["completed_cells"] == result["total_cells"] == 6
        assert result["phase_ok"] is True
        reference = SweepRunner(smoke_grid()).run().fingerprint()
        assert result["fingerprint"] == reference

    def test_second_query_is_a_cache_hit(self, daemon):
        client = daemon().client
        first = client.query(SMOKE)
        assert first.headers["x-repro-cache"] == "accepted"
        second = client.query(SMOKE)
        assert second.headers["x-repro-cache"] == "cached"
        assert second.body == first.body

    def test_family_filter_narrows_grid_and_cache_key(self, daemon):
        benor = dict(SMOKE, protocol="benor")
        assert cache_key(JobSpec.from_dict(SMOKE)) != cache_key(
            JobSpec.from_dict(benor)
        )
        client = daemon().client
        payload = json.loads(client.query(benor).body)
        cells = payload["result"]["cells"]
        assert payload["result"]["total_cells"] == len(cells) == 4
        assert all(
            outcome["cell"]["protocol"] == "benor"
            for outcome in cells.values()
        )

    def test_deadline_fields_share_cache_entry(self, daemon):
        client = daemon().client
        first = client.query(SMOKE)
        patient = client.query(dict(SMOKE, max_seconds=600.0))
        assert patient.headers["x-repro-cache"] == "cached"
        assert patient.body == first.body

    def test_bad_spectrum_spec_is_400(self, daemon):
        client = daemon().client
        response = client.submit(dict(SMOKE, protocol="parity-arbiter"))
        assert response.status == 400
        assert "protocol family" in response.json()["error"]


class TestSpectrumDrainResume:
    def test_drain_mid_sweep_resumes_with_identical_fingerprint(
        self, daemon, tmp_path
    ):
        # Inflate the per-cell cost so the drain lands mid-grid.
        spec = dict(SMOKE, samples=3000)
        spool_dir = tmp_path / "spectrum-spool"
        first = daemon(spool=spool_dir, checkpoint_every_s=0.05)
        client = first.client
        job_id = client.submit(spec).json()["job_id"]
        _wait_for(
            lambda: client.job(job_id).json()["state"] == "running"
            and client.job(job_id).json()["has_checkpoint"]
        )
        first.stop()  # drain: the sweep suspends at a cell boundary

        second = daemon(spool=spool_dir, checkpoint_every_s=0.05)
        view = _wait_for(
            lambda: (
                second.client.job(job_id).json()["state"] == "done"
                and second.client.job(job_id).json()
            )
        )
        assert view["resumes"] >= 1
        payload = json.loads(second.client.result(job_id).body)
        assert payload["partial"] is None
        assert payload["meta"]["resumed_cells"] >= 1
        reference = (
            SweepRunner(smoke_grid(), base_seed=0)
            .run()
            .fingerprint()
        )
        # Same grid, different samples → different fingerprint from the
        # smoke reference, but identical to an uninterrupted run of the
        # same spec.
        assert payload["result"]["fingerprint"] != reference
        from repro.serve.runner import execute_job

        cold = execute_job(JobSpec.from_dict(spec))
        assert payload["result"]["fingerprint"] == (
            cold["result"]["fingerprint"]
        )
