"""The sweep runtime: cells, checkpoints, budgets, phase expectations."""

import json

import pytest

from repro.spectrum.montecarlo import (
    SpectrumCell,
    SweepResult,
    SweepRunner,
    _wilson_interval,
    check_phase_expectations,
    default_grid,
    run_cell,
    smoke_grid,
)

FAST_BENOR = SpectrumCell(
    protocol="benor", n=3, f=1, grade="oblivious", samples=20, horizon=40,
    drop_probability=0.5,
)
FAST_ROTATING = SpectrumCell(
    protocol="rotating", n=3, f=1, grade="adaptive", gst=3, samples=10,
    horizon=12,
)


def _tiny_grid():
    return [FAST_BENOR, FAST_ROTATING]


class TestSpectrumCell:
    def test_rotating_requires_n_gt_2f(self):
        with pytest.raises(ValueError, match="N > 2f"):
            SpectrumCell(protocol="rotating", n=4, f=2, grade="none")

    def test_benor_allows_f_up_to_n_minus_one(self):
        cell = SpectrumCell(protocol="benor", n=3, f=2, grade="none")
        assert cell.f == 2

    def test_detector_only_on_rotating(self):
        with pytest.raises(ValueError, match="rotating cells only"):
            SpectrumCell(
                protocol="benor", n=3, f=1, grade="none", detector="perfect"
            )

    def test_bad_grade_and_gst_rejected(self):
        with pytest.raises(ValueError, match="grade"):
            SpectrumCell(protocol="benor", n=3, f=1, grade="byzantine")
        with pytest.raises(ValueError, match="gst"):
            SpectrumCell(protocol="benor", n=3, f=1, grade="none", gst=0)

    def test_key_distinguishes_gst_infinity(self):
        finite = FAST_ROTATING.key()
        infinite = SpectrumCell(
            **dict(FAST_ROTATING.to_dict(), gst=None)
        ).key()
        assert "gst-3" in finite and "gst-inf" in infinite

    def test_dict_round_trip(self):
        assert SpectrumCell.from_dict(FAST_BENOR.to_dict()) == FAST_BENOR


class TestStatistics:
    def test_wilson_degenerate_cases(self):
        assert _wilson_interval(0, 0) == (0.0, 1.0)
        low, high = _wilson_interval(50, 50)
        assert low > 0.9 and high == 1.0
        low, high = _wilson_interval(0, 50)
        assert low < 1e-12 and high < 0.1

    def test_wilson_brackets_the_estimate(self):
        low, high = _wilson_interval(30, 100)
        assert low < 0.3 < high


class TestRunCell:
    def test_deterministic_in_cell_and_seed(self):
        first = run_cell(FAST_BENOR, base_seed=7).to_dict()
        second = run_cell(FAST_BENOR, base_seed=7).to_dict()
        assert first == second

    def test_base_seed_changes_the_draw(self):
        a = run_cell(FAST_BENOR, base_seed=0).to_dict()
        b = run_cell(FAST_BENOR, base_seed=1).to_dict()
        assert a != b

    def test_safe_benor_cell_always_terminates(self):
        outcome = run_cell(FAST_BENOR)
        assert outcome.termination_rate == 1.0
        assert outcome.agreement_violations == 0
        assert outcome.validity_violations == 0
        assert outcome.fault_counters.get("fault_omission_drops", 0) > 0

    def test_rotating_decides_within_f_plus_one_post_gst(self):
        outcome = run_cell(FAST_ROTATING)
        assert outcome.termination_rate == 1.0
        assert outcome.max_post_gst is not None
        assert outcome.max_post_gst <= FAST_ROTATING.f + 1

    def test_flp_cell_never_terminates(self):
        cell = SpectrumCell(
            **dict(FAST_ROTATING.to_dict(), gst=None)
        )
        outcome = run_cell(cell)
        assert outcome.terminated == 0
        assert outcome.mean_rounds is None


class TestSweepRunner:
    def test_duplicate_cells_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SweepRunner([FAST_BENOR, FAST_BENOR])

    def test_serial_sweep_completes_and_checkpoints(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        result = SweepRunner(
            _tiny_grid(), checkpoint_path=str(path)
        ).run()
        assert result.complete and result.partial is None
        data = json.loads(path.read_text())
        assert data["kind"] == "spectrum-sweep"
        assert len(data["completed"]) == 2

    def test_resume_skips_completed_cells(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        reference = SweepRunner(
            _tiny_grid(), checkpoint_path=str(path)
        ).run()
        resumed = SweepRunner(
            _tiny_grid(), checkpoint_path=str(path)
        ).run()
        assert resumed.resumed_cells == 2
        assert resumed.fingerprint() == reference.fingerprint()

    def test_checkpoint_with_other_seed_is_ignored(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        SweepRunner(
            _tiny_grid(), base_seed=0, checkpoint_path=str(path)
        ).run()
        other = SweepRunner(
            _tiny_grid(), base_seed=1, checkpoint_path=str(path)
        ).run()
        assert other.resumed_cells == 0

    def test_corrupt_checkpoint_is_ignored(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        path.write_text("{torn")
        result = SweepRunner(
            _tiny_grid(), checkpoint_path=str(path)
        ).run()
        assert result.complete and result.resumed_cells == 0

    def test_request_stop_degrades_to_partial(self):
        runner = SweepRunner(_tiny_grid())
        runner.request_stop("drain")
        result = runner.run()
        assert not result.complete
        assert result.partial is not None
        assert result.partial.reason == "drain"
        # The latch is sticky: later reasons do not overwrite it.
        runner.request_stop("interrupt")
        assert runner.stop_reason == "drain"

    def test_parallel_fingerprint_matches_serial(self, tmp_path):
        serial = SweepRunner(_tiny_grid()).run()
        parallel = SweepRunner(_tiny_grid(), workers=2).run()
        assert parallel.complete
        assert parallel.fingerprint() == serial.fingerprint()

    def test_fingerprint_ignores_resume_history(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        first = SweepRunner(
            _tiny_grid(), checkpoint_path=str(path)
        ).run()
        replay = SweepRunner(
            _tiny_grid(), checkpoint_path=str(path)
        ).run()
        assert replay.resumed_cells != first.resumed_cells
        assert (
            replay.to_dict()["fingerprint"]
            == first.to_dict()["fingerprint"]
        )


class TestGrids:
    def test_grid_sizes(self):
        assert len(default_grid()) == 24
        assert len(smoke_grid()) == 6

    def test_grid_keys_unique(self):
        keys = [cell.key() for cell in default_grid()]
        assert len(set(keys)) == len(keys)


class TestPhaseExpectations:
    def test_smoke_sweep_matches_the_paper(self):
        result = SweepRunner(smoke_grid()).run()
        assert check_phase_expectations(result) == []

    def test_agreement_violation_is_reported(self):
        result = SweepRunner([FAST_BENOR]).run()
        outcome = next(iter(result.outcomes.values()))
        outcome.agreement_violations = 3
        violations = check_phase_expectations(result)
        assert any("agreement" in v for v in violations)

    def test_nonterminating_safe_cell_is_reported(self):
        result = SweepRunner([FAST_BENOR]).run()
        outcome = next(iter(result.outcomes.values()))
        outcome.terminated = 0
        outcome.termination_rate = 0.0
        violations = check_phase_expectations(result)
        assert any("every sampled run" in v for v in violations)
