"""Determinism and honesty of the parallel frontier expansion.

The contract of ``workers > 1`` is strict: the resulting graph — node
ids, edge order, decision indexes, everything downstream (census,
witnesses, adversary schedules) — must be **byte-identical** to a
serial run.  The level-synchronized BFS with an in-order merge makes
that a structural property rather than a lucky accident; these tests
pin it down, along with the budget contract and the observability
counters.

``min_batch_per_worker=1`` forces even tiny test graphs through the
worker pool (the production default only ships batches big enough to
occupy every worker).
"""

import pytest

from repro.core.exploration import GlobalConfigurationGraph
from repro.core.valency import ValencyAnalyzer
from repro.protocols import ParityArbiterProcess, make_protocol


def parallel_graph(protocol, workers=2):
    return GlobalConfigurationGraph(
        protocol, workers=workers, min_batch_per_worker=1
    )


@pytest.fixture(scope="module")
def parity3():
    return make_protocol(ParityArbiterProcess, 3)


class TestByteIdenticalWithSerial:
    @pytest.fixture(scope="class")
    def pair(self, parity3):
        roots = [
            parity3.initial_configuration(inputs)
            for inputs in ([0, 0, 1], [1, 1, 0])
        ]
        serial = GlobalConfigurationGraph(parity3)
        parallel = parallel_graph(parity3)
        try:
            for root in roots:
                serial_result = serial.explore(root)
                parallel_result = parallel.explore(root)
                assert serial_result == parallel_result
            yield serial, parallel
        finally:
            parallel.close()

    def test_pool_actually_engaged(self, pair):
        _serial, parallel = pair
        assert parallel.stats.workers == 2
        assert parallel.stats.worker_batches > 0
        assert parallel.stats.worker_batch_nodes > 0
        assert parallel.stats.worker_max_batch > 0

    def test_same_packed_tuples_same_ids(self, pair):
        serial, parallel = pair
        assert len(serial) == len(parallel)
        for node in range(len(serial)):
            assert serial.packed_at(node) == parallel.packed_at(node)

    def test_same_edge_lists(self, pair):
        serial, parallel = pair
        assert serial.successors == parallel.successors

    def test_same_decision_indexes(self, pair):
        serial, parallel = pair
        for value in (0, 1):
            assert serial.decision_nodes(value) == (
                parallel.decision_nodes(value)
            )

    def test_same_rich_configurations(self, pair):
        serial, parallel = pair
        for node in range(0, len(serial), 7):
            assert serial.configuration_at(node) == (
                parallel.configuration_at(node)
            )


class TestAnalyzerParity:
    def test_census_and_witness_identical(self, parity3):
        root = parity3.initial_configuration([0, 0, 1])
        outcomes = []
        for workers in (0, 2):
            analyzer = ValencyAnalyzer(parity3, workers=workers)
            # Force pool engagement on this small graph.
            analyzer.graph._min_batch_per_worker = 1
            try:
                valency = analyzer.valency(root)
                witness = analyzer.bivalence_witness(root)
                engine = analyzer.graph
                closure = engine.reachable_from(engine.node_id(root))
                census = sorted(
                    (node, analyzer.peek_node(node).value)
                    for node in closure.nodes
                )
                outcomes.append(
                    (valency, witness.to_zero.events,
                     witness.to_one.events, census)
                )
            finally:
                analyzer.close()
        assert outcomes[0] == outcomes[1]


class TestBudgetHonesty:
    def test_truthful_partial_answer(self, parity3):
        root = parity3.initial_configuration([0, 0, 1])
        graph = parallel_graph(parity3)
        try:
            result = graph.explore(root, max_configurations=10)
            assert not result.complete
            assert not graph.complete
            assert len(graph) <= 10
            frontier = graph.frontier_ids()
            assert frontier
            # Expanded nodes have their complete successor sets; frontier
            # nodes have none (expansion is all-or-nothing per node).
            for node in range(len(graph)):
                if node in frontier:
                    assert graph.successors[node] == []
                else:
                    assert graph.successors[node]
        finally:
            graph.close()

    def test_budget_cut_is_deterministic(self, parity3):
        root = parity3.initial_configuration([0, 0, 1])
        serial = GlobalConfigurationGraph(parity3)
        parallel = parallel_graph(parity3)
        try:
            serial.explore(root, max_configurations=25)
            parallel.explore(root, max_configurations=25)
            assert len(serial) == len(parallel)
            assert serial.successors == parallel.successors
            assert serial.frontier_ids() == parallel.frontier_ids()
        finally:
            parallel.close()


class TestPoolLifecycle:
    def test_close_is_idempotent(self, parity3):
        graph = parallel_graph(parity3)
        graph.explore(parity3.initial_configuration([0, 0, 1]))
        graph.close()
        graph.close()  # second close is a no-op

    def test_serial_close_is_noop(self, parity3):
        graph = GlobalConfigurationGraph(parity3)
        graph.close()

    def test_explore_works_after_close(self, parity3):
        # The pool is an optimization; a closed engine lazily reopens it.
        graph = parallel_graph(parity3)
        try:
            graph.explore(parity3.initial_configuration([0, 0, 1]))
            graph.close()
            result = graph.explore(
                parity3.initial_configuration([1, 1, 0])
            )
            assert result.complete
        finally:
            graph.close()


class TestStatsCounters:
    def test_transition_counters_surface_in_stats(self, parity3):
        analyzer = ValencyAnalyzer(parity3)
        root = parity3.initial_configuration([0, 0, 1])
        analyzer.valency(root)
        before = analyzer.stats.as_dict()
        assert "transition_hits" in before
        assert "transition_misses" in before
        # Drive the rich-level shared cache directly: first call misses,
        # second hits — and both movements show up in GraphStats.
        from repro.core.events import NULL, Event

        event = Event("p1", NULL)
        analyzer.transitions.apply(parity3, root, event)
        analyzer.transitions.apply(parity3, root, event)
        after = analyzer.stats.as_dict()
        assert after["transition_misses"] > before["transition_misses"]
        assert after["transition_hits"] > before["transition_hits"]

    def test_packed_step_counters_move(self, parity3):
        analyzer = ValencyAnalyzer(parity3)
        analyzer.valency(parity3.initial_configuration([0, 0, 1]))
        stats = analyzer.stats
        assert stats.packed_step_misses > 0
        # With the batched kernel (the default), hot-path reuse lands in
        # the dense table counters; scalar memo hits only accumulate on
        # the fill-on-miss oracle path.
        assert stats.packed_step_hits + stats.kernel_table_hits > 0
        assert stats.encode_time >= 0.0
