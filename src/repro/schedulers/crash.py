"""Crash-fault plan construction helpers.

The paper's fault model is the *unannounced process death*: a faulty
process simply stops, and no other process can distinguish death from
slowness.  :class:`~repro.schedulers.base.CrashPlan` encodes who dies and
when; this module builds plans — random ones for statistical experiments
and targeted ones (e.g. "kill the coordinator right after it decides to
commit") for the window-of-vulnerability demonstrations.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.errors import FaultModelError
from repro.schedulers.base import CrashPlan

__all__ = [
    "random_crash_plan",
    "single_crash_plans",
    "initially_dead_plans",
]


def random_crash_plan(
    process_names: Sequence[str],
    max_faulty: int,
    max_step: int,
    rng: random.Random,
) -> CrashPlan:
    """A random plan killing up to *max_faulty* processes.

    Each selected victim crashes at a uniformly random step in
    ``[0, max_step]``.  The number of victims is uniform in
    ``[0, max_faulty]`` so fault-free runs occur too.
    """
    if max_faulty > len(process_names):
        raise FaultModelError(
            f"cannot crash {max_faulty} of {len(process_names)} processes"
        )
    count = rng.randint(0, max_faulty)
    victims = rng.sample(list(process_names), count)
    return CrashPlan(
        {name: rng.randint(0, max_step) for name in victims}
    )


def single_crash_plans(
    process_names: Sequence[str], crash_steps: Sequence[int]
) -> list[CrashPlan]:
    """Every plan that kills exactly one process at one of the given
    steps — the space Theorem 1 quantifies over ("even a single
    unannounced process death")."""
    return [
        CrashPlan({name: step})
        for name in process_names
        for step in crash_steps
    ]


def initially_dead_plans(
    process_names: Sequence[str], num_dead: int
) -> list[CrashPlan]:
    """All plans with exactly *num_dead* processes dead from step 0.

    This is Section 4's fault model: "no process knows in advance which
    of the processes are initially dead."
    """
    names = list(process_names)
    if num_dead > len(names):
        raise FaultModelError(
            f"cannot have {num_dead} dead of {len(names)} processes"
        )
    plans: list[CrashPlan] = []

    def choose(start: int, chosen: list[str]) -> None:
        if len(chosen) == num_dead:
            plans.append(CrashPlan.initially_dead(frozenset(chosen)))
            return
        for index in range(start, len(names)):
            choose(index + 1, chosen + [names[index]])

    choose(0, [])
    return plans
