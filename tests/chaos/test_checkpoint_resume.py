"""Interrupt-at-every-level resume identity — the determinism pin.

A run killed at *any* BFS level and resumed from its latest checkpoint
must finish with a graph byte-identical to an uninterrupted run (same
roots, same configuration budget).  This is the contract that makes
checkpoints trustworthy: nothing downstream — valency classification,
adversary schedules, fingerprints — can tell the runs apart.
"""

import pytest

from repro.core.checkpoint import load_checkpoint
from repro.core.exploration import GlobalConfigurationGraph
from repro.core.resilience import (
    ChaosConfig,
    CheckpointConfig,
    run_chaos_suite,
)
from repro.protocols import ParityArbiterProcess, make_protocol

BUDGET = 2_000


@pytest.fixture(scope="module")
def protocol():
    return make_protocol(ParityArbiterProcess, 3)


@pytest.fixture(scope="module")
def clean(protocol):
    graph = GlobalConfigurationGraph(protocol)
    graph.explore(
        protocol.initial_configuration([0, 0, 1]),
        max_configurations=BUDGET,
    )
    return graph


def _root(protocol):
    return protocol.initial_configuration([0, 0, 1])


class TestPackedEngine:
    def test_interrupt_at_every_level_resumes_identically(
        self, protocol, clean, tmp_path
    ):
        levels = clean.stats.explore_levels
        assert levels >= 3, "protocol too small to interrupt meaningfully"
        path = str(tmp_path / "resume.ckpt")
        for level in range(1, levels + 1):
            victim = GlobalConfigurationGraph(
                protocol,
                checkpoint=CheckpointConfig(path=path, every_levels=1),
                chaos=ChaosConfig(interrupt_after_level=level),
            )
            with pytest.raises(KeyboardInterrupt):
                victim.explore(_root(protocol), max_configurations=BUDGET)
            assert victim.last_partial is not None
            assert victim.last_partial.reason == "interrupt"
            assert victim.last_partial.checkpoint_path == path

            resumed = load_checkpoint(path, protocol)
            resumed.explore(_root(protocol), max_configurations=BUDGET)
            assert resumed.fingerprint() == clean.fingerprint(), (
                f"resume diverged after interrupt at level {level}"
            )

    def test_interrupt_past_budget_truncation_resumes_identically(
        self, protocol, tmp_path
    ):
        # Truncated runs exercise the all-or-nothing budget skips; with
        # the SAME budget the resumed run must still match single-shot.
        budget = 80
        clean = GlobalConfigurationGraph(protocol)
        result = clean.explore(_root(protocol), max_configurations=budget)
        assert not result.complete
        path = str(tmp_path / "truncated.ckpt")
        for level in range(1, clean.stats.explore_levels + 1):
            victim = GlobalConfigurationGraph(
                protocol,
                checkpoint=CheckpointConfig(path=path, every_levels=1),
                chaos=ChaosConfig(interrupt_after_level=level),
            )
            with pytest.raises(KeyboardInterrupt):
                victim.explore(_root(protocol), max_configurations=budget)
            resumed = load_checkpoint(path, protocol)
            resumed.explore(_root(protocol), max_configurations=budget)
            assert resumed.fingerprint() == clean.fingerprint()


class TestDictEngine:
    def test_interrupt_mid_run_resumes_identically(
        self, protocol, tmp_path
    ):
        clean = GlobalConfigurationGraph(protocol, packed=False)
        clean.explore(_root(protocol), max_configurations=BUDGET)
        total = clean.stats.expansions
        assert total > 50
        path = str(tmp_path / "dict.ckpt")
        from repro.core.resilience import ResilienceConfig

        for cut in (1, total // 2, total - 1):
            victim = GlobalConfigurationGraph(
                protocol,
                packed=False,
                resilience=ResilienceConfig(check_interval_nodes=1),
                checkpoint=CheckpointConfig(path=path, every_levels=1),
                chaos=ChaosConfig(interrupt_after_expansions=cut),
            )
            with pytest.raises(KeyboardInterrupt):
                victim.explore(_root(protocol), max_configurations=BUDGET)
            resumed = load_checkpoint(path, protocol)
            assert not resumed.packed
            resumed.explore(_root(protocol), max_configurations=BUDGET)
            # Dict-mode fingerprints are only stable within one process
            # — which both runs share, so the comparison is sound here.
            assert resumed.fingerprint() == clean.fingerprint()


class TestChaosSuiteEntryPoint:
    def test_interrupt_resume_scenario_via_public_api(self, protocol):
        outcomes = run_chaos_suite(
            protocol,
            workers=1,  # worker scenarios skipped, deterministic + fast
            max_configurations=BUDGET,
        )
        by_name = {outcome.scenario: outcome for outcome in outcomes}
        assert by_name["interrupt-resume"].ok
        assert "skipped" in by_name["worker-kill"].detail

    def test_unknown_scenario_rejected(self, protocol):
        with pytest.raises(ValueError, match="unknown chaos scenario"):
            run_chaos_suite(protocol, scenarios=("nope",))
