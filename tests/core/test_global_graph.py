"""Tests for the shared incremental configuration-graph engine.

The engine (:class:`repro.core.exploration.GlobalConfigurationGraph`)
replaces per-root re-exploration: configurations are interned to dense
ids exactly once, growth resumes from any root, and reverse
reachability runs over flat bytearray visited maps.  These tests pin
the contracts the valency analyzer and the adversary build on.
"""

import pytest

from repro.adversary.flp import FLPAdversary
from repro.core.events import NULL, Event
from repro.core.exploration import GlobalConfigurationGraph, explore
from repro.core.valency import Valency, ValencyAnalyzer
from repro.core.values import ONE, ZERO
from repro.protocols import (
    ArbiterProcess,
    ParityArbiterProcess,
    make_protocol,
)


class TestInterning:
    def test_ids_are_dense_and_stable(self, arbiter3):
        engine = GlobalConfigurationGraph(arbiter3)
        root = arbiter3.initial_configuration([0, 0, 1])
        first = engine.intern(root)
        assert first == 0
        assert engine.intern(root) == first  # stable across calls
        engine.explore(root)
        assert engine.intern(root) == first  # stable across growth
        assert sorted(
            engine.node_id(c) for c in engine.configurations
        ) == list(range(len(engine)))

    def test_find_does_not_allocate(self, arbiter3):
        engine = GlobalConfigurationGraph(arbiter3)
        root = arbiter3.initial_configuration([0, 0, 1])
        assert engine.find(root) is None
        assert len(engine) == 0
        engine.intern(root)
        assert engine.find(root) == 0

    def test_decision_nodes_maintained_incrementally(self, arbiter3):
        engine = GlobalConfigurationGraph(arbiter3)
        engine.explore(arbiter3.initial_configuration([0, 0, 1]))
        for value in (ZERO, ONE):
            expected = [
                node
                for node, configuration in enumerate(
                    engine.configurations
                )
                if value in configuration.decision_values()
            ]
            assert engine.decision_nodes(value) == expected
            assert expected  # mixed inputs reach both decisions


class TestIncrementalGrowth:
    def test_second_root_inside_closure_adds_nothing(self, arbiter3):
        engine = GlobalConfigurationGraph(arbiter3)
        root = arbiter3.initial_configuration([0, 0, 1])
        engine.explore(root)
        interned = len(engine)
        expansions = engine.stats.expansions
        successor = arbiter3.apply_event(root, Event("p1", NULL))
        result = engine.explore(successor)
        assert result.complete
        assert len(engine) == interned
        assert engine.stats.expansions == expansions

    def test_overlapping_roots_share_nodes(self, arbiter3):
        root = arbiter3.initial_configuration([0, 0, 1])
        mid = arbiter3.apply_event(root, Event("p1", NULL))
        shared = GlobalConfigurationGraph(arbiter3)
        shared.explore(root)
        root_only = len(shared)
        shared.explore(mid)
        separate = GlobalConfigurationGraph(arbiter3)
        separate.explore(mid)
        # mid's closure is a subset of root's, so the shared engine
        # interns exactly root's closure — not the sum of both.
        assert len(shared) == root_only
        assert len(shared) < root_only + len(separate)
        assert shared.explore(root).nodes >= shared.explore(mid).nodes

    def test_growth_result_nodes_are_forward_closure(self, arbiter3):
        engine = GlobalConfigurationGraph(arbiter3)
        root = arbiter3.initial_configuration([0, 0, 1])
        result = engine.explore(root)
        assert result.root == engine.node_id(root)
        assert engine.reachable_from(result.root).nodes == result.nodes
        assert result.nodes == frozenset(range(len(engine)))


class TestBudgetHonesty:
    def test_exhaustion_reports_incomplete_with_truthful_frontier(
        self, arbiter3
    ):
        engine = GlobalConfigurationGraph(arbiter3)
        root = arbiter3.initial_configuration([0, 0, 1])
        result = engine.explore(root, max_configurations=5)
        assert not result.complete
        assert not engine.complete
        assert len(engine) <= 5
        frontier = engine.frontier_ids()
        assert frontier
        for node in frontier:
            # Unexpanded nodes never carry a partial successor set.
            assert engine.successors[node] == []
            assert not engine.is_expanded(node)

    def test_raising_budget_resumes_from_frontier(self, arbiter3):
        engine = GlobalConfigurationGraph(arbiter3)
        root = arbiter3.initial_configuration([0, 0, 1])
        assert not engine.explore(root, max_configurations=5).complete
        resumed = engine.explore(root, max_configurations=100_000)
        assert resumed.complete
        assert engine.complete
        reference = explore(arbiter3, root)
        assert len(engine) == len(reference)


class TestBitsetReachability:
    @pytest.mark.parametrize(
        "process_cls", [ArbiterProcess, ParityArbiterProcess]
    )
    def test_matches_set_based_implementation(self, process_cls):
        protocol = make_protocol(process_cls, 3)
        root = protocol.initial_configuration([0, 0, 1])
        reference = explore(protocol, root)  # per-root, set-based
        engine = GlobalConfigurationGraph(protocol)
        engine.explore(root)
        assert len(engine) == len(reference)
        for value in (ZERO, ONE):
            old = {
                reference.configurations[node]
                for node in reference.nodes_reaching(
                    reference.decision_nodes(value)
                )
            }
            mask = engine.reaching_mask(engine.decision_nodes(value))
            new = {
                engine.configurations[node]
                for node, hit in enumerate(mask)
                if hit
            }
            assert new == old

    def test_set_view_matches_mask(self, arbiter3):
        engine = GlobalConfigurationGraph(arbiter3)
        engine.explore(arbiter3.initial_configuration([0, 0, 1]))
        targets = engine.decision_nodes(ZERO)
        mask = engine.reaching_mask(targets)
        assert engine.nodes_reaching(targets) == {
            node for node, hit in enumerate(mask) if hit
        }

    def test_empty_targets(self, arbiter3):
        engine = GlobalConfigurationGraph(arbiter3)
        engine.explore(arbiter3.initial_configuration([0, 0, 1]))
        assert engine.nodes_reaching([]) == set()


class TestAnalyzerCacheRegression:
    """The bugs this PR fixes: re-exploration on overlapping queries."""

    def test_witness_via_other_root_is_pure_lookup(self, arbiter3):
        analyzer = ValencyAnalyzer(arbiter3)
        initial = arbiter3.initial_configuration([0, 0, 1])
        analyzer.valency(initial)
        # A configuration classified via the initial's exploration —
        # previously a `_graph_for` miss triggering a second
        # exploration; now a lookup on the shared graph.
        successor = arbiter3.apply_event(initial, Event("p1", NULL))
        assert analyzer.peek(successor) is Valency.BIVALENT
        explored_before = analyzer.configurations_explored
        witness = analyzer.bivalence_witness(successor)
        assert witness is not None
        assert witness.verify(arbiter3)
        assert analyzer.configurations_explored == explored_before

    def test_adversary_stages_grow_graph_sublinearly(self):
        protocol = make_protocol(ParityArbiterProcess, 3)
        analyzer = ValencyAnalyzer(protocol)
        FLPAdversary(protocol, analyzer=analyzer).build_run(stages=3)
        after_short = analyzer.configurations_explored
        hits_short = analyzer.stats.cache_hits
        FLPAdversary(protocol, analyzer=analyzer).build_run(stages=12)
        after_long = analyzer.configurations_explored
        # Every stage configuration lies in the initial's closure, so
        # 4x the stages intern zero new configurations — the counter
        # growth is flat, not linear in stages.
        assert after_long == after_short
        assert analyzer.stats.cache_hits > hits_short

    def test_repeated_census_does_no_new_exploration(self, arbiter3):
        from repro.analysis.valency_map import build_valency_map

        analyzer = ValencyAnalyzer(arbiter3)
        root = arbiter3.initial_configuration([0, 0, 1])
        first = build_valency_map(arbiter3, root, analyzer=analyzer)
        explored = analyzer.configurations_explored
        explore_calls = analyzer.stats.explore_calls
        second = build_valency_map(arbiter3, root, analyzer=analyzer)
        assert analyzer.configurations_explored == explored
        assert analyzer.stats.explore_calls == explore_calls
        assert second.counts == first.counts
        assert second.critical_steps == first.critical_steps
