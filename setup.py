"""Setup shim for environments without the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables
`pip install -e . --no-use-pep517` (legacy editable installs) on offline
machines where PEP 660 builds fail for lack of `wheel`.
"""

from setuptools import setup

setup()
