"""Tests for the executable Lemma 3 checker."""

import pytest

from repro.adversary.certificates import Lemma3Case
from repro.adversary.lemmas import find_bivalent_successor
from repro.core.events import NULL, Event
from repro.core.valency import Valency, ValencyAnalyzer


@pytest.fixture(scope="module")
def bivalent_initial(request):
    pass  # placeholder; per-test fixtures below use session protocols


class TestSuccessSide:
    def test_null_event_on_bivalent_initial(self, arbiter3, arbiter3_analyzer):
        config = arbiter3.initial_configuration([0, 0, 1])
        outcome = find_bivalent_successor(
            arbiter3, arbiter3_analyzer, config, Event("p1", NULL)
        )
        assert outcome.found
        certificate = outcome.certificate
        assert certificate.case is Lemma3Case.IMMEDIATE
        assert certificate.verify(arbiter3)

    def test_certificate_schedule_avoids_event(
        self, arbiter3, arbiter3_analyzer
    ):
        config = arbiter3.initial_configuration([0, 0, 1])
        event = Event("p1", NULL)
        outcome = find_bivalent_successor(
            arbiter3, arbiter3_analyzer, config, event
        )
        assert all(
            step != event
            for step in outcome.certificate.avoiding_schedule
        )

    def test_deferred_case_on_parity_arbiter(
        self, parity_arbiter3, parity_arbiter3_analyzer
    ):
        """Delivering a FRESH claim to the arbiter univalates e(C), so
        the search must defer: slip in an arbiter null step (parity
        flip) first, making the claim stale."""
        protocol = parity_arbiter3
        analyzer = parity_arbiter3_analyzer
        config = protocol.initial_configuration([0, 0, 1])
        # Let both proposers claim.
        config = protocol.apply_event(config, Event("p1", NULL))
        config = protocol.apply_event(config, Event("p2", NULL))
        assert analyzer.valency(config) is Valency.BIVALENT
        claim = Event("p0", ("claim", "p1", 0, 0))
        assert claim.is_applicable(config)
        outcome = find_bivalent_successor(protocol, analyzer, config, claim)
        assert outcome.found
        certificate = outcome.certificate
        assert certificate.case is Lemma3Case.DEFERRED
        assert len(certificate.avoiding_schedule) >= 1
        assert certificate.verify(protocol)

    def test_result_configuration_is_bivalent(
        self, arbiter3, arbiter3_analyzer
    ):
        config = arbiter3.initial_configuration([0, 1, 0])
        outcome = find_bivalent_successor(
            arbiter3, arbiter3_analyzer, config, Event("p2", NULL)
        )
        assert (
            arbiter3_analyzer.valency(outcome.certificate.result)
            is Valency.BIVALENT
        )


class TestFailureSide:
    def test_fresh_claim_to_plain_arbiter_fails_with_case2(
        self, arbiter3, arbiter3_analyzer
    ):
        """The plain arbiter has no parity escape: once both claims
        exist, delivering one to the arbiter always univalates, and the
        checker must recover the Case-2 pivot naming the arbiter."""
        protocol = arbiter3
        config = protocol.initial_configuration([0, 0, 1])
        config = protocol.apply_event(config, Event("p1", NULL))
        claim = Event("p0", ("claim", "p1", 0))
        outcome = find_bivalent_successor(
            protocol, arbiter3_analyzer, config, claim
        )
        assert not outcome.found
        failure = outcome.failure
        assert failure is not None
        assert failure.faulty_process == "p0"
        assert failure.pivot_event.process == "p0"
        assert {failure.anchor_valency, failure.neighbor_valency} == {
            Valency.ZERO_VALENT,
            Valency.ONE_VALENT,
        }

    def test_failure_anchor_is_reachable_without_event(
        self, arbiter3, arbiter3_analyzer
    ):
        protocol = arbiter3
        config = protocol.initial_configuration([0, 0, 1])
        config = protocol.apply_event(config, Event("p1", NULL))
        claim = Event("p0", ("claim", "p1", 0))
        outcome = find_bivalent_successor(
            protocol, arbiter3_analyzer, config, claim
        )
        failure = outcome.failure
        anchor = protocol.apply_schedule(config, failure.schedule_to_anchor)
        assert anchor == failure.anchor
        assert all(
            step != claim for step in failure.schedule_to_anchor
        )

    def test_no_pfree_deciding_run_from_anchor(
        self, arbiter3, arbiter3_analyzer
    ):
        """The Case-2 soundness claim, checked exhaustively: from the
        anchor, no configuration reachable without the faulty process
        has a decision."""
        from repro.core.exploration import explore

        protocol = arbiter3
        config = protocol.initial_configuration([0, 0, 1])
        config = protocol.apply_event(config, Event("p1", NULL))
        claim = Event("p0", ("claim", "p1", 0))
        outcome = find_bivalent_successor(
            protocol, arbiter3_analyzer, config, claim
        )
        failure = outcome.failure
        graph = explore(
            protocol,
            failure.anchor,
            event_filter=lambda _c, e: e.process != failure.faulty_process,
        )
        assert graph.complete
        assert all(
            not member.has_decision for member in graph.configurations
        )


class TestInexactness:
    def test_tiny_budget_is_honest(self, arbiter3):
        analyzer = ValencyAnalyzer(arbiter3)
        config = arbiter3.initial_configuration([0, 0, 1])
        outcome = find_bivalent_successor(
            arbiter3,
            analyzer,
            config,
            Event("p1", NULL),
            max_configurations=2,
        )
        # Either it found a definitely-bivalent successor inside the
        # tiny graph, or it must admit inexactness — never a failure
        # verdict from partial data.
        if not outcome.found:
            assert not outcome.exact
            assert outcome.failure is None
