#!/usr/bin/env python3
"""Theorem 2: a cluster booting with some machines already dead.

Section 4's counterpoint to the impossibility: if failures only happen
*before* the protocol starts (machines that never came up) and a strict
majority is alive, consensus IS solvable — no process needs to know in
advance who is dead.

We boot a 7-node cluster with 2 nodes down, watch the two-stage
protocol (stage-1 graph G, stage-2 transitive closure and initial
clique), and then demonstrate both ways the theorem's hypotheses are
tight: a majority dead blocks it, and a death *during* execution blocks
it.

Run:  python examples/initially_dead_cluster.py
"""

from repro import (
    CrashPlan,
    RoundRobinScheduler,
    StopCondition,
    make_protocol,
    simulate,
)
from repro.core.events import NULL, Event
from repro.protocols import InitiallyDeadProcess
from repro.protocols.initially_dead import build_stage_graph


def banner(text: str) -> None:
    print()
    print(f"--- {text} ---")


def main() -> None:
    n = 7
    protocol = make_protocol(InitiallyDeadProcess, n)
    inputs = [1, 0, 1, 1, 0, 0, 1]
    dead = {"p2", "p5"}
    live = [name for name in protocol.process_names if name not in dead]
    quota = protocol.process("p0").listen_quota

    banner(f"booting {n}-node cluster, dead from the start: {sorted(dead)}")
    print(f"inputs: {dict(zip(protocol.process_names, inputs))}")
    print(
        f"L = ⌈(N+1)/2⌉ = {quota + 1}: each process waits for "
        f"{quota} stage-1 messages, then floods its predecessor list."
    )

    result = simulate(
        protocol,
        protocol.initial_configuration(inputs),
        RoundRobinScheduler(
            crash_plan=CrashPlan.initially_dead(frozenset(dead))
        ),
        max_steps=4000,
        stop=StopCondition.ALL_DECIDED,
    )
    print(f"steps: {result.steps}; decisions: {result.decisions}")
    assert all(name in result.decisions for name in live)
    assert result.agreement_holds

    banner("what one process saw: p0's stage-2 graph and initial clique")
    state = result.final_configuration.state_of("p0")
    _broadcast, _phase, _heard, preds, entries = state.data
    print(f"p0's direct predecessors (heard in stage 1): {sorted(preds)}")
    graph = build_stage_graph(entries)
    clique = graph.initial_clique() & (
        frozenset(name for name, _, _ in entries)
    )
    print(f"reconstructed G: {graph!r}")
    print(f"initial clique of G+: {sorted(clique)}")
    values = {name: value for name, value, _ in entries}
    clique_values = {name: values[name] for name in sorted(clique)}
    print(f"clique members' inputs: {clique_values}")
    print(
        f"agreed rule (majority, ties→1) over the clique: "
        f"{result.decisions['p0']}"
    )
    assert dead.isdisjoint(clique), "dead processes never join the clique"

    banner("hypothesis 1 is tight: kill a majority and nothing decides")
    majority_dead = {"p0", "p1", "p2", "p3"}
    blocked = simulate(
        protocol,
        protocol.initial_configuration(inputs),
        RoundRobinScheduler(
            crash_plan=CrashPlan.initially_dead(frozenset(majority_dead))
        ),
        max_steps=4000,
        stop=StopCondition.ALL_DECIDED,
    )
    print(
        f"dead={sorted(majority_dead)}: decisions after "
        f"{blocked.steps} steps: {blocked.decisions or '{} — none'}"
    )
    assert not blocked.decisions

    banner("hypothesis 2 is tight: one death DURING execution can block")
    # p1 broadcasts its stage-1 message (one step) and then dies.  The
    # survivors adopt it as a predecessor and wait forever for its
    # stage-2 message — which is exactly the Theorem-1 window again.
    protocol3 = make_protocol(InitiallyDeadProcess, 3)
    config = protocol3.initial_configuration([0, 1, 0])
    config = protocol3.apply_event(config, Event("p1", NULL))
    mid_death = simulate(
        protocol3,
        config,
        RoundRobinScheduler(crash_plan=CrashPlan({"p1": 0})),
        max_steps=1000,
        stop=StopCondition.ALL_DECIDED,
    )
    print(
        f"N=3, p1 died after its stage-1 broadcast: decisions = "
        f"{mid_death.decisions or '{} — none'}"
    )
    assert not mid_death.decisions
    print(
        "\n'No process knows in advance which of the processes are "
        "initially dead' — yet with a live majority and no mid-run "
        "deaths, everyone finds the same initial clique and decides."
    )


if __name__ == "__main__":
    main()
