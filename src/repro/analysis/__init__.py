"""Analysis utilities: traces, figures, valency maps, fairness, tables."""

from repro.analysis.admissibility import (
    AdmissibilityReport,
    analyze_admissibility,
)
from repro.analysis.coverage import CoverageReport, measure_coverage
from repro.analysis.diagrams import (
    figure1,
    figure2,
    figure3,
    graph_to_dot,
    hypercube_diagram,
)
from repro.analysis.spacetime import SpacetimeEvent, spacetime_diagram
from repro.analysis.stats import (
    format_table,
    mean,
    median,
    quantile,
    stddev,
)
from repro.analysis.trace import RunTrace, TraceStep, trace_run
from repro.analysis.valency_map import (
    CriticalStep,
    ValencyMap,
    build_valency_map,
)

__all__ = [
    "AdmissibilityReport",
    "analyze_admissibility",
    "CoverageReport",
    "measure_coverage",
    "figure1",
    "figure2",
    "figure3",
    "graph_to_dot",
    "hypercube_diagram",
    "SpacetimeEvent",
    "spacetime_diagram",
    "format_table",
    "mean",
    "median",
    "quantile",
    "stddev",
    "RunTrace",
    "TraceStep",
    "trace_run",
    "CriticalStep",
    "ValencyMap",
    "build_valency_map",
]
