#!/usr/bin/env python3
"""Bring your own protocol: the full toolkit applied to YOUR algorithm.

This walkthrough implements a brand-new consensus attempt from scratch
against the public API and runs the whole analysis pipeline over it —
the workflow a downstream user follows to find out *where FLP bites
their design*.

The example protocol, "token ring consensus", is a plausible design you
might sketch on a whiteboard:

* processes are arranged in a ring; process ``p0`` holds a token;
* the token carries a value, initialized to the holder's input;
* each holder folds its own input into the token (logical AND — a
  commit-style rule), forwards it around the ring, and the process that
  completes the ring broadcasts the result; everyone decides it.

Looks reasonable.  The toolkit will tell us, in order: it is safe
(partially correct), exactly how its initial hypercube is shaped, that
it is live under fair scheduling — and then the adversary will put its
finger on the precise process whose silence stalls the ring forever.

Run:  python examples/custom_protocol.py
"""

from typing import Hashable

from repro import (
    FLPAdversary,
    RoundRobinScheduler,
    StopCondition,
    check_partial_correctness,
    check_validity,
    make_protocol,
    simulate,
)
from repro.analysis.diagrams import hypercube_diagram
from repro.core.process import ProcessState, Transition
from repro.core.valency import ValencyAnalyzer
from repro.protocols.base import ConsensusProcess


class TokenRingProcess(ConsensusProcess):
    """One node of token-ring AND-consensus.

    Message universe: ``("token", value, hops)`` and ``("result", v)``.
    """

    @property
    def successor(self) -> str:
        return self.peers[(self.index + 1) % self.n]

    def initial_data(self, input_value: int) -> Hashable:
        # p0 starts holding the token (not yet launched).
        return ("holding",) if self.index == 0 else ("waiting",)

    def step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        sends: list = []
        data = state.data

        if data == ("holding",):
            # Launch the token with our input folded in.
            sends.append(
                self.send_to(self.successor, ("token", state.input, 1))
            )
            data = ("forwarded",)

        new_state = state.with_data(data)
        if isinstance(message_value, tuple) and message_value:
            kind = message_value[0]
            if kind == "token" and data != ("done",):
                _, value, hops = message_value
                folded = value & new_state.input
                if hops + 1 >= self.n:
                    # Ring complete: announce and decide.
                    sends.extend(
                        self.broadcast(self.others, ("result", folded))
                    )
                    new_state = new_state.with_data(
                        ("done",)
                    ).with_decision(folded)
                else:
                    sends.append(
                        self.send_to(
                            self.successor, ("token", folded, hops + 1)
                        )
                    )
                    new_state = new_state.with_data(("forwarded",))
            elif kind == "result" and not new_state.decided:
                new_state = new_state.with_decision(message_value[1])
        return Transition(new_state, tuple(sends))


def main() -> None:
    protocol = make_protocol(TokenRingProcess, 3)
    print(f"your protocol: {protocol}\n")

    print("== 1. is it safe? (exhaustive) ==")
    correctness = check_partial_correctness(protocol)
    validity = check_validity(protocol)
    print(f"  {correctness.summary()}")
    print(f"  validity: {'holds' if validity.valid else 'VIOLATED'}")

    print("\n== 2. the initial hypercube (Lemma 2's object) ==")
    analyzer = ValencyAnalyzer(protocol)
    print(hypercube_diagram(analyzer.classify_initials()))
    print(
        "  all corners univalent: the decision (AND of inputs) is a "
        "pure function\n  of the inputs, like 2PC — the adversary will "
        "use the 0/1 boundary."
    )

    print("\n== 3. is it live when nothing goes wrong? ==")
    result = simulate(
        protocol,
        protocol.initial_configuration([1, 1, 1]),
        RoundRobinScheduler(),
        max_steps=200,
        stop=StopCondition.ALL_DECIDED,
    )
    print(
        f"  fair round-robin: decided={result.decided} in "
        f"{result.steps} steps -> {result.decisions}"
    )

    print("\n== 4. where does FLP bite? ==")
    adversary = FLPAdversary(protocol, analyzer=analyzer)
    certificate = adversary.build_run(stages=10)
    print(f"  {certificate.summary()}")
    print(f"  verified by replay: {certificate.verify(protocol)}")
    print(
        f"\n  Diagnosis: silence {certificate.faulty_process!r} and the "
        "token never completes the ring;\n  every ring/chain topology "
        "has this shape — each hop is a serialization point.\n"
        "  (Compare: `python -m repro attack parity-arbiter` needs no "
        "fault at all.)"
    )


if __name__ == "__main__":
    main()
