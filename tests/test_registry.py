"""Tests for the named protocol registry."""

import pytest

from repro import registry
from repro.core.correctness import check_partial_correctness


class TestCatalog:
    def test_names_sorted_and_nonempty(self):
        catalog = registry.names()
        assert catalog == sorted(catalog)
        assert "arbiter" in catalog
        assert "2pc" in catalog

    def test_info_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            registry.info("paxos-deluxe")

    def test_build_uses_default_n(self):
        protocol = registry.build("arbiter")
        assert protocol.num_processes == 3

    def test_build_with_explicit_n(self):
        protocol = registry.build("wait-for-all", n=4)
        assert protocol.num_processes == 4

    def test_build_forwards_kwargs(self):
        protocol = registry.build("arbiter", n=3, arbiter="p2")
        assert protocol.process("p2").is_arbiter


class TestMetadataIsTruthful:
    """The catalog's 'safe' flags must match what the checker says."""

    @pytest.mark.parametrize("name", registry.names())
    def test_safe_flag_matches_checker(self, name):
        entry = registry.info(name)
        if not entry.analyzable:
            pytest.skip("exact checking infeasible by design")
        protocol = entry.build()
        report = check_partial_correctness(protocol)
        assert report.is_partially_correct == entry.safe, name

    @pytest.mark.parametrize("name", registry.names())
    def test_order_sensitive_flag_matches_valency(self, name):
        from repro.core.valency import Valency, ValencyAnalyzer

        entry = registry.info(name)
        if not entry.analyzable:
            pytest.skip("exact checking infeasible by design")
        if not entry.safe:
            # For agreement-violating protocols, V = {0, 1} can arise
            # from disagreement rather than order sensitivity; the flag
            # is only meaningful for safe protocols.
            pytest.skip("flag undefined for unsafe protocols")
        protocol = entry.build()
        analyzer = ValencyAnalyzer(protocol)
        has_bivalent = any(
            valency is Valency.BIVALENT
            for valency in analyzer.classify_initials().values()
        )
        assert has_bivalent == entry.order_sensitive, name
