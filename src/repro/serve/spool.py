"""The spool directory: everything the daemon must not lose.

Layout::

    <spool>/
      endpoint.json           # {"host","port","pid"} of the live daemon
      jobs/<job-id>/
        job.json              # JobRecord, rewritten on every transition
        job.ckpt              # engine checkpoint (resume source)
        result.json           # the exact result bytes served to clients
      cache/<sha256>.json     # completed-result cache, keyed by cache_key

    All writes are atomic (sibling temp file + ``os.replace``) — the
    same discipline as :mod:`repro.core.checkpoint` — so a SIGKILL at
    any instant leaves either the previous or the next version of every
    file, never a torn one.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path

from repro.serve.wire import JobRecord, WireError, canonical_json

__all__ = ["Spool", "atomic_write_bytes"]

logger = logging.getLogger(__name__)


def atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write *payload* to *path* with crash-safe replace semantics."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


class Spool:
    """Filesystem state of one daemon instance."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.cache_dir = self.root / "cache"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.cache_dir.mkdir(parents=True, exist_ok=True)

    # -- per-job paths -----------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def record_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "job.json"

    def checkpoint_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "job.ckpt"

    def result_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "result.json"

    # -- records -----------------------------------------------------------------

    def persist_record(self, record: JobRecord) -> None:
        self.job_dir(record.id).mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(
            self.record_path(record.id),
            json.dumps(record.to_dict(), sort_keys=True, indent=1).encode(),
        )

    def load_records(self) -> list[JobRecord]:
        """All persisted job records, oldest submission first.

        A torn or alien file is logged and skipped — recovery must
        never be wedged by one bad record.
        """
        records = []
        for record_path in sorted(self.jobs_dir.glob("*/job.json")):
            try:
                payload = json.loads(record_path.read_bytes())
                records.append(JobRecord.from_dict(payload))
            except (ValueError, WireError, OSError) as error:
                logger.warning(
                    "spool: skipping unreadable record %s: %s",
                    record_path,
                    error,
                )
        records.sort(key=lambda record: (record.submitted_unix, record.id))
        return records

    # -- results -----------------------------------------------------------------

    def write_result(self, job_id: str, payload: bytes) -> None:
        atomic_write_bytes(self.result_path(job_id), payload)

    def read_result(self, job_id: str) -> bytes | None:
        try:
            return self.result_path(job_id).read_bytes()
        except OSError:
            return None

    # -- daemon endpoint ---------------------------------------------------------

    @property
    def endpoint_path(self) -> Path:
        return self.root / "endpoint.json"

    def write_endpoint(self, host: str, port: int, pid: int) -> None:
        atomic_write_bytes(
            self.endpoint_path,
            canonical_json({"host": host, "port": port, "pid": pid}),
        )

    def read_endpoint(self) -> dict[str, object] | None:
        try:
            return json.loads(self.endpoint_path.read_bytes())
        except (OSError, ValueError):
            return None
