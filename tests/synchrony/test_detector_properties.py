"""Property tests: detector axioms and safety under graded adversaries.

The Chandra-Toueg axioms are universally quantified over crash
schedules and noise seeds, and the rotating coordinator's safety claim
is universally quantified over *adversaries* — so both get hypothesis
treatment rather than a handful of worked examples.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.spectrum.adversary import ADVERSARY_GRADES, make_adversary
from repro.synchrony.detectors import (
    EventuallyStrongDetector,
    PerfectDetector,
    check_eventual_weak_accuracy,
    check_strong_accuracy,
    check_strong_completeness,
)
from repro.synchrony.partial import (
    RotatingCoordinatorProcess,
    run_partial_sync,
)


def _roster_and_crashes(rng, n=None, max_crash_round=10):
    n = n if n is not None else rng.choice([3, 5, 7])
    f = (n - 1) // 2
    names = tuple(f"p{i}" for i in range(n))
    crash_rounds = {
        victim: rng.randint(1, max_crash_round)
        for victim in rng.sample(list(names), rng.randint(0, f))
    }
    return names, f, crash_rounds


class TestPerfectDetectorAxioms:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_satisfies_p_axioms_for_any_crash_schedule(self, seed):
        rng = random.Random(seed)
        names, _, crash_rounds = _roster_and_crashes(rng)
        horizon = rng.randint(1, 20)
        detector = PerfectDetector(names, crash_rounds)
        assert check_strong_completeness(detector, horizon)
        assert check_strong_accuracy(detector, horizon)
        assert check_eventual_weak_accuracy(detector, horizon) is not None


class TestEventuallyStrongDetectorAxioms:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_satisfies_diamond_s_after_stabilization(self, seed):
        rng = random.Random(seed)
        names, _, crash_rounds = _roster_and_crashes(
            rng, max_crash_round=5
        )
        stabilization = rng.randint(1, 8)
        horizon = stabilization + rng.randint(1, 8)
        detector = EventuallyStrongDetector(
            names,
            crash_rounds,
            stabilization_time=stabilization,
            seed=seed,
            noise=rng.random(),
        )
        assert check_strong_completeness(detector, horizon)
        stabilized_by = check_eventual_weak_accuracy(detector, horizon)
        assert stabilized_by is not None
        assert stabilized_by <= stabilization

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_noise_can_violate_strong_accuracy_before_stabilization(
        self, seed
    ):
        # Not an axiom check but a sanity bound: ◇S is allowed to be
        # wrong early, and with full noise on a live roster it is.
        names = ("p0", "p1", "p2")
        detector = EventuallyStrongDetector(
            names, {}, stabilization_time=50, seed=seed, noise=1.0
        )
        assert not check_strong_accuracy(detector, 10)


class TestRotatingCoordinatorSafetyUnderAdversaries:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        grade=st.sampled_from(ADVERSARY_GRADES),
    )
    def test_agreement_and_validity_under_any_graded_adversary(
        self, seed, grade
    ):
        """Safety must hold for *any* pre-GST drop pattern a graded
        adversary produces — including unbounded certain drops — with
        termination owed only after GST."""
        rng = random.Random(seed)
        names, f, crash_rounds = _roster_and_crashes(rng)
        inputs = {name: rng.randint(0, 1) for name in names}
        gst = rng.choice([1, 4, 9, 10**9])
        adversary = make_adversary(
            grade,
            seed=seed,
            drop_probability=rng.choice([0.3, 0.7, 1.0]),
        )
        adversary.begin_run(seed)
        result = run_partial_sync(
            [RotatingCoordinatorProcess(n, names, f=f) for n in names],
            inputs,
            gst=gst,
            crash_rounds=crash_rounds,
            max_rounds=20,
            adversary=adversary,
        )
        assert result.agreement_holds
        assert result.decision_values <= set(inputs.values())
        # Drops respected the audit contract: every silenced edge was
        # ledgered with a kind the fault vocabulary knows.
        assert all(
            action.kind in ("omission-drop", "partition-freeze")
            for action in adversary.actions
        )

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_liveness_after_gst_despite_pre_gst_adversary(self, seed):
        """An adversary silenced at GST cannot stop the f+1 round
        decision envelope afterwards."""
        rng = random.Random(seed)
        n, f = 5, 2
        names = tuple(f"p{i}" for i in range(n))
        inputs = {name: rng.randint(0, 1) for name in names}
        gst = rng.randint(1, 6)
        crash_rounds = {
            victim: rng.randint(1, gst)
            for victim in rng.sample(list(names), rng.randint(0, f))
        }
        adversary = make_adversary("adaptive", seed=seed)
        adversary.begin_run(seed)
        result = run_partial_sync(
            [RotatingCoordinatorProcess(n_, names, f=f) for n_ in names],
            inputs,
            gst=gst,
            crash_rounds=crash_rounds,
            max_rounds=gst + f + 2,
            adversary=adversary,
        )
        assert result.all_live_decided
        assert max(
            result.decision_rounds[name] for name in result.live
        ) <= gst + f
