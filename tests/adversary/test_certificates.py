"""Dedicated tests for certificate objects: honest verifiers that
reject tampered evidence."""

from dataclasses import replace

import pytest

from repro.adversary.certificates import (
    AdversaryMode,
    Lemma3Case,
    NonDecidingRunCertificate,
)
from repro.adversary.flp import FLPAdversary
from repro.adversary.lemmas import (
    commutativity_diamond,
    find_bivalent_successor,
    find_lemma2,
)
from repro.core.events import NULL, Event, Schedule


@pytest.fixture(scope="module")
def lemma3_certificate(parity_arbiter3, parity_arbiter3_analyzer):
    protocol = parity_arbiter3
    config = protocol.initial_configuration([0, 0, 1])
    config = protocol.apply_event(config, Event("p1", NULL))
    config = protocol.apply_event(config, Event("p2", NULL))
    outcome = find_bivalent_successor(
        protocol,
        parity_arbiter3_analyzer,
        config,
        Event("p0", ("claim", "p1", 0, 0)),
    )
    assert outcome.certificate is not None
    return outcome.certificate


class TestLemma3Certificate:
    def test_genuine_verifies(self, parity_arbiter3, lemma3_certificate):
        assert lemma3_certificate.verify(parity_arbiter3)

    def test_sigma_containing_e_rejected(
        self, parity_arbiter3, lemma3_certificate
    ):
        forged = replace(
            lemma3_certificate,
            avoiding_schedule=lemma3_certificate.avoiding_schedule.then(
                lemma3_certificate.event
            ),
        )
        assert not forged.verify(parity_arbiter3)

    def test_wrong_result_rejected(
        self, parity_arbiter3, lemma3_certificate
    ):
        forged = replace(
            lemma3_certificate,
            result=lemma3_certificate.configuration,
        )
        assert not forged.verify(parity_arbiter3)

    def test_case_classification(self, lemma3_certificate):
        # This particular search must defer (fresh claim univalates).
        assert lemma3_certificate.case is Lemma3Case.DEFERRED
        assert len(lemma3_certificate.avoiding_schedule) >= 1


class TestLemma2Certificate:
    def test_genuine_verifies(self, arbiter3, arbiter3_analyzer):
        result = find_lemma2(arbiter3, arbiter3_analyzer)
        assert result.certificate.verify(arbiter3)

    def test_non_initial_configuration_rejected(
        self, arbiter3, arbiter3_analyzer
    ):
        result = find_lemma2(arbiter3, arbiter3_analyzer)
        certificate = result.certificate
        # Swap in a reachable-but-not-initial configuration (buffer
        # nonempty after a step).
        stepped = arbiter3.apply_event(
            certificate.bivalent_initial, Event("p1", NULL)
        )
        forged = replace(certificate, bivalent_initial=stepped)
        assert not forged.verify(arbiter3)


class TestCommutativityWitness:
    def test_overlapping_schedules_fail_verification(self, arbiter3):
        config = arbiter3.initial_configuration([0, 0, 1])
        witness = commutativity_diamond(
            arbiter3,
            config,
            Schedule([Event("p1", NULL)]),
            Schedule([Event("p2", NULL)]),
        )
        forged = replace(
            witness, sigma2=Schedule([Event("p1", NULL)])
        )
        assert not forged.verify(arbiter3)


class TestNonDecidingRunCertificate:
    @pytest.fixture(scope="class")
    def certificate(self, parity_arbiter3, parity_arbiter3_analyzer):
        adversary = FLPAdversary(
            parity_arbiter3, analyzer=parity_arbiter3_analyzer
        )
        return adversary.build_run(stages=8)

    def test_genuine_verifies(self, parity_arbiter3, certificate):
        assert certificate.verify(parity_arbiter3)

    def test_inapplicable_event_rejected(
        self, parity_arbiter3, certificate
    ):
        bogus = certificate.schedule.then(
            Event("p0", ("claim", "ghost", 9, 9))
        )
        forged = replace(certificate, schedule=bogus)
        assert not forged.verify(parity_arbiter3)

    def test_deciding_schedule_rejected(
        self, parity_arbiter3, parity_arbiter3_analyzer, certificate
    ):
        """Extend the run with a decision-producing suffix: the
        verifier must notice somebody decided."""
        witness = parity_arbiter3_analyzer.bivalence_witness(
            certificate.final
        )
        deciding = certificate.schedule.then(witness.to_zero)
        final = parity_arbiter3.apply_schedule(
            certificate.initial, deciding
        )
        forged = NonDecidingRunCertificate(
            initial=certificate.initial,
            schedule=deciding,
            final=final,
            mode=AdversaryMode.BIVALENCE_PRESERVING,
        )
        assert not forged.verify(parity_arbiter3)

    def test_length_and_summary(self, certificate):
        assert certificate.length == len(certificate.schedule)
        assert "no process ever decided" in certificate.summary()
