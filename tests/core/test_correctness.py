"""Unit tests for the partial-correctness and validity checkers."""

from repro.core.correctness import check_partial_correctness, check_validity
from repro.protocols import (
    AlwaysZeroProcess,
    ArbiterProcess,
    InputEchoProcess,
    ParityArbiterProcess,
    QuorumVoteProcess,
    ThreePhaseCommitProcess,
    TwoPhaseCommitProcess,
    WaitForAllProcess,
    make_protocol,
)


class TestPartialCorrectnessPositive:
    def test_arbiter(self, arbiter3):
        report = check_partial_correctness(arbiter3)
        assert report.is_partially_correct
        assert report.complete
        assert report.disagreement_witness is None

    def test_parity_arbiter(self, parity_arbiter3):
        assert check_partial_correctness(
            parity_arbiter3
        ).is_partially_correct

    def test_wait_for_all(self, wait_for_all3):
        assert check_partial_correctness(wait_for_all3).is_partially_correct

    def test_two_phase_commit(self, two_pc3):
        assert check_partial_correctness(two_pc3).is_partially_correct

    def test_three_phase_commit(self, three_pc3):
        assert check_partial_correctness(three_pc3).is_partially_correct


class TestPartialCorrectnessNegative:
    def test_always_zero_fails_condition_two(self):
        protocol = make_protocol(AlwaysZeroProcess, 3)
        report = check_partial_correctness(protocol)
        assert not report.is_partially_correct
        assert report.agreement_ok  # condition (1) holds
        assert report.zero_reachable
        assert not report.one_reachable  # condition (2) fails

    def test_input_echo_fails_agreement(self):
        protocol = make_protocol(InputEchoProcess, 2)
        report = check_partial_correctness(protocol)
        assert not report.agreement_ok
        witness = report.disagreement_witness
        assert witness is not None
        assert len(witness.decision_values()) == 2

    def test_quorum_vote_fails_agreement(self):
        protocol = make_protocol(QuorumVoteProcess, 3)
        report = check_partial_correctness(protocol)
        assert not report.agreement_ok
        assert report.disagreement_witness is not None

    def test_summary_strings(self):
        good = check_partial_correctness(make_protocol(ArbiterProcess, 3))
        bad = check_partial_correctness(make_protocol(InputEchoProcess, 2))
        assert "NOT" not in good.summary()
        assert "NOT" in bad.summary()


class TestBoundedExploration:
    def test_incomplete_flag_reported(self):
        protocol = make_protocol(WaitForAllProcess, 3)
        report = check_partial_correctness(protocol, max_configurations=5)
        assert not report.complete


class TestValidity:
    def test_safe_zoo_is_valid(self):
        for cls in (
            ArbiterProcess,
            ParityArbiterProcess,
            WaitForAllProcess,
            TwoPhaseCommitProcess,
            ThreePhaseCommitProcess,
        ):
            report = check_validity(make_protocol(cls, 3))
            assert report.valid, cls.__name__

    def test_quorum_vote_is_valid_but_disagrees(self):
        # Quorum voting decides only input values — it is valid; its sin
        # is disagreement, and the two checkers must separate the two.
        protocol = make_protocol(QuorumVoteProcess, 3)
        assert check_validity(protocol).valid
        assert not check_partial_correctness(protocol).agreement_ok

    def test_always_zero_violates_validity(self):
        # With all-ones inputs, AlwaysZero still decides 0: invalid.
        protocol = make_protocol(AlwaysZeroProcess, 2)
        report = check_validity(protocol)
        assert not report.valid
        assert report.violating_value == 0
        assert report.violation_witness is not None
