"""Opt-in full-parameter experiment runs.

The quick-mode shape tests run on every ``pytest``; the full grids take
minutes and are for release validation:

    FLPKIT_FULL=1 pytest tests/experiments/test_full_mode.py -q
"""

import os

import pytest

from repro.experiments.harness import available_experiments, run_experiment

FULL = os.environ.get("FLPKIT_FULL") == "1"

pytestmark = pytest.mark.skipif(
    not FULL, reason="set FLPKIT_FULL=1 to run the full grids"
)


@pytest.mark.parametrize("exp_id", sorted(available_experiments()))
def test_full_mode_runs_clean(exp_id):
    result = run_experiment(exp_id, quick=False, seed=0)
    assert result.rows
    assert not result.quick


def test_full_mode_theorem1_includes_theorem2_protocol():
    result = run_experiment("E4", quick=False, seed=0)
    protocols = {row["protocol"] for row in result.rows}
    assert "initially-dead/3" in protocols
    for row in result.rows:
        assert row["decisions"] == 0
        assert row["verified"]
