"""Bench A2 — ablation: benign schedulers decide, the adversary never."""


def test_a2_table(benchmark, run_and_render):
    result = run_and_render(benchmark, "A2")
    for row in result.rows:
        if row["scheduler"] == "flp-adversary":
            assert row["decided"] == 0
        else:
            assert row["decided"] == row["runs"]
