"""Experiment registry and report harness.

Every table in EXPERIMENTS.md is produced by an *experiment function*
registered here.  An experiment takes ``(quick, seed)`` and returns an
:class:`ExperimentResult` — a list of dict rows plus notes — which the
harness renders as an aligned table.  Benchmarks under ``benchmarks/``
call the same functions, so the published numbers and the benchmark
suite cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.analysis.stats import format_table

__all__ = [
    "ExperimentResult",
    "experiment",
    "get_experiment",
    "run_experiment",
    "available_experiments",
    "run_all",
]


@dataclass(frozen=True)
class ExperimentResult:
    """Rows + context for one experiment run."""

    exp_id: str
    title: str
    rows: tuple[Mapping[str, object], ...]
    headers: tuple[str, ...] = ()
    notes: tuple[str, ...] = ()
    seed: int = 0
    quick: bool = True

    def render(self) -> str:
        """The report block: header, table, notes."""
        mode = "quick" if self.quick else "full"
        lines = [
            f"== {self.exp_id}: {self.title} ({mode}, seed={self.seed}) ==",
            format_table(
                self.rows, headers=self.headers if self.headers else None
            ),
        ]
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine-readable form (for dashboards / regression diffing).

        Row values that are not JSON-native (e.g. frozensets) are
        rendered via ``str``; the tables only carry scalars in practice.
        """
        import json

        def scrub(value: object) -> object:
            if isinstance(value, (str, int, float, bool)) or value is None:
                return value
            return str(value)

        return json.dumps(
            {
                "exp_id": self.exp_id,
                "title": self.title,
                "quick": self.quick,
                "seed": self.seed,
                "rows": [
                    {key: scrub(val) for key, val in row.items()}
                    for row in self.rows
                ],
                "notes": list(self.notes),
            },
            indent=2,
        )


ExperimentFn = Callable[[bool, int], ExperimentResult]

_REGISTRY: dict[str, tuple[str, ExperimentFn]] = {}


def experiment(exp_id: str, title: str):
    """Decorator registering an experiment function under *exp_id*."""

    def register(fn: ExperimentFn) -> ExperimentFn:
        if exp_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {exp_id!r}")
        _REGISTRY[exp_id] = (title, fn)
        return fn

    return register


def _ensure_loaded() -> None:
    """Import every experiment module so the registry is populated."""
    from repro.experiments import (  # noqa: F401
        exp_ablation_scaling,
        exp_ablation_schedulers,
        exp_ablation_search,
        exp_benor,
        exp_commit_window,
        exp_lemma1,
        exp_lemma2,
        exp_lemma3,
        exp_partial_synchrony,
        exp_synchronous,
        exp_theorem1,
        exp_theorem2,
        exp_timeouts,
    )


def available_experiments() -> dict[str, str]:
    """``exp_id -> title`` for every registered experiment."""
    _ensure_loaded()
    return {exp_id: title for exp_id, (title, _) in sorted(_REGISTRY.items())}


def get_experiment(exp_id: str) -> ExperimentFn:
    """The registered function for *exp_id*."""
    _ensure_loaded()
    try:
        return _REGISTRY[exp_id][1]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: "
            f"{sorted(_REGISTRY)}"
        ) from None


def run_experiment(
    exp_id: str, quick: bool = True, seed: int = 0
) -> ExperimentResult:
    """Run one experiment and return its result."""
    return get_experiment(exp_id)(quick, seed)


def run_all(
    quick: bool = True,
    seed: int = 0,
    only: Sequence[str] | None = None,
) -> list[ExperimentResult]:
    """Run every registered experiment (or the *only* subset), in id
    order, returning the results."""
    _ensure_loaded()
    selected = sorted(only) if only else sorted(_REGISTRY)
    return [run_experiment(exp_id, quick, seed) for exp_id in selected]
