#!/usr/bin/env python3
"""Theorem 1, step by step: watch the adversary think.

This walkthrough narrates the staged construction from Section 3 of the
paper against the parity-arbiter protocol:

* Lemma 2 finds a bivalent initial configuration (and we print the
  valency census of the whole initial hypercube);
* each stage forces the queue-head process to receive its earliest
  message — after a Lemma-3 search steers to a point where that forced
  event preserves bivalence;
* the paper's figures are rendered from the actual configurations the
  search produced;
* the final certificate is replayed and verified.

Run:  python examples/adversary_walkthrough.py
"""

from repro import FLPAdversary, make_protocol
from repro.adversary.lemmas import find_bivalent_successor, find_lemma2
from repro.analysis.diagrams import figure1, figure2, figure3, graph_to_dot
from repro.analysis.valency_map import build_valency_map
from repro.adversary.lemmas import commutativity_diamond, random_disjoint_schedules
from repro.core.events import NULL, Event
from repro.core.exploration import explore
from repro.core.valency import ValencyAnalyzer
from repro.protocols import ArbiterProcess, ParityArbiterProcess

import random


def main() -> None:
    protocol = make_protocol(ParityArbiterProcess, 3)
    analyzer = ValencyAnalyzer(protocol)

    print("== Lemma 2: the initial hypercube (Gray-code walk) ==")
    from repro.analysis.diagrams import hypercube_diagram

    lemma2 = find_lemma2(protocol, analyzer)
    print(hypercube_diagram(lemma2.classification))
    start = lemma2.certificate.bivalent_initial
    print(f"  starting from bivalent initial {start!r}")

    print()
    print("== Figure 1: Lemma 1's diamond, from live data ==")
    rng = random.Random(1)
    sigma1, sigma2 = random_disjoint_schedules(protocol, start, rng)
    print(figure1(commutativity_diamond(protocol, start, sigma1, sigma2)))

    print()
    print("== The staged construction (Theorem 1) ==")
    adversary = FLPAdversary(protocol, analyzer=analyzer)
    certificate = adversary.build_run(stages=12)
    for record in certificate.stages:
        print(
            f"  stage {record.index:2d}: force {record.forced_event!r} "
            f"via σ of length {record.schedule_length - 1} "
            f"({record.case.value}; examined "
            f"{record.configurations_examined} configurations)"
        )
    print(f"  outcome: {certificate.summary()}")
    print(f"  verified by replay: {certificate.verify(protocol)}")

    print()
    print("== The same run as a space-time diagram ==")
    from repro.analysis.spacetime import spacetime_diagram

    print(
        spacetime_diagram(
            protocol, certificate.initial, certificate.schedule,
            max_rows=10,
        )
    )

    print()
    print("== Valency census of the reachable graph ==")
    vmap = build_valency_map(protocol, start, analyzer=analyzer)
    print(f"  {vmap.summary()}")
    print(
        "  the adversary lives in the bivalent region "
        f"({vmap.bivalent_fraction:.0%} of the graph) and never takes "
        f"one of the {len(vmap.critical_steps)} critical steps."
    )

    print()
    print("== Figures 2-3: what a Lemma-3 failure looks like ==")
    print(
        "  (The parity arbiter never fails the search; its plain cousin"
    )
    print("  fails at the fresh-claim delivery — the serialization point.)")
    plain = make_protocol(ArbiterProcess, 3)
    plain_analyzer = ValencyAnalyzer(plain)
    config = plain.initial_configuration([0, 0, 1])
    config = plain.apply_event(config, Event("p1", NULL))
    claim = Event("p0", ("claim", "p1", 0))
    outcome = find_bivalent_successor(plain, plain_analyzer, config, claim)
    print(figure2(outcome.failure, claim))
    print()
    print(figure3(outcome.failure, claim))

    print()
    print("== Bonus: DOT export of the reachable graph ==")
    graph = explore(plain, plain.initial_configuration([0, 0, 1]))
    dot = graph_to_dot(graph, plain_analyzer)
    path = "arbiter_configurations.dot"
    with open(path, "w") as handle:
        handle.write(dot)
    print(
        f"  wrote {path} ({len(graph)} nodes) — render with "
        "`dot -Tsvg` to see the gold bivalent region."
    )


if __name__ == "__main__":
    main()
