#!/usr/bin/env python3
"""The transaction-commit problem: FLP's motivating application.

The paper opens with distributed databases: "all the data manager
processes that have participated in the processing of a particular
transaction [must] agree on whether to install the transaction's results
in the database or to discard them."  This example plays that scenario
out with two-phase commit:

1. the happy path — all participants vote yes, the transaction commits;
2. a participant with a failed local write votes no — global abort;
3. the *window of vulnerability* — the coordinator goes quiet after the
   votes are in, and every yes-voter is stuck: it cannot commit (it
   does not know the other votes) and cannot abort (the coordinator may
   already have committed);
4. why no clever protocol fixes this: the FLP adversary finds the same
   window mechanically.

Run:  python examples/transaction_commit.py
"""

from repro import (
    CrashPlan,
    DelayScheduler,
    FLPAdversary,
    RoundRobinScheduler,
    StopCondition,
    make_protocol,
    simulate,
)
from repro.analysis.trace import trace_run
from repro.protocols import TwoPhaseCommitProcess

COMMIT, ABORT = 1, 0


def banner(text: str) -> None:
    print()
    print(f"--- {text} ---")


def main() -> None:
    # p0 = transaction coordinator; p1, p2 = data managers holding
    # fragments of the transaction's writes.  Input register 1 means
    # "my local part succeeded, vote commit".
    protocol = make_protocol(TwoPhaseCommitProcess, 3)

    banner("1. happy path: everyone votes yes")
    result = simulate(
        protocol,
        protocol.initial_configuration([1, 1, 1]),
        RoundRobinScheduler(),
        max_steps=100,
        stop=StopCondition.ALL_DECIDED,
    )
    trace = trace_run(
        protocol,
        protocol.initial_configuration([1, 1, 1]),
        result.schedule,
    )
    print(trace.describe())
    assert result.decision_values == {COMMIT}

    banner("2. data manager p2's local write failed: it votes no")
    result = simulate(
        protocol,
        protocol.initial_configuration([1, 1, 0]),
        RoundRobinScheduler(),
        max_steps=100,
        stop=StopCondition.ALL_DECIDED,
    )
    print(f"decisions: {result.decisions}  (global abort, consistent)")
    assert result.decision_values == {ABORT}

    banner("3. the window of vulnerability: coordinator goes quiet")
    frozen = simulate(
        protocol,
        protocol.initial_configuration([1, 1, 1]),
        DelayScheduler({"p0"}, window=(0, None)),
        max_steps=200,
        stop=StopCondition.ALL_DECIDED,
    )
    print(
        f"after {frozen.steps} steps with a slow coordinator: "
        f"decisions = {frozen.decisions or '{} — everyone stuck'}"
    )
    print(
        "p1 and p2 voted yes and now can neither commit (they don't "
        "know p2's... anyone's vote) nor abort (the coordinator may "
        "have committed).  And they cannot tell a dead coordinator "
        "from this slow one."
    )

    banner("3b. the coordinator was merely slow: window lifts, all well")
    lifted = simulate(
        protocol,
        protocol.initial_configuration([1, 1, 1]),
        DelayScheduler({"p0"}, window=(0, 60)),
        max_steps=400,
        stop=StopCondition.ALL_DECIDED,
    )
    print(
        f"decided={lifted.decided} at step {lifted.steps}: "
        f"{lifted.decisions}"
    )

    banner("3c. ...or it was actually dead: stuck forever")
    dead = simulate(
        protocol,
        protocol.initial_configuration([1, 1, 1]),
        RoundRobinScheduler(crash_plan=CrashPlan({"p0": 4})),
        max_steps=400,
        stop=StopCondition.ALL_DECIDED,
    )
    print(f"decisions after 400 steps: {dead.decisions or '{} — none'}")

    banner("4. Theorem 1 says every commit protocol has this window")
    adversary = FLPAdversary(protocol)
    certificate = adversary.build_run(stages=5)
    print(f"adversary outcome: {certificate.summary()}")
    print(
        f"the adversary mechanically located the window: silence "
        f"{certificate.faulty_process!r} and nobody can ever decide.  "
        "Verified by replay: "
        f"{certificate.verify(protocol)}"
    )
    print(
        "\nSwapping 2PC for 3PC (or anything else) only moves the "
        "window — run the E6 experiment to compare:  "
        "python -m repro.experiments E6"
    )


if __name__ == "__main__":
    main()
