"""Benchmarks of the fault-injection engine.

Two questions, answered into ``BENCH_faults.json``:

1. What does wrapping cost when nothing is injected?  A
   ``FaultyScheduler`` around a no-fault plan must be close to free —
   the whole point of one unified engine is that the zero-fault path
   stays on by default.  The artifact records the plain-vs-wrapped
   ratio on a tight simulate loop (target: <= 5% overhead).
2. What does injection cost when faults are live?  Per-run wall time
   with an active omission plan, and the survivability matrix's
   end-to-end wall time for one protocol, so the sweep's cost is a
   number in review diffs rather than a guess.

Run directly (``python benchmarks/bench_faults.py``) to emit the
artifact; ``--smoke`` runs a reduced overhead check for CI.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.core.simulation import StopCondition, simulate
from repro.faults import FaultPlan, Omission
from repro.faults.survivability import survivability_matrix
from repro.protocols import (
    TwoPhaseCommitProcess,
    WaitForAllProcess,
    make_protocol,
)
from repro.schedulers import FaultyScheduler, RoundRobinScheduler

from artifact import best_of, write_artifact

#: Simulate-loop iterations for the overhead measurement.
LOOP = 400


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (interactive measurement)
# ---------------------------------------------------------------------------


def test_simulate_plain_wait_for_all(benchmark):
    protocol = make_protocol(WaitForAllProcess, 3)
    initial = protocol.initial_configuration([1, 0, 1])
    scheduler = RoundRobinScheduler()

    def run():
        scheduler.reset()
        return simulate(protocol, initial, scheduler, max_steps=200)

    result = benchmark(run)
    assert result.decided


def test_simulate_wrapped_no_fault(benchmark):
    protocol = make_protocol(WaitForAllProcess, 3)
    initial = protocol.initial_configuration([1, 0, 1])
    scheduler = FaultyScheduler(RoundRobinScheduler(), FaultPlan.none())

    def run():
        scheduler.reset()
        return simulate(protocol, initial, scheduler, max_steps=200)

    result = benchmark(run)
    assert result.decided


# ---------------------------------------------------------------------------
# Artifact emission (python benchmarks/bench_faults.py)
# ---------------------------------------------------------------------------


def _loop(protocol, initial, scheduler, iterations=LOOP):
    def run():
        for _ in range(iterations):
            scheduler.reset()
            simulate(
                protocol,
                initial,
                scheduler,
                max_steps=200,
                stop=StopCondition.ALL_DECIDED,
            )

    return run


def collect_no_fault_overhead(iterations=LOOP) -> dict:
    """Plain scheduler vs a FaultyScheduler around an empty plan."""
    protocol = make_protocol(WaitForAllProcess, 3)
    initial = protocol.initial_configuration([1, 0, 1])
    plain = RoundRobinScheduler()
    wrapped = FaultyScheduler(RoundRobinScheduler(), FaultPlan.none())
    plain_s = best_of(_loop(protocol, initial, plain, iterations))
    wrapped_s = best_of(_loop(protocol, initial, wrapped, iterations))
    return {
        "protocol": "wait-for-all/3",
        "iterations": iterations,
        "plain_s": round(plain_s, 6),
        "wrapped_no_fault_s": round(wrapped_s, 6),
        "overhead": round(wrapped_s / plain_s - 1, 4),
    }


def collect_active_plan_cost() -> dict:
    """Per-run cost with a live omission plan on 2PC."""
    protocol = make_protocol(TwoPhaseCommitProcess, 3)
    initial = protocol.initial_configuration([1, 1, 1])
    plan = FaultPlan([Omission(destination="p0", budget=2)])
    scheduler = FaultyScheduler(RoundRobinScheduler(), plan)
    iterations = LOOP // 4
    active_s = best_of(_loop(protocol, initial, scheduler, iterations))
    return {
        "protocol": "2pc/3",
        "plan": plan.describe(),
        "iterations": iterations,
        "per_run_s": round(active_s / iterations, 8),
        "omission_drops_per_run": 2,
    }


def collect_matrix_cost() -> dict:
    """End-to-end wall time of one protocol's survivability sweep."""
    cells = {}

    def run():
        cells["result"] = survivability_matrix(
            ["2pc"],
            ("none", "one-mid-crash", "omission"),
            max_steps=600,
        )

    matrix_s = best_of(run, repeat=1)
    runs = sum(cell.runs for cell in cells["result"])
    return {
        "protocol": "2pc/3",
        "fault_models": 3,
        "audited_runs": runs,
        "matrix_s": round(matrix_s, 6),
        "runs_per_s": round(runs / matrix_s),
    }


def smoke() -> int:
    """CI smoke: the zero-fault path must stay cheap."""
    overhead = collect_no_fault_overhead(iterations=100)
    print(
        f"smoke: no-fault wrapping overhead "
        f"{overhead['overhead']:.1%} over {overhead['iterations']} runs"
    )
    # Loose CI bound: shared runners jitter, but 2x would mean the
    # fast path is gone.
    assert overhead["overhead"] < 1.0, overhead
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if "--smoke" in argv:
        return smoke()

    sections = {
        "no_fault_overhead": collect_no_fault_overhead(),
        "active_plan_cost": collect_active_plan_cost(),
        "survivability_matrix": collect_matrix_cost(),
    }
    path = write_artifact(sections, name="faults")
    print(f"wrote {path}")
    overhead = sections["no_fault_overhead"]
    print(
        f"no-fault wrapping: {overhead['plain_s']}s plain vs "
        f"{overhead['wrapped_no_fault_s']}s wrapped "
        f"({overhead['overhead']:.1%} overhead)"
    )
    active = sections["active_plan_cost"]
    print(
        f"active omission plan on 2pc: {active['per_run_s']}s per run"
    )
    matrix = sections["survivability_matrix"]
    print(
        f"survivability sweep (2pc, 3 models): {matrix['matrix_s']}s "
        f"for {matrix['audited_runs']} audited runs"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
