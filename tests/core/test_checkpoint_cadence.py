"""Regression: checkpoint cadence means what the config says.

The dict engine used to advance the shared chunk counter once per
``check_interval_nodes`` worth of expansions but never scoped it to an
explore call, so ``every_levels`` drifted from its documented meaning
("every N check intervals") across resumed or repeated calls.  Cadence
is now counted in *expansions since the last checkpoint* — a baseline
both engines share and checkpoints reset — plus the new
engine-independent ``every_expansions`` knob.  Exploration is
deterministic, so the exact write counts below are stable; a cadence
regression moves them.
"""

import pytest

from repro.core.exploration import GlobalConfigurationGraph
from repro.core.resilience import CheckpointConfig, ResilienceConfig
from repro.protocols import ParityArbiterProcess, make_protocol

#: parity-arbiter/3 from [0,0,1]: 154 expansions over 14 BFS levels —
#: the fixed workload every pinned count below is measured against.
EXPANSIONS = 154
LEVELS = 14
INTERVAL = 16  # dict-engine consistency points every 16 expansions


@pytest.fixture(scope="module")
def parity3():
    return make_protocol(ParityArbiterProcess, 3)


def explored(parity3, tmp_path, packed, **cadence):
    graph = GlobalConfigurationGraph(
        parity3,
        packed=packed,
        checkpoint=CheckpointConfig(
            path=str(tmp_path / "cadence.ckpt"), **cadence
        ),
        resilience=ResilienceConfig(check_interval_nodes=INTERVAL),
    )
    graph.explore(parity3.initial_configuration([0, 0, 1]))
    assert graph.stats.expansions == EXPANSIONS
    return graph.stats


class TestPackedEngineCadence:
    def test_every_levels_writes_once_per_n_levels(
        self, parity3, tmp_path
    ):
        stats = explored(parity3, tmp_path, True, every_levels=2)
        assert stats.explore_levels == LEVELS
        assert stats.checkpoints_written == LEVELS // 2  # = 7

    def test_every_expansions_writes_at_level_boundaries(
        self, parity3, tmp_path
    ):
        # Due after 40, 80, 120 expansions; written at the next level
        # boundary each time (the engine's consistency points).
        stats = explored(parity3, tmp_path, True, every_expansions=40)
        assert stats.checkpoints_written == 3


class TestDictEngineCadence:
    def test_every_levels_means_n_check_intervals(
        self, parity3, tmp_path
    ):
        # "Level" for the level-free dict engine = one check interval:
        # due every 2 * 16 = 32 expansions -> writes at 32, 64, 96, 128.
        stats = explored(parity3, tmp_path, False, every_levels=2)
        assert stats.checkpoints_written == EXPANSIONS // (2 * INTERVAL)

    def test_every_expansions_matches_packed_semantics(
        self, parity3, tmp_path
    ):
        # Due after 40, 80, 120; written at the next interval boundary
        # (48, 96, 144) — the same three writes the packed engine does
        # for this cadence, which is the whole point of the knob.
        stats = explored(parity3, tmp_path, False, every_expansions=40)
        assert stats.checkpoints_written == 3


class TestCadenceSurvivesRepeatedCalls:
    def test_second_explore_call_does_not_double_count(
        self, parity3, tmp_path
    ):
        """The regression case: a re-explore of covered ground expands
        nothing, so it must write no cadence checkpoints — the old
        call-spanning chunk counter wrote one anyway."""
        for packed in (True, False):
            graph = GlobalConfigurationGraph(
                parity3,
                packed=packed,
                checkpoint=CheckpointConfig(
                    path=str(tmp_path / f"repeat-{packed}.ckpt"),
                    every_levels=2,
                ),
                resilience=ResilienceConfig(check_interval_nodes=INTERVAL),
            )
            root = parity3.initial_configuration([0, 0, 1])
            graph.explore(root)
            written = graph.stats.checkpoints_written
            assert written > 0
            graph.explore(root)  # pure walk: zero new expansions
            if packed:
                # The walk still crosses BFS levels, which *are* the
                # packed engine's documented cadence unit.
                assert graph.stats.checkpoints_written >= written
            else:
                assert graph.stats.checkpoints_written == written
