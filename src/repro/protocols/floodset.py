"""FloodSet: synchronous crash-tolerant consensus (the contrast class).

The abstract's foil — "solutions are known for the synchronous case" —
made concrete with the textbook FloodSet algorithm (Lynch, *Distributed
Algorithms*, §6.2): every process maintains the set ``W`` of input values
it has seen, floods ``W`` for ``f + 1`` rounds, and then decides —
``W``'s only element if ``|W| = 1``, else a deterministic default
(here: 1, matching the tie-break of the asynchronous zoo).

With at most ``f`` crash faults there is at least one *clean* round among
the ``f + 1`` (a round in which no process crashes), after which all live
processes hold identical ``W`` — hence agreement.  Validity holds because
``W`` only ever contains inputs.  Termination is exactly ``f + 1`` rounds
for every process — the synchronous model's timing assumptions are
visibly doing the work that FLP proves cannot be done without them.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.synchrony.rounds import SyncProcess

__all__ = ["FloodSetProcess"]


class FloodSetProcess(SyncProcess):
    """One process of FloodSet consensus tolerating ``f`` crash faults.

    Parameters
    ----------
    f:
        Crash faults tolerated (any ``0 <= f < N`` works; the round count
        is ``f + 1``).
    default:
        Decision when multiple values survive in ``W`` (must be the same
        constant at every process).
    """

    def __init__(self, name: str, peers, f: int, default: int = 1):
        super().__init__(name, peers)
        if not 0 <= f < self.n:
            raise ValueError(f"need 0 <= f < N; N={self.n}, got f={f}")
        self.f = f
        self.default = default

    def initial_state(self, input_value: int) -> Hashable:
        return frozenset((input_value,))

    def outgoing(self, state: Hashable, round_number: int) -> Hashable:
        return state  # Flood the whole known-values set.

    def update(
        self,
        state: Hashable,
        round_number: int,
        received: Mapping[str, Hashable],
    ) -> Hashable:
        merged: frozenset[int] = state
        for values in received.values():
            merged = merged | values
        return merged

    def decision(self, state: Hashable, round_number: int) -> int | None:
        if round_number < self.f + 1:
            return None
        values: frozenset[int] = state
        if len(values) == 1:
            return next(iter(values))
        return self.default
