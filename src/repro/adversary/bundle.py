"""Portable proof bundles: ship a non-deciding run as JSON, re-verify
anywhere.

A :class:`~repro.adversary.certificates.NonDecidingRunCertificate`
contains everything needed to *replay* the adversary's run, and replay
is the verification.  A bundle serializes the replayable part — the
registry name + size of the protocol, the initial input vector, the
event schedule, and the fault claims — so a reviewer on another machine
can run ``python -m repro verify bundle.json`` and watch the protocol
never decide, without trusting the machine that produced the bundle.

Message values in the zoo are nested tuples of strings, ints, and
frozensets; they are encoded with explicit type tags so the round trip
is exact (JSON alone would collapse tuples to lists and lose
hashability).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Hashable

from repro import registry
from repro.adversary.certificates import (
    AdversaryMode,
    NonDecidingRunCertificate,
)
from repro.core.events import NULL, Event, Schedule
from repro.core.protocol import Protocol

__all__ = ["export_bundle", "load_bundle", "verify_bundle", "BundleReport"]

_FORMAT = "flpkit-nondeciding-run/1"


def _encode_value(value: Hashable) -> object:
    if value is None or isinstance(value, (str, int, bool)):
        return value
    if isinstance(value, tuple):
        return {"t": [_encode_value(item) for item in value]}
    if isinstance(value, frozenset):
        encoded = [_encode_value(item) for item in value]
        encoded.sort(key=repr)
        return {"fs": encoded}
    raise TypeError(
        f"cannot bundle message value of type {type(value).__name__}"
    )


def _decode_value(payload: object) -> Hashable:
    if payload is None or isinstance(payload, (str, int, bool)):
        return payload
    if isinstance(payload, dict):
        if "t" in payload:
            return tuple(_decode_value(item) for item in payload["t"])
        if "fs" in payload:
            return frozenset(
                _decode_value(item) for item in payload["fs"]
            )
    raise ValueError(f"malformed bundle value: {payload!r}")


def export_bundle(
    protocol_name: str,
    certificate: NonDecidingRunCertificate,
    protocol: Protocol,
    protocol_kwargs: dict | None = None,
) -> str:
    """Serialize *certificate* (produced against *protocol*) to JSON.

    The certificate's initial configuration must be an *initial*
    configuration of the protocol (empty buffer, nobody decided) — true
    for every ``FLPAdversary.build_run`` output — because the bundle
    stores only the input vector, not arbitrary configurations.
    """
    if len(certificate.initial.buffer) != 0:
        raise ValueError(
            "only runs starting from an initial configuration can be "
            "bundled"
        )
    payload = {
        "format": _FORMAT,
        "protocol": protocol_name,
        "n": protocol.num_processes,
        "kwargs": protocol_kwargs or {},
        "inputs": list(protocol.input_vector(certificate.initial)),
        "mode": certificate.mode.value,
        "faulty": certificate.faulty_process,
        "fault_point": certificate.fault_point,
        "schedule": [
            {
                "p": event.process,
                "m": None
                if event.is_null_delivery
                else _encode_value(event.value),
                "null": event.is_null_delivery,
            }
            for event in certificate.schedule
        ],
    }
    return json.dumps(payload, indent=2)


@dataclass(frozen=True)
class BundleReport:
    """Outcome of re-verifying a bundle from scratch."""

    protocol_name: str
    n: int
    mode: AdversaryMode
    events: int
    faulty: str | None
    verified: bool

    def summary(self) -> str:
        verdict = "VERIFIED" if self.verified else "REJECTED"
        fault = f", faulty={self.faulty}" if self.faulty else ""
        return (
            f"{verdict}: {self.protocol_name}/{self.n}, "
            f"{self.mode.value}, {self.events} events{fault}"
        )


def load_bundle(text: str) -> tuple[Protocol, NonDecidingRunCertificate, dict]:
    """Rebuild the protocol and certificate a bundle describes.

    The protocol is constructed *fresh* from the registry — nothing
    from the bundle besides names, numbers, and message values is
    trusted; the final configuration is recomputed by replay.
    """
    payload = json.loads(text)
    if payload.get("format") != _FORMAT:
        raise ValueError(
            f"not a {_FORMAT} bundle: format={payload.get('format')!r}"
        )
    protocol = registry.build(
        payload["protocol"], n=payload["n"], **payload.get("kwargs", {})
    )
    initial = protocol.initial_configuration(payload["inputs"])
    events = []
    for entry in payload["schedule"]:
        value = NULL if entry["null"] else _decode_value(entry["m"])
        events.append(Event(entry["p"], value))
    schedule = Schedule(events)
    final = protocol.apply_schedule(initial, schedule)
    certificate = NonDecidingRunCertificate(
        initial=initial,
        schedule=schedule,
        final=final,
        mode=AdversaryMode(payload["mode"]),
        faulty_process=payload.get("faulty"),
        fault_point=payload.get("fault_point"),
    )
    return protocol, certificate, payload


def verify_bundle(text: str) -> BundleReport:
    """Re-verify a bundle end to end.

    Note the replay in :func:`load_bundle` would already raise on an
    inapplicable event; ``certificate.verify`` additionally re-checks
    the no-decision invariant at every step and the fault placement.
    """
    protocol, certificate, payload = load_bundle(text)
    verified = certificate.verify(protocol)
    return BundleReport(
        protocol_name=payload["protocol"],
        n=payload["n"],
        mode=certificate.mode,
        events=certificate.length,
        faulty=certificate.faulty_process,
        verified=verified,
    )
