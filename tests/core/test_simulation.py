"""Unit tests for the forward simulator."""

import pytest

from repro.core.events import Event
from repro.core.simulation import StopCondition, simulate
from repro.protocols import WaitForAllProcess, make_protocol
from repro.schedulers import CrashPlan, RoundRobinScheduler


class ScriptedScheduler:
    """Returns a fixed list of events, then None."""

    def __init__(self, events):
        self.events = list(events)
        self.cursor = 0

    def next_event(self, protocol, configuration, step_index):
        if self.cursor >= len(self.events):
            return None
        event = self.events[self.cursor]
        self.cursor += 1
        return event


@pytest.fixture
def protocol():
    return make_protocol(WaitForAllProcess, 3)


class TestStopConditions:
    def test_all_decided_stops_when_everyone_done(self, protocol):
        result = simulate(
            protocol,
            protocol.initial_configuration([1, 1, 0]),
            RoundRobinScheduler(),
            max_steps=200,
            stop=StopCondition.ALL_DECIDED,
        )
        assert result.decided
        assert result.stop_reason == "decided"
        assert set(result.decisions) == {"p0", "p1", "p2"}

    def test_any_decided_stops_earlier(self, protocol):
        initial = protocol.initial_configuration([1, 1, 0])
        any_run = simulate(
            protocol,
            initial,
            RoundRobinScheduler(),
            max_steps=200,
            stop=StopCondition.ANY_DECIDED,
        )
        all_run = simulate(
            protocol,
            initial,
            RoundRobinScheduler(),
            max_steps=200,
            stop=StopCondition.ALL_DECIDED,
        )
        assert any_run.steps <= all_run.steps
        assert any_run.decided

    def test_never_runs_to_scheduler_exhaustion(self, protocol):
        result = simulate(
            protocol,
            protocol.initial_configuration([1, 1, 1]),
            RoundRobinScheduler(),
            max_steps=500,
            stop=StopCondition.NEVER,
        )
        # Round-robin skips fully decided processes and eventually has
        # nothing left to schedule.
        assert result.stop_reason == "scheduler-exhausted"
        assert result.decisions  # everyone decided along the way

    def test_step_budget(self, protocol):
        result = simulate(
            protocol,
            protocol.initial_configuration([1, 1, 0]),
            RoundRobinScheduler(),
            max_steps=2,
            stop=StopCondition.ALL_DECIDED,
        )
        assert result.stop_reason == "step-budget"
        assert result.steps == 2


class TestCrashIntegration:
    def test_one_crash_stalls_wait_for_all(self, protocol):
        scheduler = RoundRobinScheduler(crash_plan=CrashPlan({"p1": 0}))
        result = simulate(
            protocol,
            protocol.initial_configuration([1, 1, 1]),
            scheduler,
            max_steps=300,
            stop=StopCondition.ALL_DECIDED,
        )
        assert not result.decided
        assert result.decisions == {}

    def test_live_processes_from_scheduler(self, protocol):
        scheduler = RoundRobinScheduler(crash_plan=CrashPlan({"p1": 0}))
        assert scheduler.live_processes(protocol) == ("p0", "p2")


class TestResultStructure:
    def test_schedule_replays_to_final(self, protocol):
        initial = protocol.initial_configuration([0, 1, 1])
        result = simulate(
            protocol, initial, RoundRobinScheduler(), max_steps=100
        )
        assert (
            protocol.apply_schedule(initial, result.schedule)
            == result.final_configuration
        )

    def test_agreement_property(self, protocol):
        result = simulate(
            protocol,
            protocol.initial_configuration([0, 1, 1]),
            RoundRobinScheduler(),
            max_steps=100,
        )
        assert result.agreement_holds
        assert result.decision_values == frozenset({1})

    def test_ledger_counts_match_schedule(self, protocol):
        result = simulate(
            protocol,
            protocol.initial_configuration([0, 1, 1]),
            RoundRobinScheduler(),
            max_steps=100,
        )
        assert sum(result.ledger.steps_taken.values()) == result.steps
        deliveries = sum(result.ledger.deliveries.values())
        nulls = sum(result.ledger.null_deliveries.values())
        assert deliveries + nulls == result.steps

    def test_scripted_scheduler_exhaustion(self, protocol):
        scheduler = ScriptedScheduler([Event("p0"), Event("p1")])
        result = simulate(
            protocol,
            protocol.initial_configuration([0, 0, 0]),
            scheduler,
            max_steps=100,
        )
        assert result.stop_reason == "scheduler-exhausted"
        assert result.steps == 2


class TestFairnessLedger:
    def test_silent_processes(self, protocol):
        scheduler = ScriptedScheduler([Event("p0"), Event("p0")])
        result = simulate(
            protocol,
            protocol.initial_configuration([0, 0, 0]),
            scheduler,
            max_steps=100,
        )
        assert result.ledger.silent_processes(
            protocol.process_names
        ) == ("p1", "p2")

    def test_max_idle_gap(self, protocol):
        scheduler = ScriptedScheduler([Event("p0"), Event("p1")])
        result = simulate(
            protocol,
            protocol.initial_configuration([0, 0, 0]),
            scheduler,
            max_steps=100,
        )
        # p2 never stepped: its gap spans the whole run (from -1).
        assert result.ledger.max_idle_gap(protocol.process_names, 2) == 3
