"""The FLP adversary: Theorem 1 as a constructive scheduler.

The proof of Theorem 1 shows that a totally correct protocol cannot
exist by exhibiting, for any partially correct protocol, an *admissible
run that never decides*.  This module makes that construction
executable.  Given a finite protocol instance, :class:`FLPAdversary`
produces a :class:`~repro.adversary.certificates.NonDecidingRunCertificate`
— an arbitrarily long run prefix, replayable and independently
verifiable, in which no process ever reaches a decision state — via the
proof's own case analysis:

**Staged bivalence preservation** (the run constructed at the end of
Section 3).  If a bivalent initial configuration exists (Lemma 2), the
adversary maintains a process queue and, stage by stage, forces the head
process to receive its earliest pending message — but only after
steering, by a Lemma-3 search, to a point where that forced event lands
on a *bivalent* configuration.  "In any infinite sequence of such stages
every process takes infinitely many steps and receives every message
sent to it.  The run is therefore admissible" — and since every stage
ends bivalent, no decision is ever reached.  No process is ever faulty
in this mode.

**Fault mode** (the arguments inside Lemma 2 and Lemma 3's Case 2).
Real protocols are not totally correct, so one of two things eventually
happens, and each hands the adversary its single allowed fault:

* *No bivalent initial configuration*: decisions are a pure function of
  the inputs.  The initial hypercube then contains an adjacent 0-valent /
  1-valent pair ``(C0, C1)`` differing only in process ``p``'s input.
  Any deciding run from ``C0`` without ``p`` would run identically from
  ``C1`` and decide the same value, contradicting one side's valency —
  so silencing ``p`` from ``C0`` stalls the protocol forever.
* *The Lemma-3 search fails* at a forced event ``e = (p, m)``: then 𝒞
  contains an anchor ``E0`` and a pivot ``e' = (p, m')`` with
  ``e(E0)`` and ``e(e'(E0))`` univalent of opposite values.  Any p-free
  deciding run σ from ``E0`` would, by Lemma 1, commute with both ``e``
  and ``e'``, making its (decided!) endpoint ``A = σ(E0)`` an ancestor
  of both a 0-valent and a 1-valent configuration — a contradiction.
  So no p-free run from ``E0`` decides: the adversary navigates to the
  anchor and silences ``p``.

In both fault cases the adversary finishes with a *fair tail*: all other
processes take steps round-robin with FIFO delivery, forever (up to the
requested prefix length) — every message to a nonfaulty process gets
delivered, at most one process is faulty, and still nobody decides.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.configuration import Configuration
from repro.core.errors import AdversaryStuck
from repro.core.events import NULL, Event, Schedule
from repro.core.protocol import Protocol
from repro.core.valency import Valency, ValencyAnalyzer
from repro.adversary.certificates import (
    AdversaryMode,
    NonDecidingRunCertificate,
    StageRecord,
)
from repro.adversary.lemmas import Lemma2Result, find_bivalent_successor, find_lemma2
from repro.schedulers.base import FifoTracker

__all__ = ["FLPAdversary", "DEFAULT_FAIR_TAIL_STEPS"]

#: Fair-tail length when entering fault/dead-end mode, per live process.
DEFAULT_FAIR_TAIL_STEPS = 30


@dataclass
class _RunState:
    """Mutable run-construction state shared by the adversary's phases."""

    configuration: Configuration
    events: list[Event]
    fifo: FifoTracker
    steps_per_process: dict[str, int]

    def apply(self, protocol: Protocol, event: Event) -> None:
        self.configuration = protocol.apply_event(self.configuration, event)
        if self.configuration.has_decision:
            raise AdversaryStuck(
                f"a process decided after {event!r} — the adversary's "
                "valency data must be wrong (inexact exploration?)"
            )
        self.events.append(event)
        self.fifo.observe(self.configuration.buffer)
        self.steps_per_process[event.process] = (
            self.steps_per_process.get(event.process, 0) + 1
        )


class FLPAdversary:
    """Constructs admissible non-deciding runs against a protocol.

    Parameters
    ----------
    protocol:
        A finite protocol instance (small N, bounded messages) so that
        exact valency analysis is feasible.
    analyzer:
        Optional pre-warmed :class:`ValencyAnalyzer` to share the global
        configuration graph across calls.  All stage-by-stage valency
        queries and witness lookups run against that one shared
        incremental graph, so the total configurations interned across
        an entire staged run grows sublinearly in the number of stages
        (later stages are almost pure cache hits — see
        ``analyzer.stats``).
    max_configurations:
        Budget for each Lemma-3 search and for valency exploration.

    Attributes
    ----------
    last_lemma2:
        The :class:`~repro.adversary.lemmas.Lemma2Result` of the most
        recent :meth:`build_run` that started from scratch.
    """

    def __init__(
        self,
        protocol: Protocol,
        analyzer: ValencyAnalyzer | None = None,
        max_configurations: int = 100_000,
    ):
        self.protocol = protocol
        self.analyzer = analyzer or ValencyAnalyzer(
            protocol, max_configurations=max_configurations
        )
        self.max_configurations = max_configurations
        self.last_lemma2: Lemma2Result | None = None

    # -- public API --------------------------------------------------------------

    def build_run(
        self,
        stages: int = 20,
        initial: Configuration | None = None,
        fair_tail_steps: int | None = None,
    ) -> NonDecidingRunCertificate:
        """Construct an admissible non-deciding run prefix.

        Parameters
        ----------
        stages:
            Number of bivalence-preserving stages to execute (when the
            protocol admits them).  Each stage forces one
            earliest-message delivery, so the prefix grows without bound
            as ``stages`` does — the finite shadow of "runs forever".
        initial:
            Start here instead of searching the initial hypercube; must
            be a (provably) bivalent configuration.
        fair_tail_steps:
            Events to execute after entering fault or dead-end mode;
            defaults to ``DEFAULT_FAIR_TAIL_STEPS × N``.

        Raises
        ------
        AdversaryStuck
            If the protocol is not partially correct in a way that
            leaves nothing to stall (e.g. it decides instantly from
            every initial configuration with no communication), or if
            exploration budgets made valency inexact.
        """
        if fair_tail_steps is None:
            fair_tail_steps = DEFAULT_FAIR_TAIL_STEPS * len(
                self.protocol.process_names
            )

        if initial is not None:
            if self.analyzer.valency(initial) is not Valency.BIVALENT:
                raise ValueError(
                    "explicit starting configuration must be bivalent"
                )
            return self._run_staged(initial, stages, fair_tail_steps)

        lemma2 = find_lemma2(self.protocol, self.analyzer)
        self.last_lemma2 = lemma2

        if lemma2.none_valent is not None:
            # Broken protocol: an initial configuration from which no
            # decision is reachable at all.  Fair-run everyone.
            return self._run_tail(
                _RunState(
                    lemma2.none_valent, [], FifoTracker(), {}
                ),
                initial=lemma2.none_valent,
                mode=AdversaryMode.DEAD_END,
                stage_records=(),
                faulty=None,
                fault_point=None,
                steps=fair_tail_steps,
            )

        if lemma2.certificate is not None:
            return self._run_staged(
                lemma2.certificate.bivalent_initial,
                stages,
                fair_tail_steps,
            )

        if lemma2.boundary is not None:
            zero_valent, _one_valent, process = lemma2.boundary
            state = _RunState(zero_valent, [], FifoTracker(), {})
            return self._run_tail(
                state,
                initial=zero_valent,
                mode=AdversaryMode.FAULT,
                stage_records=(),
                faulty=process,
                fault_point=0,
                steps=fair_tail_steps,
            )

        raise AdversaryStuck(
            "no bivalent initial, no 0/1 boundary, no dead end: the "
            "protocol is not partially correct (check with "
            "check_partial_correctness)"
        )

    # -- staged construction --------------------------------------------------------

    def _run_staged(
        self,
        start: Configuration,
        stages: int,
        fair_tail_steps: int,
    ) -> NonDecidingRunCertificate:
        state = _RunState(start, [], FifoTracker(), {})
        state.fifo.observe(start.buffer)
        queue: deque[str] = deque(self.protocol.process_names)
        records: list[StageRecord] = []

        for stage_index in range(stages):
            process = queue[0]
            earliest = state.fifo.earliest_for(process)
            forced = Event(
                process, earliest.value if earliest is not None else NULL
            )
            outcome = find_bivalent_successor(
                self.protocol,
                self.analyzer,
                state.configuration,
                forced,
                max_configurations=self.max_configurations,
            )

            if outcome.certificate is not None:
                certificate = outcome.certificate
                for event in certificate.avoiding_schedule.then(forced):
                    state.apply(self.protocol, event)
                queue.rotate(-1)
                records.append(
                    StageRecord(
                        index=stage_index,
                        scheduled_process=process,
                        forced_event=forced,
                        schedule_length=len(certificate.avoiding_schedule)
                        + 1,
                        configurations_examined=(
                            certificate.configurations_examined
                        ),
                        search_depth=certificate.search_depth,
                        case=certificate.case,
                    )
                )
                continue

            if outcome.dead_end is not None:
                schedule, _target = outcome.dead_end
                for event in schedule:
                    state.apply(self.protocol, event)
                return self._run_tail(
                    state,
                    initial=start,
                    mode=AdversaryMode.DEAD_END,
                    stage_records=tuple(records),
                    faulty=None,
                    fault_point=None,
                    steps=fair_tail_steps,
                )

            if outcome.failure is not None:
                failure = outcome.failure
                for event in failure.schedule_to_anchor:
                    state.apply(self.protocol, event)
                return self._run_tail(
                    state,
                    initial=start,
                    mode=AdversaryMode.FAULT,
                    stage_records=tuple(records),
                    faulty=failure.faulty_process,
                    fault_point=len(state.events),
                    steps=fair_tail_steps,
                )

            raise AdversaryStuck(
                f"Lemma-3 search for {forced!r} was inexact "
                f"(examined {outcome.configurations_examined} "
                "configurations, shared engine interned "
                f"{self.analyzer.configurations_explored}); raise "
                "max_configurations"
            )

        return NonDecidingRunCertificate(
            initial=start,
            schedule=Schedule(state.events),
            final=state.configuration,
            mode=AdversaryMode.BIVALENCE_PRESERVING,
            stages=tuple(records),
            faulty_process=None,
            fault_point=None,
            steps_per_process=dict(state.steps_per_process),
        )

    # -- fair tail -------------------------------------------------------------------

    def _run_tail(
        self,
        state: _RunState,
        initial: Configuration,
        mode: AdversaryMode,
        stage_records: tuple[StageRecord, ...],
        faulty: str | None,
        fault_point: int | None,
        steps: int,
    ) -> NonDecidingRunCertificate:
        """Round-robin + FIFO over the non-faulty processes for *steps*
        events.  Raises :class:`AdversaryStuck` if anyone decides (the
        construction's soundness argument says they cannot)."""
        state.fifo.observe(state.configuration.buffer)
        participants = [
            name
            for name in self.protocol.process_names
            if name != faulty
        ]
        for index in range(steps):
            process = participants[index % len(participants)]
            earliest = state.fifo.earliest_for(process)
            event = Event(
                process, earliest.value if earliest is not None else NULL
            )
            state.apply(self.protocol, event)
        return NonDecidingRunCertificate(
            initial=initial,
            schedule=Schedule(state.events),
            final=state.configuration,
            mode=mode,
            stages=stage_records,
            faulty_process=faulty,
            fault_point=fault_point,
            steps_per_process=dict(state.steps_per_process),
        )
