#!/usr/bin/env python3
"""Quickstart: the FLP result in five minutes.

Builds a small consensus protocol, checks it is partially correct, lets
a benign scheduler decide, and then unleashes the FLP adversary — which
constructs an *admissible run in which no process ever decides*, the
content of Theorem 1.

Run:  python examples/quickstart.py
"""

from repro import (
    FLPAdversary,
    RoundRobinScheduler,
    StopCondition,
    check_partial_correctness,
    make_protocol,
    simulate,
)
from repro.protocols import ParityArbiterProcess


def main() -> None:
    # A 3-process consensus protocol: two proposers race parity-stamped
    # claims to an arbiter (see repro/protocols/parity_arbiter.py).
    protocol = make_protocol(ParityArbiterProcess, 3)
    print(f"protocol: {protocol}")

    # 1. It is partially correct: agreement holds in every accessible
    #    configuration, and both 0 and 1 are possible decisions.
    report = check_partial_correctness(protocol)
    print(f"partial correctness: {report.summary()}")
    assert report.is_partially_correct

    # 2. Under a fair, benign network it decides quickly.
    initial = protocol.initial_configuration([0, 0, 1])
    result = simulate(
        protocol,
        initial,
        RoundRobinScheduler(),
        max_steps=200,
        stop=StopCondition.ALL_DECIDED,
    )
    print(
        f"benign round-robin run: decided={result.decided} in "
        f"{result.steps} steps, decisions={result.decisions}"
    )

    # 3. Theorem 1: an adversarial scheduler can run the SAME protocol
    #    forever without any process deciding — while staying admissible
    #    (every process steps, every message is delivered, at most one
    #    process faulty; here: zero faulty).
    adversary = FLPAdversary(protocol)
    certificate = adversary.build_run(stages=30)
    print(f"adversary: {certificate.summary()}")
    print(
        f"  schedule length: {certificate.length} events; "
        f"steps per process: {certificate.steps_per_process}"
    )

    # 4. Don't take the adversary's word for it: replay the certificate
    #    through the protocol semantics from scratch.
    assert certificate.verify(protocol)
    print("  certificate verified by independent replay ✓")
    print()
    print(
        "This is FLP: the protocol is safe and usually live, but no "
        "asynchronous protocol can be live against every admissible "
        "schedule — 'no completely asynchronous consensus protocol can "
        "tolerate even a single unannounced process death.'"
    )


if __name__ == "__main__":
    main()
