"""Core formal model of FLP: processes, configurations, events, valency.

This subpackage is a direct implementation of Section 2 of the paper plus
the valency machinery of Section 3.  Everything else in flpkit (the
adversary, the protocol zoo, the synchrony extensions) is built on these
types.
"""

from repro.core.configuration import Configuration
from repro.core.correctness import (
    DeterminismReport,
    PartialCorrectnessReport,
    ValidityReport,
    check_determinism,
    check_partial_correctness,
    check_validity,
)
from repro.core.errors import (
    AdversaryStuck,
    ExplorationLimitExceeded,
    FLPError,
    InvalidEvent,
    ModelError,
    NotPartiallyCorrect,
    ProtocolViolation,
    SimulationLimitExceeded,
    SymmetryError,
    UnknownProcess,
)
from repro.core.events import NULL, Event, Schedule
from repro.core.exploration import (
    ConfigurationGraph,
    GlobalConfigurationGraph,
    GraphStats,
    explore,
    reachable_set,
)
from repro.core.messages import Message, MessageBuffer
from repro.core.packing import PackedCodec
from repro.core.seeding import stable_rng, stable_seed
from repro.core.process import Process, ProcessState, Transition
from repro.core.protocol import Protocol
from repro.core.reduction import (
    AmpleReducer,
    ReductionPolicy,
    SymmetryQuotient,
    declares_symmetry,
    validate_symmetry,
)
from repro.core.simulation import (
    FairnessLedger,
    SimulationResult,
    StopCondition,
    simulate,
)
from repro.core.valency import (
    BivalenceWitness,
    Valency,
    ValencyAnalyzer,
    shortest_schedule,
)
from repro.core.values import DECISION_VALUES, ONE, UNDECIDED, ZERO

__all__ = [
    "Configuration",
    "DeterminismReport",
    "PartialCorrectnessReport",
    "ValidityReport",
    "check_determinism",
    "check_partial_correctness",
    "check_validity",
    "AdversaryStuck",
    "ExplorationLimitExceeded",
    "FLPError",
    "InvalidEvent",
    "ModelError",
    "NotPartiallyCorrect",
    "ProtocolViolation",
    "SimulationLimitExceeded",
    "SymmetryError",
    "UnknownProcess",
    "NULL",
    "Event",
    "Schedule",
    "ConfigurationGraph",
    "GlobalConfigurationGraph",
    "GraphStats",
    "explore",
    "reachable_set",
    "Message",
    "MessageBuffer",
    "PackedCodec",
    "stable_rng",
    "stable_seed",
    "Process",
    "ProcessState",
    "Transition",
    "Protocol",
    "AmpleReducer",
    "ReductionPolicy",
    "SymmetryQuotient",
    "declares_symmetry",
    "validate_symmetry",
    "FairnessLedger",
    "SimulationResult",
    "StopCondition",
    "simulate",
    "BivalenceWitness",
    "Valency",
    "ValencyAnalyzer",
    "shortest_schedule",
    "DECISION_VALUES",
    "ONE",
    "UNDECIDED",
    "ZERO",
]
