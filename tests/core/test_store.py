"""Contracts of the flat-buffer graph store.

The store is a *representation* change only: node ids, edge order,
fingerprints — everything observable — must be byte-identical whether
the flat buffers live in RAM, in a memory-mapped temp file from the
start, or spill mid-run when they outgrow the budget.  These tests pin
that, plus the buffer/index primitives the guarantee rests on and the
checkpoint/resume path into a spilled arena.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.exploration import GlobalConfigurationGraph
from repro.core.packing import PackedCodec
from repro.core.store import (
    GraphStore,
    Int64Buffer,
    PackedArena,
    PackedIndex,
    StoreConfig,
)
from repro.protocols import (
    ArbiterProcess,
    BenOrProcess,
    ParityArbiterProcess,
    WaitForAllProcess,
    make_protocol,
)

#: ~1 KB budget: the engine spills within the first few BFS levels, so
#: every spilled-mode test actually exercises the mmap migration.
TINY_SPILL = StoreConfig(mode="mmap", spill_budget_mb=0.001)

INT64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)


class TestStoreConfig:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="ram.*mmap"):
            StoreConfig(mode="disk")

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError, match="spill_budget_mb"):
            StoreConfig(mode="mmap", spill_budget_mb=-1)

    def test_coerce_accepts_mode_string_and_none(self):
        assert StoreConfig.coerce(None).mode == "ram"
        assert StoreConfig.coerce("mmap").mode == "mmap"
        config = StoreConfig(mode="mmap", spill_budget_mb=7)
        assert StoreConfig.coerce(config) is config

    def test_dict_engine_refuses_mmap(self, arbiter3):
        with pytest.raises(ValueError, match="packed engine"):
            GlobalConfigurationGraph(
                arbiter3, packed=False, store="mmap"
            )


class TestInt64Buffer:
    def test_ram_round_trip(self):
        buffer = Int64Buffer()
        buffer.extend(range(100))
        assert len(buffer) == 100
        assert not buffer.spilled
        assert buffer.read(10, 5) == (10, 11, 12, 13, 14)
        assert buffer[99] == 99

    def test_spills_past_threshold_and_preserves_contents(self):
        spills = []
        buffer = Int64Buffer(
            spill_threshold_bytes=256, on_spill=spills.append
        )
        buffer.extend(range(1000))
        assert buffer.spilled
        assert buffer.ram_bytes == 0
        assert spills  # the spill hook fired
        assert buffer.read(0, 1000) == tuple(range(1000))
        buffer.extend(range(1000, 2000))  # growth after the spill
        assert buffer.read(990, 20) == tuple(range(990, 1010))
        buffer.close()

    def test_to_bytes_load_bytes_round_trip_across_backings(self):
        source = Int64Buffer(spill_threshold_bytes=64)
        source.extend(range(500))
        assert source.spilled
        blob = source.to_bytes()

        ram = Int64Buffer()  # no threshold: restores into RAM
        ram.load_bytes(blob)
        assert not ram.spilled
        assert ram.read(0, 500) == tuple(range(500))

        spilled = Int64Buffer(spill_threshold_bytes=64)
        spilled.load_bytes(blob)  # over threshold: re-spills on load
        assert spilled.spilled
        assert spilled.read(0, 500) == tuple(range(500))
        source.close()
        spilled.close()

    @given(st.lists(INT64, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_spilled_equals_ram_for_any_values(self, values):
        ram = Int64Buffer()
        spilled = Int64Buffer(spill_threshold_bytes=8)
        ram.extend(values)
        spilled.extend(values)
        assert ram.read(0, len(values)) == tuple(values)
        assert spilled.read(0, len(values)) == tuple(values)
        spilled.close()


class TestArenaAndIndex:
    @given(
        st.integers(min_value=2, max_value=6).flatmap(
            lambda stride: st.lists(
                st.tuples(*[INT64] * stride), max_size=80
            )
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_arena_round_trip_ram_vs_spilled(self, rows):
        stride = len(rows[0]) if rows else 3
        for threshold in (None, 16):
            arena = PackedArena(stride, Int64Buffer(threshold))
            for row in rows:
                arena.append(row)
            assert len(arena) == len(rows)
            for node, row in enumerate(rows):
                assert arena.row(node) == row

    def test_index_finds_exactly_the_inserted_rows(self):
        arena = PackedArena(3, Int64Buffer())
        index = PackedIndex(arena)
        rows = [(i, i * 7, -i) for i in range(5000)]  # forces resizes
        for row in rows:
            assert index.get(row) is None
            node = arena.append(row)
            index.insert_new(row, node)
        for node, row in enumerate(rows):
            assert index.get(row) == node
        assert index.get((1, 2, 3)) is None

    def test_rebuild_reproduces_the_table(self):
        arena = PackedArena(2, Int64Buffer())
        index = PackedIndex(arena)
        for i in range(100):
            index.insert_new((i, -i), arena.append((i, -i)))
        index.rebuild()
        for i in range(100):
            assert index.get((i, -i)) == i


@pytest.fixture(scope="module")
def parity3():
    return make_protocol(ParityArbiterProcess, 3)


def _explored(protocol, roots, **kwargs):
    graph = GlobalConfigurationGraph(protocol, **kwargs)
    try:
        for root in roots:
            graph.explore(root, max_configurations=20_000)
        return graph.fingerprint(), graph
    finally:
        graph.close()


class TestFingerprintIdentityAcrossStores:
    def test_ram_mmap_and_spilled_runs_are_byte_identical(self, parity3):
        roots = [
            parity3.initial_configuration(inputs)
            for inputs in ([0, 0, 1], [1, 1, 0])
        ]
        ram_print, _ = _explored(parity3, roots)
        mmap_print, mmap_graph = _explored(parity3, roots, store="mmap")
        spill_print, spill_graph = _explored(
            parity3, roots, store=TINY_SPILL
        )
        assert ram_print == mmap_print == spill_print
        # The default budget never spilled; the tiny budget really did.
        assert not mmap_graph.store.spilled
        assert spill_graph.store.spilled
        assert spill_graph.stats.store_spills >= 1
        assert spill_graph.stats.arena_bytes > 0
        assert spill_graph.stats.edge_bytes > 0

    def test_decode_and_edges_survive_the_spill(self, parity3):
        root = parity3.initial_configuration([0, 0, 1])
        reference = GlobalConfigurationGraph(parity3)
        spilled = GlobalConfigurationGraph(parity3, store=TINY_SPILL)
        reference.explore(root)
        spilled.explore(root)
        assert spilled.store.spilled
        assert len(reference) == len(spilled)
        for node in range(0, len(reference), 11):
            assert reference.packed_at(node) == spilled.packed_at(node)
            assert reference.successors[node] == spilled.successors[node]
            assert reference.configuration_at(node) == (
                spilled.configuration_at(node)
            )


ZOO = [
    (ArbiterProcess, 3, [[0, 0, 1]]),
    (ParityArbiterProcess, 3, [[0, 0, 1], [1, 1, 0]]),
    (WaitForAllProcess, 3, [[0, 1, 1]]),
    (BenOrProcess, 3, [[0, 1, 1]]),
]


class TestSerialVsSharedMemoryWorkers:
    @pytest.mark.parametrize(
        "process_type,n,inputs_list",
        ZOO,
        ids=lambda value: getattr(value, "__name__", None),
    )
    def test_zoo_fingerprints_match_serial(
        self, process_type, n, inputs_list
    ):
        protocol = make_protocol(process_type, n)
        roots = [
            protocol.initial_configuration(inputs)
            for inputs in inputs_list
        ]
        serial_print, _ = _explored(protocol, roots)
        parallel_print, parallel = _explored(
            protocol, roots, workers=2, min_batch_per_worker=1
        )
        assert serial_print == parallel_print
        assert parallel.stats.worker_batches > 0

    def test_workers_with_spilled_store_match_serial(self, parity3):
        roots = [parity3.initial_configuration([0, 0, 1])]
        serial_print, _ = _explored(parity3, roots)
        parallel_print, parallel = _explored(
            parity3,
            roots,
            workers=2,
            min_batch_per_worker=1,
            store=TINY_SPILL,
        )
        assert serial_print == parallel_print
        assert parallel.store.spilled


class TestResumeIntoSpilledArena:
    def test_checkpoint_restores_into_a_spilling_store(
        self, parity3, tmp_path
    ):
        roots = [
            parity3.initial_configuration(inputs)
            for inputs in ([0, 0, 1], [1, 1, 0])
        ]
        # Uninterrupted reference run (RAM store).
        reference = GlobalConfigurationGraph(parity3)
        for root in roots:
            reference.explore(root)

        # Interrupted run: first root only, snapshot, then resume into
        # an engine whose store spills almost immediately.
        first = GlobalConfigurationGraph(parity3)
        first.explore(roots[0])
        path = str(tmp_path / "parity.ckpt")
        save_checkpoint(first, path)

        resumed = load_checkpoint(path, parity3, store=TINY_SPILL)
        assert len(resumed) == len(first)
        resumed.explore(roots[0])  # pure re-walk, no new work
        resumed.explore(roots[1])
        assert resumed.store.spilled
        assert resumed.fingerprint() == reference.fingerprint()

    def test_spilled_graph_checkpoints_and_restores(
        self, parity3, tmp_path
    ):
        root = parity3.initial_configuration([0, 0, 1])
        spilled = GlobalConfigurationGraph(parity3, store=TINY_SPILL)
        spilled.explore(root)
        assert spilled.store.spilled
        path = str(tmp_path / "spilled.ckpt")
        save_checkpoint(spilled, path)
        resumed = load_checkpoint(path, parity3)  # back into RAM
        assert resumed.fingerprint() == spilled.fingerprint()
        assert resumed.explore(root).complete


class TestArenaAgreesWithCodec:
    @pytest.fixture(scope="class")
    def codec_and_rows(self, parity3):
        graph = GlobalConfigurationGraph(parity3)
        graph.explore(parity3.initial_configuration([0, 0, 1]))
        rows = [graph.packed_at(node) for node in range(len(graph))]
        return graph.codec, rows

    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_arena_rows_decode_like_the_codec(self, codec_and_rows, data):
        """Any sample of real packed rows, pushed through a (spilling)
        arena, decodes to exactly the configurations the codec decodes
        from the original tuples — the store never alters semantics."""
        codec, rows = codec_and_rows
        sample = data.draw(
            st.lists(st.sampled_from(rows), min_size=1, max_size=40)
        )
        arena = PackedArena(codec.width, Int64Buffer(64))
        nodes = [arena.append(row) for row in sample]
        for node, row in zip(nodes, sample):
            stored = arena.row(node)
            assert stored == row
            assert codec.decode(stored) == codec.decode(row)
