"""Graph substrate for the Section-4 protocol (Theorem 2)."""

from repro.graphs.digraph import Digraph

__all__ = ["Digraph"]
