"""Unit tests for events and schedules."""

import pytest

from repro.core.configuration import Configuration
from repro.core.events import NULL, Event, Schedule
from repro.core.messages import Message, MessageBuffer
from repro.core.process import ProcessState
from repro.core.values import UNDECIDED


def config_with(messages=()):
    states = {
        "p0": ProcessState(0, UNDECIDED, ()),
        "p1": ProcessState(1, UNDECIDED, ()),
    }
    return Configuration(states, MessageBuffer.of(list(messages)))


class TestEvent:
    def test_null_delivery_flag(self):
        assert Event("p0").is_null_delivery
        assert Event("p0", NULL).is_null_delivery
        assert not Event("p0", "m").is_null_delivery

    def test_message_property(self):
        assert Event("p0").message is None
        assert Event("p0", "m").message == Message("p0", "m")

    def test_null_always_applicable(self):
        assert Event("p0").is_applicable(config_with())

    def test_delivery_requires_buffered_message(self):
        event = Event("p0", "m")
        assert not event.is_applicable(config_with())
        assert event.is_applicable(config_with([Message("p0", "m")]))

    def test_wrong_destination_not_applicable(self):
        event = Event("p1", "m")
        assert not event.is_applicable(config_with([Message("p0", "m")]))

    def test_unknown_process_not_applicable(self):
        assert not Event("p9").is_applicable(config_with())

    def test_equality_and_hash(self):
        assert Event("p0", "m") == Event("p0", "m")
        assert Event("p0") == Event("p0", NULL)
        assert Event("p0", "m") != Event("p0", "n")
        assert hash(Event("p0")) == hash(Event("p0", NULL))

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Event("p0").process = "p1"

    def test_repr(self):
        assert "NULL" in repr(Event("p0"))
        assert "'m'" in repr(Event("p0", "m"))


class TestSchedule:
    def test_empty_schedule_is_falsy(self):
        assert not Schedule()
        assert len(Schedule()) == 0

    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            Schedule(["not an event"])

    def test_single(self):
        schedule = Schedule.single(Event("p0"))
        assert len(schedule) == 1

    def test_processes(self):
        schedule = Schedule([Event("p0"), Event("p1", "m"), Event("p0")])
        assert schedule.processes() == frozenset({"p0", "p1"})

    def test_disjointness(self):
        a = Schedule([Event("p0")])
        b = Schedule([Event("p1")])
        c = Schedule([Event("p0", "m")])
        assert a.is_disjoint_from(b)
        assert not a.is_disjoint_from(c)

    def test_empty_is_disjoint_from_everything(self):
        assert Schedule().is_disjoint_from(Schedule([Event("p0")]))

    def test_concatenation_with_then(self):
        combined = Schedule([Event("p0")]).then(Event("p1"))
        assert len(combined) == 2
        assert combined[1] == Event("p1")

    def test_then_accepts_schedules(self):
        combined = Schedule([Event("p0")]).then(Schedule([Event("p1")]))
        assert [e.process for e in combined] == ["p0", "p1"]

    def test_add_operator(self):
        combined = Schedule([Event("p0")]) + Schedule([Event("p1")])
        assert len(combined) == 2

    def test_slicing_returns_schedule(self):
        schedule = Schedule([Event("p0"), Event("p1"), Event("p0")])
        assert isinstance(schedule[:2], Schedule)
        assert len(schedule[:2]) == 2
        assert schedule[0] == Event("p0")

    def test_equality_and_hash(self):
        a = Schedule([Event("p0"), Event("p1")])
        b = Schedule([Event("p0"), Event("p1")])
        assert a == b
        assert hash(a) == hash(b)

    def test_repr_truncates_long_schedules(self):
        long = Schedule([Event("p0")] * 20)
        assert "more" in repr(long)
