"""A2 — ablation: only the adversarial schedule stalls a safe protocol.

The same partially correct protocols are driven by three environments:

* fair round-robin with FIFO delivery (the benign network),
* seeded random scheduling with null-delivery noise,
* the FLP adversary.

Expected shape: under both benign schedulers every fault-free run
decides, quickly; under the adversary, zero runs decide, ever.  The
impossibility is a property of *worst-case* scheduling, not of
asynchrony being generally hostile — which is why consensus protocols
work in practice while remaining FLP-vulnerable in theory.
"""

from __future__ import annotations

import random

from repro.adversary.flp import FLPAdversary
from repro.analysis.stats import mean
from repro.core.simulation import StopCondition, simulate
from repro.core.valency import ValencyAnalyzer
from repro.experiments.harness import ExperimentResult, experiment
from repro.experiments.zoo import safe_zoo
from repro.schedulers import RandomScheduler, RoundRobinScheduler

__all__ = ["run"]


@experiment("A2", "Ablation: benign schedulers decide, the adversary never")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    trials = 10 if quick else 50
    max_steps = 400
    rng = random.Random(seed)
    rows = []
    for label, protocol in safe_zoo(quick):
        names = protocol.process_names

        def random_inputs():
            return [rng.randint(0, 1) for _ in names]

        for scheduler_label in ("round-robin", "random", "flp-adversary"):
            decided = 0
            steps: list[int] = []
            if scheduler_label == "flp-adversary":
                adversary = FLPAdversary(
                    protocol, analyzer=ValencyAnalyzer(protocol)
                )
                certificate = adversary.build_run(stages=10)
                decided = int(certificate.final.has_decision)
                steps = [certificate.length]
                count = 1
            else:
                count = trials
                for _ in range(trials):
                    if scheduler_label == "round-robin":
                        scheduler = RoundRobinScheduler()
                    else:
                        scheduler = RandomScheduler(
                            seed=rng.randrange(2**30),
                            null_probability=0.3,
                        )
                    result = simulate(
                        protocol,
                        protocol.initial_configuration(random_inputs()),
                        scheduler,
                        max_steps=max_steps,
                        stop=StopCondition.ALL_DECIDED,
                    )
                    if result.decided:
                        decided += 1
                        steps.append(result.steps)
            rows.append(
                {
                    "protocol": label,
                    "scheduler": scheduler_label,
                    "runs": count,
                    "decided": decided,
                    "mean_steps": mean(steps) if steps else 0.0,
                }
            )
    return ExperimentResult(
        exp_id="A2",
        title="Ablation: benign schedulers decide, the adversary never",
        rows=tuple(rows),
        notes=(
            "expected: decided == runs for round-robin and random "
            "(fault-free benign environments), decided == 0 for the "
            "adversary on arbitrarily long prefixes",
            "mean_steps for the adversary row is the non-deciding "
            "prefix length, not a time-to-decision",
        ),
        seed=seed,
        quick=quick,
    )
