"""Tests for the digraph substrate, cross-validated against networkx."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.digraph import Digraph


def to_networkx(graph: Digraph) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(graph.nodes)
    g.add_edges_from(graph.edges())
    return g


class TestBasics:
    def test_add_node_idempotent(self):
        graph = Digraph()
        graph.add_node("a")
        graph.add_node("a")
        assert len(graph) == 1

    def test_add_edge_creates_nodes(self):
        graph = Digraph(edges=[("a", "b")])
        assert "a" in graph and "b" in graph
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("b", "a")

    def test_successors_predecessors(self):
        graph = Digraph(edges=[("a", "b"), ("a", "c"), ("d", "b")])
        assert graph.successors("a") == frozenset({"b", "c"})
        assert graph.predecessors("b") == frozenset({"a", "d"})
        assert graph.in_degree("b") == 2

    def test_ancestors_of_missing_node_raises(self):
        with pytest.raises(KeyError):
            Digraph().ancestors("ghost")


class TestReachability:
    def test_chain(self):
        graph = Digraph(edges=[("a", "b"), ("b", "c")])
        assert graph.ancestors("c") == frozenset({"a", "b"})
        assert graph.descendants("a") == frozenset({"b", "c"})
        assert graph.ancestors("a") == frozenset()

    def test_cycle_nodes_are_own_ancestors(self):
        graph = Digraph(edges=[("a", "b"), ("b", "a")])
        assert "a" in graph.ancestors("a")
        assert "b" in graph.descendants("b")

    def test_transitive_closure(self):
        graph = Digraph(edges=[("a", "b"), ("b", "c")])
        closure = graph.transitive_closure()
        assert closure.has_edge("a", "c")
        assert not closure.has_edge("c", "a")


class TestInitialClique:
    def test_two_node_cycle_feeding_a_sink(self):
        graph = Digraph(
            edges=[("a", "b"), ("b", "a"), ("a", "c"), ("b", "c")]
        )
        assert graph.initial_clique() == frozenset({"a", "b"})
        assert not graph.in_initial_clique("c")

    def test_isolated_node_is_trivial_initial_clique(self):
        graph = Digraph(nodes=["x"])
        assert graph.in_initial_clique("x")  # no ancestors: vacuous

    def test_section4_shape(self):
        """A Section-4-style graph: live processes {a,b,c} all heard
        from each other (complete subgraph); a late joiner d heard from
        a and b only."""
        live = ["a", "b", "c"]
        graph = Digraph()
        for i in live:
            for j in live:
                if i != j:
                    graph.add_edge(i, j)
        graph.add_edge("a", "d")
        graph.add_edge("b", "d")
        closure = graph.transitive_closure()
        clique = closure.initial_clique()
        assert clique == frozenset(live)
        assert closure.is_clique(clique)

    def test_is_clique(self):
        graph = Digraph(edges=[("a", "b"), ("b", "a")])
        assert graph.is_clique({"a", "b"})
        assert graph.is_clique({"a"})
        graph2 = Digraph(edges=[("a", "b")])
        assert not graph2.is_clique({"a", "b"})


class TestSubgraph:
    def test_induced_edges_only(self):
        graph = Digraph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        sub = graph.subgraph({"a", "b"})
        assert sub.has_edge("a", "b")
        assert "c" not in sub


# -- cross-validation against networkx ---------------------------------------


def random_digraph(seed: int, max_nodes: int = 8) -> Digraph:
    rng = random.Random(seed)
    n = rng.randint(1, max_nodes)
    nodes = [f"n{i}" for i in range(n)]
    graph = Digraph(nodes=nodes)
    for _ in range(rng.randint(0, 2 * n)):
        a, b = rng.choice(nodes), rng.choice(nodes)
        if a != b:
            graph.add_edge(a, b)
    return graph


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_ancestors_match_networkx(seed):
    graph = random_digraph(seed)
    reference = to_networkx(graph)
    for node in graph.nodes:
        expected = nx.ancestors(reference, node)
        # networkx excludes the node itself even on cycles; our model
        # includes it when it lies on a cycle.  Reconcile:
        ours = set(graph.ancestors(node))
        on_cycle = node in ours
        if on_cycle:
            ours.discard(node)
            # networkx never includes the node itself; confirm the cycle
            # exists by checking some successor reaches back.
            assert any(
                succ == node or node in nx.descendants(reference, succ)
                for succ in reference.successors(node)
            )
        assert ours == expected


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_transitive_closure_matches_networkx(seed):
    graph = random_digraph(seed)
    reference = nx.transitive_closure(to_networkx(graph), reflexive=False)
    ours = graph.transitive_closure()
    # networkx's non-reflexive closure still omits self-loops for nodes
    # on cycles in some versions; compare edge sets modulo self-loops
    # consistently by checking reachability directly.
    for a in graph.nodes:
        for b in graph.nodes:
            if a == b:
                continue
            assert ours.has_edge(a, b) == reference.has_edge(a, b)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_initial_clique_invariants(seed):
    """On arbitrary digraphs the in_initial_clique set is the union of
    the *source* strongly connected components: every member's ancestor
    set stays inside the set, and reachability between members is
    symmetric (same SCC or mutually unreachable)."""
    graph = random_digraph(seed)
    clique = graph.initial_clique()
    for a in clique:
        assert graph.ancestors(a) <= clique
        for b in clique:
            if a != b:
                assert (a in graph.ancestors(b)) == (
                    b in graph.ancestors(a)
                )
