"""Shared-coin randomized consensus — the Rabin flavour (reference [20]).

The conclusion's randomized escape hatch comes in two classic flavours:
Ben-Or's *private* coins (reference [2], implemented in
:mod:`repro.protocols.benor`) and Rabin's *common* coin (reference
[20], "Randomized Byzantine Generals"), where all processes see the
same coin flip per round — historically dealt by a trusted dealer's
signature shares; here, granted by the simulator as an oracle keyed by
``(seed, round)``.

The protocol is Ben-Or with one change: when round ``r``'s proposal
phase yields no concrete value, every process adopts the *shared* coin
``coin(r)`` instead of a private flip.  The effect on termination is
dramatic and measurable (experiment E7's coin panel): with private
coins, symmetry is broken only when enough coins happen to agree —
expected rounds grow (exponentially in N for worst-case inputs) — while
a common coin gives every round an independent ≥ 1/2 chance of landing
on a unanimous estimate, so termination takes O(1) expected rounds
*regardless of N*.

Safety is inherited unchanged from the Ben-Or skeleton: deciding still
requires f+1 matching concrete proposals, and two different values can
never both be proposed in one round.
"""

from __future__ import annotations

import hashlib

from repro.protocols.benor import BenOrProcess

__all__ = ["CommonCoinProcess", "shared_coin"]


def shared_coin(seed: int, round_number: int) -> int:
    """The round's public coin: same bit for every process."""
    digest = hashlib.sha256(f"shared:{seed}:{round_number}".encode()).digest()
    return digest[0] & 1


class CommonCoinProcess(BenOrProcess):
    """Ben-Or's skeleton with Rabin's common coin.

    Parameters are identical to :class:`BenOrProcess`; the ``seed``
    keys the *shared* coin sequence (all processes of one protocol
    instance must share the seed, which :func:`make_protocol`
    guarantees by forwarding the same kwargs to every process).
    """

    def _coin_flip(self, round_number: int) -> int:
        return shared_coin(self.seed, round_number)
