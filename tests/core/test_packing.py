"""Tests for the packed configuration codec.

The codec must be *semantically invisible*: encode/decode is lossless,
``apply_packed`` agrees with ``Protocol.apply_event`` on every event,
and the packed engine builds the byte-identical graph the dict-backed
engine builds.  The property test at the bottom checks Lemma 1's
commutativity claim directly at the packed-id level: disjoint schedules
commute as literal tuple equality.
"""

import random

import pytest

from repro.core.errors import UnknownProcess
from repro.core.events import NULL, Event
from repro.core.exploration import GlobalConfigurationGraph
from repro.core.packing import PackedCodec
from repro.core.valency import Valency, ValencyAnalyzer
from repro.protocols import ArbiterProcess, make_protocol


@pytest.fixture(scope="module")
def codec(arbiter3):
    return PackedCodec(arbiter3)


@pytest.fixture(scope="module")
def explored(arbiter3):
    """Every reachable configuration of arbiter/3 from one root."""
    graph = GlobalConfigurationGraph(arbiter3, packed=False)
    result = graph.explore(arbiter3.initial_configuration([0, 0, 1]))
    assert result.complete
    return list(graph.configurations)


class TestEncodeDecode:
    def test_round_trip_is_lossless(self, codec, explored):
        for configuration in explored:
            packed = codec.encode(configuration)
            assert codec.decode(packed) == configuration
            assert hash(codec.decode(packed)) == hash(configuration)

    def test_packed_width(self, codec, explored):
        for configuration in explored:
            assert len(codec.encode(configuration)) == codec.width
        assert codec.width == 4  # 3 state slots + 1 buffer slot

    def test_encoding_is_injective(self, codec, explored):
        packed = {codec.encode(c) for c in explored}
        assert len(packed) == len(set(explored))

    def test_interning_is_stable(self, codec, explored):
        first = [codec.encode(c) for c in explored]
        second = [codec.encode(c) for c in explored]
        assert first == second

    def test_rejects_foreign_roster(self, codec):
        other = make_protocol(ArbiterProcess, 4)
        with pytest.raises(ValueError, match="do not match"):
            codec.encode(other.initial_configuration([0, 0, 1, 1]))

    def test_decision_values_without_decoding(self, codec, explored):
        for configuration in explored:
            packed = codec.encode(configuration)
            assert codec.decision_values(packed) == (
                configuration.decision_values()
            )


class TestPackedSemantics:
    def test_events_for_matches_enabled_events(
        self, arbiter3, codec, explored
    ):
        for configuration in explored:
            packed = codec.encode(configuration)
            assert codec.events_for(packed[-1]) == tuple(
                arbiter3.enabled_events(configuration)
            )

    def test_apply_packed_matches_apply_event(
        self, arbiter3, codec, explored
    ):
        for configuration in explored:
            packed = codec.encode(configuration)
            for event in arbiter3.enabled_events(configuration):
                rich = arbiter3.apply_event(configuration, event)
                assert codec.decode(
                    codec.apply_packed(packed, event)
                ) == rich

    def test_apply_packed_memoizes_steps(self, arbiter3):
        codec = PackedCodec(arbiter3)
        packed = codec.encode(arbiter3.initial_configuration([0, 0, 1]))
        event = Event("p1", NULL)
        codec.apply_packed(packed, event)
        misses = codec.step_misses
        codec.apply_packed(packed, event)
        assert codec.step_misses == misses
        assert codec.step_hits >= 1

    def test_apply_packed_unknown_process(self, codec, explored):
        packed = codec.encode(explored[0])
        with pytest.raises(UnknownProcess):
            codec.apply_packed(packed, Event("p99", NULL))

    def test_apply_rich_round_trips(self, arbiter3, codec, explored):
        for configuration in explored[:8]:
            for event in arbiter3.enabled_events(configuration):
                assert codec.apply_rich(configuration, event) == (
                    arbiter3.apply_event(configuration, event)
                )


class TestEngineParity:
    """Packed and dict-backed engines build the identical graph."""

    @pytest.fixture(scope="class")
    def engines(self, arbiter3):
        roots = [
            arbiter3.initial_configuration(inputs)
            for inputs in ([0, 0, 1], [1, 0, 1], [0, 0, 0])
        ]
        packed = GlobalConfigurationGraph(arbiter3, packed=True)
        rich = GlobalConfigurationGraph(arbiter3, packed=False)
        for root in roots:
            packed.explore(root)
            rich.explore(root)
        return packed, rich

    def test_same_nodes_same_ids(self, engines):
        packed, rich = engines
        assert len(packed) == len(rich)
        for node in range(len(packed)):
            assert packed.configuration_at(node) == (
                rich.configurations[node]
            )

    def test_same_edges_in_same_order(self, engines):
        packed, rich = engines
        assert packed.successors == rich.successors

    def test_same_decision_nodes(self, engines):
        packed, rich = engines
        for value in (0, 1):
            assert packed.decision_nodes(value) == (
                rich.decision_nodes(value)
            )

    def test_census_parity(self, arbiter3):
        root = arbiter3.initial_configuration([0, 1, 1])
        censuses = []
        for is_packed in (True, False):
            analyzer = ValencyAnalyzer(arbiter3, packed=is_packed)
            analyzer.valency(root)
            engine = analyzer.graph
            closure = engine.reachable_from(engine.node_id(root))
            censuses.append(
                sorted(
                    (node, analyzer.peek_node(node).value)
                    for node in closure.nodes
                )
            )
        assert censuses[0] == censuses[1]


class TestLemma1PackedCommutativity:
    """Lemma 1 holds as literal tuple equality on packed ids.

    Property-based with the stdlib ``random`` module: sample random
    reachable configurations and random pairs of schedules over disjoint
    process sets, then check σ2(σ1(C)) == σ1(σ2(C)) *as packed tuples*.
    """

    def _applicable(self, codec, packed, schedule):
        """Apply *schedule*; None if some event is not applicable."""
        from repro.core.errors import InvalidEvent

        for event in schedule:
            if event.value is not NULL:
                message_values = {
                    m.value
                    for m in codec.buffer_at(packed[-1]).messages_for(
                        event.process
                    )
                }
                if event.value not in message_values:
                    return None
            try:
                packed = codec.apply_packed(packed, event)
            except InvalidEvent:  # pragma: no cover - guarded above
                return None
        return packed

    def _random_schedule(self, rng, codec, packed, processes, length):
        events = []
        for _ in range(length):
            process = rng.choice(processes)
            pending = codec.buffer_at(packed[-1]).messages_for(process)
            choices = [Event(process, NULL)]
            choices.extend(Event(process, m.value) for m in pending)
            event = rng.choice(choices)
            events.append(event)
            applied = self._applicable(codec, packed, [event])
            if applied is None:
                return None
            packed = applied
        return events

    def test_disjoint_schedules_commute(self, arbiter3, explored):
        rng = random.Random(0xF1)
        codec = PackedCodec(arbiter3)
        names = list(arbiter3.process_names)
        checked = 0
        for _ in range(200):
            configuration = rng.choice(explored)
            packed = codec.encode(configuration)
            rng.shuffle(names)
            split = rng.randrange(1, len(names))
            left, right = names[:split], names[split:]
            sigma1 = self._random_schedule(
                rng, codec, packed, left, rng.randrange(1, 4)
            )
            if sigma1 is None:
                continue
            sigma2 = self._random_schedule(
                rng, codec, packed, right, rng.randrange(1, 4)
            )
            if sigma2 is None:
                continue
            via1 = self._applicable(codec, packed, sigma1)
            via1 = (
                self._applicable(codec, via1, sigma2)
                if via1 is not None
                else None
            )
            via2 = self._applicable(codec, packed, sigma2)
            via2 = (
                self._applicable(codec, via2, sigma1)
                if via2 is not None
                else None
            )
            if via1 is None or via2 is None:
                continue
            assert via1 == via2  # literal packed-tuple equality
            checked += 1
        assert checked >= 50  # the sampler found enough commuting pairs
