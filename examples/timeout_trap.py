#!/usr/bin/env python3
"""The timeout trap: why "just add a backup after T ticks" backfires.

FLP assumes no synchronized clocks, "so algorithms based on time-outs,
for example, cannot be used."  Every practitioner's first instinct is
to try anyway: count your own steps, and when the arbiter has been
quiet for T ticks, escalate to a backup.  This example shows the whole
arc:

1. the plain arbiter: safe, but one slow referee blocks the world;
2. the timeout variant: the backup takes over — availability restored!
3. the bill: a schedule where the "dead" arbiter was merely slow, both
   referees rule, and the system decides 0 *and* 1 — rendered as a
   space-time diagram so you can watch the split happen;
4. the exhaustive verdict: agreement is violated in the reachable
   state space, something no amount of lucky testing can repair.

Run:  python examples/timeout_trap.py
"""

from repro import (
    CrashPlan,
    RoundRobinScheduler,
    StopCondition,
    check_partial_correctness,
    make_protocol,
    simulate,
)
from repro.analysis.spacetime import spacetime_diagram
from repro.core.events import NULL, Event, Schedule
from repro.protocols import ArbiterProcess, TimeoutArbiterProcess


def banner(text: str) -> None:
    print()
    print(f"--- {text} ---")


def main() -> None:
    plain = make_protocol(ArbiterProcess, 4)
    timed = make_protocol(TimeoutArbiterProcess, 4, timeout=2)

    banner("1. plain arbiter: safe, but the referee is a single point of stall")
    blocked = simulate(
        plain,
        plain.initial_configuration([0, 0, 0, 1]),
        RoundRobinScheduler(crash_plan=CrashPlan({"p0": 0})),
        max_steps=300,
        stop=StopCondition.ALL_DECIDED,
    )
    print(
        f"arbiter dead: decisions after {blocked.steps} steps = "
        f"{blocked.decisions or '{} — everyone waits forever'}"
    )

    banner("2. timeout + backup: availability restored")
    rescued = simulate(
        timed,
        timed.initial_configuration([0, 0, 0, 1]),
        RoundRobinScheduler(crash_plan=CrashPlan({"p0": 0})),
        max_steps=600,
        stop=StopCondition.ALL_DECIDED,
    )
    print(
        f"arbiter dead, timeout=2 ticks: decisions = {rescued.decisions}"
        f"  (agreement: {rescued.agreement_holds})"
    )

    banner("3. the bill: the arbiter was only SLOW, not dead")
    split = Schedule(
        [
            Event("p2", NULL),                # p2 claims 0 → arbiter
            Event("p3", NULL),                # p3 claims 1 → arbiter; tick 1
            Event("p3", NULL),                # tick 2 → escalate to backup
            Event("p3", NULL),                # (extra lonely step: no-op)
            Event("p0", ("claim", "p2", 0)),  # slow arbiter wakes: rules 0
            Event("p1", ("claim", "p3", 1)),  # backup rules 1  ← SPLIT
        ]
    )
    print(
        spacetime_diagram(
            timed, timed.initial_configuration([0, 0, 0, 1]), split
        )
    )
    final = timed.apply_schedule(
        timed.initial_configuration([0, 0, 0, 1]), split
    )
    print(f"\ndecision values in one configuration: "
          f"{sorted(final.decision_values())}  ← agreement violated")

    banner("4. exhaustive verdict")
    plain_report = check_partial_correctness(plain)
    timed_report = check_partial_correctness(timed)
    print(f"plain arbiter:   {plain_report.summary()}")
    print(f"timeout arbiter: {timed_report.summary()}")
    print(
        "\nThe timeout converted FLP's liveness failure into a safety "
        "failure.  Systems that DO escalate safely (Paxos, Raft, "
        "viewstamped replication) pay with quorums and epochs — i.e. "
        "they import the partial-synchrony machinery of "
        "repro.synchrony.partial, and give up deciding before the "
        "network stabilizes."
    )


if __name__ == "__main__":
    main()
