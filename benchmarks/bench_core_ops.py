"""Micro-benchmarks of the core model operations.

Not tied to a paper table; these quantify the substrate the proof
machinery stands on — event application, exploration, and valency — so
regressions in the hot paths are visible.

Run directly (``python benchmarks/bench_core_ops.py``) to emit the
``BENCH_core_ops.json`` artifact: it times repeated valency/witness
queries over overlapping regions on the shared incremental engine
against a per-root re-exploration baseline (the seed design, emulated
by a fresh analyzer per query) and records the speedup plus the engine
counters, so the perf trajectory is tracked PR over PR.
"""

from repro.core.events import NULL, Event
from repro.core.exploration import explore
from repro.core.valency import Valency, ValencyAnalyzer
from repro.protocols import (
    ArbiterProcess,
    ParityArbiterProcess,
    WaitForAllProcess,
    make_protocol,
)


def _overlapping_roots(protocol, max_depth: int = 2):
    """The initial hypercube plus every configuration within
    *max_depth* steps — heavily overlapping forward closures."""
    roots = []
    seen = set()
    frontier = list(protocol.initial_configurations())
    for depth in range(max_depth + 1):
        next_frontier = []
        for configuration in frontier:
            if configuration in seen:
                continue
            seen.add(configuration)
            roots.append(configuration)
            if depth < max_depth:
                for event in protocol.enabled_events(configuration):
                    next_frontier.append(
                        protocol.apply_event(configuration, event)
                    )
        frontier = next_frontier
    return roots


def test_apply_event(benchmark):
    protocol = make_protocol(WaitForAllProcess, 3)
    config = protocol.initial_configuration([0, 1, 1])

    after = benchmark(protocol.apply_event, config, Event("p0", NULL))
    assert len(after.buffer) == 2


def test_apply_100_event_schedule(benchmark):
    protocol = make_protocol(ParityArbiterProcess, 3)
    from repro.adversary.flp import FLPAdversary

    certificate = FLPAdversary(protocol).build_run(stages=90)
    config = certificate.initial
    schedule = certificate.schedule[:100]
    assert len(schedule) == 100

    final = benchmark(protocol.apply_schedule, config, schedule)
    assert not final.has_decision


def test_explore_arbiter3(benchmark):
    protocol = make_protocol(ArbiterProcess, 3)
    root = protocol.initial_configuration([0, 0, 1])

    graph = benchmark(explore, protocol, root)
    assert graph.complete


def test_explore_wait_for_all3(benchmark):
    protocol = make_protocol(WaitForAllProcess, 3)
    root = protocol.initial_configuration([0, 1, 1])

    graph = benchmark(explore, protocol, root)
    assert graph.complete


def test_valency_cold(benchmark):
    protocol = make_protocol(ArbiterProcess, 3)
    root = protocol.initial_configuration([0, 0, 1])

    def classify():
        return ValencyAnalyzer(protocol).valency(root)

    valency = benchmark(classify)
    assert valency.value == "bivalent"


def test_valency_warm_cache(benchmark):
    protocol = make_protocol(ArbiterProcess, 3)
    analyzer = ValencyAnalyzer(protocol)
    root = protocol.initial_configuration([0, 0, 1])
    analyzer.valency(root)

    valency = benchmark(analyzer.valency, root)
    assert valency.value == "bivalent"


def test_valency_overlapping_roots_shared_engine(benchmark):
    """Classify + witness every overlapping root on one shared graph.

    This is the workload the seed re-explored per root; on the shared
    engine everything after the first miss is cache hits.
    """
    protocol = make_protocol(ArbiterProcess, 3)
    roots = _overlapping_roots(protocol)
    analyzer = ValencyAnalyzer(protocol)
    _query_all(analyzer, roots)  # warm: graph fully grown

    def query():
        return _query_all(analyzer, roots)

    bivalent = benchmark(query)
    assert bivalent > 0


def _query_all(analyzer, roots):
    bivalent = 0
    for root in roots:
        if analyzer.valency(root) is Valency.BIVALENT:
            analyzer.bivalence_witness(root)
            bivalent += 1
    return bivalent


def test_enabled_events(benchmark):
    protocol = make_protocol(WaitForAllProcess, 3)
    config = protocol.initial_configuration([0, 1, 1])
    for name in protocol.process_names:
        config = protocol.apply_event(config, Event(name, NULL))

    events = benchmark(protocol.enabled_events, config)
    assert len(events) >= 6


# ---------------------------------------------------------------------------
# Artifact emission (python benchmarks/bench_core_ops.py)
# ---------------------------------------------------------------------------


def collect() -> dict:
    """Measure the overlapping-query workload shared vs per-root."""
    from artifact import best_of

    protocol = make_protocol(ArbiterProcess, 3)
    roots = _overlapping_roots(protocol)

    def shared_engine():
        analyzer = ValencyAnalyzer(protocol)
        return _query_all(analyzer, roots)

    def per_root_reexploration():
        # The seed design, emulated: every query pays for its own
        # exploration because nothing is shared between roots.
        bivalent = 0
        for root in roots:
            analyzer = ValencyAnalyzer(protocol)
            if analyzer.valency(root) is Valency.BIVALENT:
                analyzer.bivalence_witness(root)
                bivalent += 1
        return bivalent

    shared_s = best_of(shared_engine)
    per_root_s = best_of(per_root_reexploration)

    analyzer = ValencyAnalyzer(protocol)
    _query_all(analyzer, roots)
    counters = analyzer.stats.as_dict()

    explore_protocol = make_protocol(ArbiterProcess, 3)
    explore_root = explore_protocol.initial_configuration([0, 0, 1])
    return {
        "protocol": "arbiter/3",
        "query_roots": len(roots),
        "shared_engine_s": round(shared_s, 6),
        "per_root_reexploration_s": round(per_root_s, 6),
        "speedup": round(per_root_s / shared_s, 2),
        "explore_arbiter3_s": round(
            best_of(lambda: explore(explore_protocol, explore_root)), 6
        ),
        "engine_counters": counters,
    }


def main(argv=None) -> int:
    import sys

    sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
    argv = sys.argv[1:] if argv is None else argv
    if "--smoke" in argv:
        # CI smoke: exercise the workload once, write no artifact.
        protocol = make_protocol(ArbiterProcess, 3)
        roots = _overlapping_roots(protocol)
        analyzer = ValencyAnalyzer(protocol)
        bivalent = _query_all(analyzer, roots)
        assert bivalent > 0
        counters = analyzer.stats.as_dict()
        print(
            f"smoke ok: {bivalent} bivalent roots of {len(roots)}, "
            f"{counters['interned']} configurations interned"
        )
        return 0

    from artifact import write_artifact

    import bench_lemma3

    sections = {
        "overlapping_valency_queries": collect(),
        "lemma3_staged_adversary": bench_lemma3.collect(),
    }
    path = write_artifact(sections)
    print(f"wrote {path}")
    speedup = sections["overlapping_valency_queries"]["speedup"]
    print(f"shared-engine speedup over per-root re-exploration: {speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
