"""Drain, spool recovery, and resume determinism (in-process half).

The subprocess half — SIGKILL with no drain — lives in
``tests/chaos/test_server_kill.py``; here the daemon stops through the
graceful path and a successor picks the spool up.
"""

import json
import time

from repro.serve.runner import execute_job
from repro.serve.spool import Spool
from repro.serve.wire import JobSpec, canonical_json

SPEC = {"verb": "check", "protocol": "benor", "n": 3, "budget": 20_000}


def _wait_for(predicate, timeout_s=60.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    raise TimeoutError("condition not met in time")


class TestDrainAndResume:
    def test_drain_suspends_running_job_to_spool(self, daemon, tmp_path):
        spool_dir = tmp_path / "drain-spool"
        first = daemon(spool=spool_dir, checkpoint_every_s=0.1)
        client = first.client
        job_id = client.submit(SPEC).json()["job_id"]
        _wait_for(
            lambda: client.job(job_id).json()["state"] == "running"
            and client.job(job_id).json()["has_checkpoint"]
        )
        first.stop()  # graceful: drain → checkpoint → requeue

        spool = Spool(spool_dir)
        records = spool.load_records()
        assert [record.id for record in records] == [job_id]
        assert records[0].state == "queued"
        assert records[0].resumes == 1
        assert spool.checkpoint_path(job_id).exists()

        # A successor on the same spool finishes the job without being
        # asked, and its answer matches a cold uninterrupted run.
        second = daemon(spool=spool_dir, checkpoint_every_s=0.1)
        view = _wait_for(
            lambda: (
                second.client.job(job_id).json()["state"] == "done"
                and second.client.job(job_id).json()
            ),
            timeout_s=120.0,
        )
        assert view["resumes"] >= 1
        assert second.client.stats()["counters"]["jobs_recovered"] == 1

        recovered = json.loads(second.client.result(job_id).body)
        reference = execute_job(JobSpec.from_dict(SPEC))
        assert canonical_json(recovered["result"]) == canonical_json(
            reference["result"]
        )
        # The resumed engine really did restore a snapshot rather than
        # recompute from scratch.
        assert recovered["meta"]["resumed_nodes"] > 0

    def test_draining_daemon_rejects_and_reports_not_ready(self, daemon):
        server = daemon()
        client = server.client
        job_id = client.submit(SPEC).json()["job_id"]
        _wait_for(lambda: client.job(job_id).json()["state"] == "running")
        # Flip the manager into draining without closing the listener
        # so the not-ready surface is observable.
        server.app.manager.draining = True
        assert client.readyz().status == 503
        response = client.submit(
            {"verb": "check", "protocol": "parity-arbiter", "n": 3}
        )
        assert response.status == 429
        server.app.manager.draining = False
        _wait_for(
            lambda: client.job(job_id).json()["state"] == "done",
            timeout_s=120.0,
        )

    def test_done_jobs_reload_after_restart(self, daemon, tmp_path):
        spool_dir = tmp_path / "done-spool"
        first = daemon(spool=spool_dir)
        job_id = first.client.submit(
            {"verb": "check", "protocol": "parity-arbiter", "n": 3}
        ).json()["job_id"]
        _wait_for(
            lambda: first.client.job(job_id).json()["state"] == "done"
        )
        body = first.client.result(job_id).body
        first.stop()

        second = daemon(spool=spool_dir)
        assert second.client.job(job_id).json()["state"] == "done"
        assert second.client.result(job_id).body == body
        assert second.client.stats()["counters"]["jobs_recovered"] == 0


class TestSpoolHygiene:
    def test_corrupt_record_is_skipped_not_fatal(self, daemon, tmp_path):
        spool_dir = tmp_path / "corrupt-spool"
        spool = Spool(spool_dir)
        bad = spool.job_dir("j-bad")
        bad.mkdir(parents=True)
        (bad / "job.json").write_bytes(b"{torn")
        server = daemon(spool=spool_dir)
        assert server.client.healthz().status == 200
        assert server.client.jobs() == []
