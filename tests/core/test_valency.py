"""Unit + property tests for valency classification.

The key invariants come straight from the paper:

* a configuration with a decision value v is univalent for v (write-once
  output + agreement);
* every successor of a 0-valent configuration is 0-valent;
* bivalent configurations have at least one successor per decision value
  somewhere downstream (witnessed by schedules).
"""

import pytest

from repro.core.events import Event
from repro.core.exploration import explore
from repro.core.valency import Valency, ValencyAnalyzer, shortest_schedule
from repro.core.values import ONE, ZERO
from repro.protocols import (
    AlwaysZeroProcess,
    ArbiterProcess,
    WaitForAllProcess,
    make_protocol,
)


class TestValencyEnum:
    def test_of_values(self):
        assert Valency.of_values(frozenset({0, 1})) is Valency.BIVALENT
        assert Valency.of_values(frozenset({0})) is Valency.ZERO_VALENT
        assert Valency.of_values(frozenset({1})) is Valency.ONE_VALENT
        assert Valency.of_values(frozenset()) is Valency.NONE

    def test_of_values_rejects_garbage(self):
        with pytest.raises(ValueError):
            Valency.of_values(frozenset({2}))

    def test_is_univalent(self):
        assert Valency.ZERO_VALENT.is_univalent
        assert Valency.ONE_VALENT.is_univalent
        assert not Valency.BIVALENT.is_univalent
        assert not Valency.UNKNOWN.is_univalent

    def test_decided_value(self):
        assert Valency.ZERO_VALENT.decided_value == ZERO
        assert Valency.ONE_VALENT.decided_value == ONE
        assert Valency.BIVALENT.decided_value is None


class TestArbiterValencies:
    """The arbiter protocol's valency structure is known by design."""

    def test_mixed_inputs_bivalent(self, arbiter3, arbiter3_analyzer):
        initial = arbiter3.initial_configuration([0, 0, 1])
        assert arbiter3_analyzer.valency(initial) is Valency.BIVALENT

    def test_uniform_proposers_univalent(self, arbiter3, arbiter3_analyzer):
        # Proposers are p1, p2 (p0 is the arbiter, whose input is unused).
        all_zero = arbiter3.initial_configuration([1, 0, 0])
        all_one = arbiter3.initial_configuration([0, 1, 1])
        assert arbiter3_analyzer.valency(all_zero) is Valency.ZERO_VALENT
        assert arbiter3_analyzer.valency(all_one) is Valency.ONE_VALENT

    def test_decided_configuration_is_univalent(
        self, arbiter3, arbiter3_analyzer
    ):
        initial = arbiter3.initial_configuration([0, 0, 1])
        witness = arbiter3_analyzer.bivalence_witness(initial)
        decided = arbiter3.apply_schedule(initial, witness.to_zero)
        assert ZERO in decided.decision_values()
        assert arbiter3_analyzer.valency(decided) is Valency.ZERO_VALENT

    def test_decision_values_match_valency(
        self, arbiter3, arbiter3_analyzer
    ):
        initial = arbiter3.initial_configuration([0, 0, 1])
        assert arbiter3_analyzer.decision_values(initial) == frozenset(
            {0, 1}
        )
        uni = arbiter3.initial_configuration([0, 1, 1])
        assert arbiter3_analyzer.decision_values(uni) == frozenset({1})

    def test_successor_of_zero_valent_is_zero_valent(
        self, arbiter3, arbiter3_analyzer
    ):
        root = arbiter3.initial_configuration([1, 0, 0])
        graph = explore(arbiter3, root)
        for configuration in graph.configurations:
            assert (
                arbiter3_analyzer.valency(configuration)
                is Valency.ZERO_VALENT
            )

    def test_classify_initials_covers_hypercube(
        self, arbiter3, arbiter3_analyzer
    ):
        table = arbiter3_analyzer.classify_initials()
        assert len(table) == 8
        assert table[(0, 0, 1)] is Valency.BIVALENT
        assert table[(1, 0, 0)] is Valency.ZERO_VALENT


class TestWitnesses:
    def test_bivalence_witness_verifies(self, arbiter3, arbiter3_analyzer):
        initial = arbiter3.initial_configuration([0, 1, 0])
        witness = arbiter3_analyzer.bivalence_witness(initial)
        assert witness is not None
        assert witness.verify(arbiter3)

    def test_no_witness_for_univalent(self, arbiter3, arbiter3_analyzer):
        initial = arbiter3.initial_configuration([0, 0, 0])
        assert arbiter3_analyzer.bivalence_witness(initial) is None

    def test_witness_schedules_are_minimal_nonempty(
        self, arbiter3, arbiter3_analyzer
    ):
        initial = arbiter3.initial_configuration([0, 0, 1])
        witness = arbiter3_analyzer.bivalence_witness(initial)
        assert len(witness.to_zero) >= 1
        assert len(witness.to_one) >= 1


class TestBoundedHonesty:
    def test_tiny_budget_yields_unknown_not_lies(self, arbiter3):
        analyzer = ValencyAnalyzer(arbiter3, max_configurations=3)
        initial = arbiter3.initial_configuration([0, 0, 1])
        valency = analyzer.valency(initial)
        # With 3 configurations the decision structure cannot be pinned
        # down; the analyzer must say UNKNOWN or prove BIVALENT, never
        # claim univalence.
        assert valency in (Valency.UNKNOWN, Valency.BIVALENT)

    def test_unknown_not_cached_so_bigger_budget_improves(self, arbiter3):
        small = ValencyAnalyzer(arbiter3, max_configurations=3)
        initial = arbiter3.initial_configuration([0, 0, 1])
        first = small.valency(initial)
        small.max_configurations = 100_000
        second = small.valency(initial)
        assert second is Valency.BIVALENT
        assert first in (Valency.UNKNOWN, Valency.BIVALENT)


class TestNoneValency:
    def test_always_zero_cannot_reach_one(self):
        protocol = make_protocol(AlwaysZeroProcess, 2)
        analyzer = ValencyAnalyzer(protocol)
        initial = protocol.initial_configuration([1, 1])
        assert analyzer.valency(initial) is Valency.ZERO_VALENT


class TestWaitForAllValencies:
    def test_all_initials_univalent(
        self, wait_for_all3, wait_for_all3_analyzer
    ):
        table = wait_for_all3_analyzer.classify_initials()
        assert all(valency.is_univalent for valency in table.values())

    def test_valency_matches_tally(self, wait_for_all3, wait_for_all3_analyzer):
        table = wait_for_all3_analyzer.classify_initials()
        # Majority with ties to 1 over three inputs.
        assert table[(0, 0, 0)] is Valency.ZERO_VALENT
        assert table[(1, 1, 0)] is Valency.ONE_VALENT
        assert table[(1, 0, 0)] is Valency.ZERO_VALENT


class TestShortestSchedule:
    def test_trivial_when_source_in_targets(self, arbiter3):
        root = arbiter3.initial_configuration([0, 0, 1])
        graph = explore(arbiter3, root)
        assert shortest_schedule(graph, 0, {0}) is not None
        assert len(shortest_schedule(graph, 0, {0})) == 0

    def test_path_replays(self, arbiter3):
        root = arbiter3.initial_configuration([0, 0, 1])
        graph = explore(arbiter3, root)
        targets = graph.decision_nodes(1)
        schedule = shortest_schedule(graph, 0, targets)
        assert schedule is not None
        final = arbiter3.apply_schedule(root, schedule)
        assert 1 in final.decision_values()

    def test_unreachable_targets_return_none(self, arbiter3):
        root = arbiter3.initial_configuration([0, 0, 0])
        graph = explore(arbiter3, root)
        # No 1-decision exists with all-zero proposers.
        assert shortest_schedule(graph, 0, graph.decision_nodes(1)) is None
