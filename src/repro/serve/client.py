"""Tiny blocking HTTP client for the exploration daemon.

Raw sockets, no dependencies — the same wire discipline the server
hand-rolls, from the other end.  Used by ``repro query``, the serve
tests, the chaos harness, and the benchmark's concurrent clients.
"""

from __future__ import annotations

import json
import random
import socket
import time
from dataclasses import dataclass
from pathlib import Path

from repro.serve.wire import canonical_json

__all__ = ["HttpResponse", "ServeClient", "http_request", "retry_after_s"]


def retry_after_s(headers: dict[str, str]) -> float | None:
    """Parse a ``Retry-After`` seconds value; ``None`` if absent/bad."""
    raw = headers.get("retry-after")
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


@dataclass(frozen=True)
class HttpResponse:
    status: int
    headers: dict[str, str]
    body: bytes

    def json(self) -> object:
        return json.loads(self.body)


def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes | None = None,
    timeout_s: float = 60.0,
) -> HttpResponse:
    """One request/response round trip on a fresh connection."""
    payload = body or b""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("latin-1")
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.sendall(head + payload)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks)
    header_blob, _, rest = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    if not lines or len(lines[0].split(" ", 2)) < 2:
        raise ConnectionError(f"malformed response from {host}:{port}")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", len(rest)))
    return HttpResponse(status=status, headers=headers, body=rest[:length])


class ServeClient:
    """Convenience wrapper bound to one daemon endpoint."""

    def __init__(self, host: str, port: int, timeout_s: float = 120.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    @classmethod
    def from_spool(
        cls, spool: str | Path, timeout_s: float = 120.0
    ) -> "ServeClient":
        """Connect via the endpoint.json the daemon wrote at startup."""
        endpoint_path = Path(spool) / "endpoint.json"
        try:
            endpoint = json.loads(endpoint_path.read_bytes())
        except (OSError, ValueError) as error:
            raise ConnectionError(
                f"no daemon endpoint at {endpoint_path}: {error}"
            ) from None
        return cls(str(endpoint["host"]), int(endpoint["port"]), timeout_s)

    def _request(
        self, method: str, path: str, payload: object | None = None
    ) -> HttpResponse:
        body = canonical_json(payload) if payload is not None else None
        return http_request(
            self.host, self.port, method, path, body, self.timeout_s
        )

    def healthz(self) -> HttpResponse:
        return self._request("GET", "/healthz")

    def readyz(self) -> HttpResponse:
        return self._request("GET", "/readyz")

    def stats(self) -> dict[str, object]:
        return self._request("GET", "/stats").json()

    def submit(self, spec: dict[str, object]) -> HttpResponse:
        return self._request("POST", "/jobs", spec)

    def job(self, job_id: str) -> HttpResponse:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict[str, object]]:
        return self._request("GET", "/jobs").json()["jobs"]

    def result(self, job_id: str) -> HttpResponse:
        return self._request("GET", f"/jobs/{job_id}/result")

    def query(
        self,
        spec: dict[str, object],
        *,
        retry: bool = True,
        max_retries: int = 4,
        backoff_base_s: float = 0.25,
        backoff_cap_s: float = 8.0,
        sleep=time.sleep,
        rng: random.Random | None = None,
    ) -> HttpResponse:
        """POST the spec to ``/query``, riding out admission pushback.

        A saturated daemon answers 429 with a ``Retry-After`` hint; the
        client honors the hint (falling back to exponential backoff when
        it is absent or malformed), jitters it so a herd of clients does
        not re-collide, and gives up after ``max_retries`` re-attempts —
        the final 429 is returned, never raised.  ``retry=False``
        (``repro query --no-retry``) restores the old single-shot
        behavior.  ``sleep``/``rng`` are injectable for tests.
        """
        rng = rng if rng is not None else random.Random()
        attempt = 0
        while True:
            response = self._request("POST", "/query", spec)
            if response.status != 429 or not retry or attempt >= max_retries:
                return response
            hinted = retry_after_s(response.headers)
            delay = (
                hinted
                if hinted is not None
                else backoff_base_s * (2.0 ** attempt)
            )
            delay = min(backoff_cap_s, delay) * (1.0 + 0.25 * rng.random())
            sleep(delay)
            attempt += 1
