"""Admissibility accounting for finite run prefixes.

The paper (Section 2): "A process p is *nonfaulty* in a run provided
that it takes infinitely many steps, and it is *faulty* otherwise.  A
run is *admissible* provided that at most one process is faulty and
that all messages sent to nonfaulty processes are eventually received."

Admissibility is a property of infinite runs; a finite prefix can never
*be* admissible, only *consistent with* an admissible extension.  This
module quantifies that consistency as measurable debt:

* **step gaps** — for each process designated nonfaulty, the longest
  stretch of events during which it did not step (a fair scheduler
  keeps this bounded; the FLP adversary's queue discipline bounds it by
  construction);
* **delivery lag** — for each message addressed to a nonfaulty process,
  how many events elapsed between send and delivery (or how long it has
  been pending at the end of the prefix);
* **faulty-step placement** — designated faulty processes must take
  finitely many steps; in a prefix that means: none after their fault
  point.

The E4 experiment and the adversary tests use this to show the
non-deciding prefixes are not cheating on fairness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.configuration import Configuration
from repro.core.events import Event, Schedule
from repro.core.messages import Message
from repro.core.protocol import Protocol

__all__ = [
    "AdmissibilityReport",
    "analyze_admissibility",
    # Re-exported lazily from repro.faults.audit (which builds on this
    # module): certification of fault-injected runs.
    "FaultAuditVerdict",
    "audit_run",
    "audit_simulation",
]

_AUDIT_NAMES = ("FaultAuditVerdict", "audit_run", "audit_simulation")


def __getattr__(name: str):
    # Lazy to avoid a cycle: repro.faults.audit imports
    # analyze_admissibility from here.
    if name in _AUDIT_NAMES:
        from repro.faults import audit

        return getattr(audit, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


@dataclass(frozen=True)
class AdmissibilityReport:
    """Fairness debt of one finite prefix.

    Attributes
    ----------
    length:
        Number of events in the prefix.
    faulty:
        The designated faulty set (must have ≤ 1 member for the
        prefix to be FLP-admissible; checked by :attr:`fault_ok`).
    steps:
        Events taken per process.
    max_step_gap:
        Per nonfaulty process: the longest run of consecutive events in
        which it did not step (counting from the prefix start and to
        its end).  Bounded gaps are what "takes infinitely many steps"
        looks like on a prefix.
    max_delivery_lag:
        Over all messages to nonfaulty processes *delivered* in the
        prefix: the maximum events between send and delivery.
    oldest_pending_age:
        Over messages to nonfaulty processes still undelivered at the
        end: the age (in events) of the oldest.  0 if none pending.
    pending_to_faulty:
        Messages still addressed to faulty processes — these need never
        be delivered, so they are reported but not counted as debt.
    violations:
        Hard violations found: a faulty process stepping after its
        designated fault point, or more than one faulty process.
    """

    length: int
    faulty: frozenset[str]
    steps: dict[str, int]
    max_step_gap: dict[str, int]
    max_delivery_lag: int
    oldest_pending_age: int
    pending_to_faulty: int
    violations: tuple[str, ...] = ()

    @property
    def fault_ok(self) -> bool:
        """At most one faulty process and no post-fault steps."""
        return len(self.faulty) <= 1 and not self.violations

    def consistent_with_admissible(
        self, step_gap_bound: int, lag_bound: int
    ) -> bool:
        """Whether the prefix fits an admissible run whose scheduler
        promises the given fairness bounds.

        A prefix is consistent when ≤ 1 process is faulty, no hard
        violations occurred, every nonfaulty process's step gap is
        within *step_gap_bound*, and no live-addressed message was (or
        still is) delayed beyond *lag_bound*.
        """
        if not self.fault_ok:
            return False
        if any(gap > step_gap_bound for gap in self.max_step_gap.values()):
            return False
        return (
            self.max_delivery_lag <= lag_bound
            and self.oldest_pending_age <= lag_bound
        )

    def summary(self) -> str:
        worst_gap = max(self.max_step_gap.values(), default=0)
        return (
            f"{self.length} events, faulty={sorted(self.faulty) or 'none'}; "
            f"worst step gap {worst_gap}, worst delivery lag "
            f"{self.max_delivery_lag}, oldest pending "
            f"{self.oldest_pending_age}"
        )


@dataclass
class _PendingCopy:
    message: Message
    sent_at: int


def analyze_admissibility(
    protocol: Protocol,
    initial: Configuration,
    schedule: Schedule,
    faulty: frozenset[str] = frozenset(),
    fault_point: int | None = None,
) -> AdmissibilityReport:
    """Replay *schedule* from *initial* and account for fairness.

    Parameters
    ----------
    faulty:
        Processes designated faulty (the adversary's single victim, if
        any).  Their silence and their undelivered mail are not debt.
    fault_point:
        Event index from which the faulty processes must be silent;
        defaults to 0 (silent for the whole prefix).
    """
    live = [
        name for name in protocol.process_names if name not in faulty
    ]
    last_step = {name: -1 for name in protocol.process_names}
    max_gap = {name: 0 for name in live}
    steps = {name: 0 for name in protocol.process_names}
    pending: list[_PendingCopy] = [
        _PendingCopy(message, 0)
        for message in initial.buffer
    ]
    max_lag = 0
    violations: list[str] = []
    threshold = fault_point if fault_point is not None else 0

    configuration = initial
    for index, event in enumerate(schedule):
        name = event.process
        steps[name] = steps.get(name, 0) + 1
        if name in faulty and index >= threshold:
            violations.append(
                f"faulty process {name} stepped at event {index}"
            )
        if name in max_gap:
            gap = index - last_step[name] - 1
            max_gap[name] = max(max_gap[name], gap)
        last_step[name] = index
        # Account the delivery, if any.
        if not event.is_null_delivery:
            target = event.message
            for position, copy in enumerate(pending):
                if copy.message == target:
                    if target.destination not in faulty:
                        max_lag = max(max_lag, index - copy.sent_at)
                    del pending[position]
                    break
        # Apply and account new sends (buffer diff).
        before = configuration.buffer
        configuration = protocol.apply_event(configuration, event)
        after = configuration.buffer
        for message in after.distinct_messages():
            delta = after.count(message) - before.count(message)
            if not event.is_null_delivery and message == event.message:
                delta += 1  # one copy was consumed by this very event
            for _ in range(max(delta, 0)):
                pending.append(_PendingCopy(message, index))

    end = len(schedule)
    for name in live:
        gap = end - last_step[name] - 1
        max_gap[name] = max(max_gap[name], gap)

    oldest = 0
    to_faulty = 0
    for copy in pending:
        if copy.message.destination in faulty:
            to_faulty += 1
        else:
            oldest = max(oldest, end - copy.sent_at)

    return AdmissibilityReport(
        length=end,
        faulty=faulty,
        steps={name: count for name, count in steps.items() if count},
        max_step_gap=max_gap,
        max_delivery_lag=max_lag,
        oldest_pending_age=oldest,
        pending_to_faulty=to_faulty,
        violations=tuple(violations),
    )
