"""Tests for two-phase commit as consensus."""

import pytest

from repro.core.simulation import StopCondition, simulate
from repro.protocols import TwoPhaseCommitProcess, make_protocol
from repro.schedulers import CrashPlan, RandomScheduler, RoundRobinScheduler


def run_2pc(protocol, inputs, scheduler=None, max_steps=200):
    return simulate(
        protocol,
        protocol.initial_configuration(inputs),
        scheduler or RoundRobinScheduler(),
        max_steps=max_steps,
        stop=StopCondition.ALL_DECIDED,
    )


class TestOutcomes:
    def test_all_yes_commits(self, two_pc3):
        result = run_2pc(two_pc3, [1, 1, 1])
        assert result.decided
        assert result.decision_values == frozenset({1})

    @pytest.mark.parametrize(
        "inputs", [[0, 1, 1], [1, 0, 1], [1, 1, 0], [0, 0, 0]]
    )
    def test_any_no_aborts(self, two_pc3, inputs):
        result = run_2pc(two_pc3, inputs)
        assert result.decided
        assert result.decision_values == frozenset({0})

    def test_commit_iff_and_of_inputs_over_random_schedules(self, two_pc3):
        for seed in range(12):
            for inputs in ([1, 1, 1], [1, 0, 1]):
                result = run_2pc(
                    two_pc3,
                    inputs,
                    RandomScheduler(seed=seed),
                    max_steps=500,
                )
                expected = 1 if all(inputs) else 0
                assert result.decision_values == frozenset({expected})


class TestUnilateralAbort:
    def test_no_voter_decides_before_coordinator(self, two_pc3):
        from repro.core.events import NULL, Event

        config = two_pc3.initial_configuration([1, 1, 0])
        config = two_pc3.apply_event(config, Event("p2", NULL))
        assert config.state_of("p2").output == 0  # aborted unilaterally

    def test_unilateral_abort_can_be_disabled(self):
        protocol = make_protocol(
            TwoPhaseCommitProcess, 3, unilateral_abort=False
        )
        from repro.core.events import NULL, Event

        config = protocol.initial_configuration([1, 1, 0])
        config = protocol.apply_event(config, Event("p2", NULL))
        assert not config.state_of("p2").decided
        # It still aborts once the coordinator says so.
        result = run_2pc(protocol, [1, 1, 0])
        assert result.decision_values == frozenset({0})


class TestWindowOfVulnerability:
    def test_coordinator_crash_after_votes_blocks(self, two_pc3):
        # The coordinator dies just before collecting; yes-voters hang.
        result = run_2pc(
            two_pc3,
            [1, 1, 1],
            RoundRobinScheduler(crash_plan=CrashPlan({"p0": 1})),
            max_steps=400,
        )
        assert not result.decided
        assert "p1" not in result.decisions
        assert "p2" not in result.decisions

    def test_participant_crash_blocks_commit(self, two_pc3):
        result = run_2pc(
            two_pc3,
            [1, 1, 1],
            RoundRobinScheduler(crash_plan=CrashPlan({"p2": 0})),
            max_steps=400,
        )
        assert not result.decided

    def test_no_voters_escape_the_window(self, two_pc3):
        # A 0-input participant decides unilaterally even if the
        # coordinator dies: its window is closed by its own vote.
        result = run_2pc(
            two_pc3,
            [1, 0, 1],
            RoundRobinScheduler(crash_plan=CrashPlan({"p0": 0})),
            max_steps=400,
        )
        assert result.decisions.get("p1") == 0


class TestStructure:
    def test_custom_coordinator(self):
        protocol = make_protocol(TwoPhaseCommitProcess, 3, coordinator="p1")
        assert protocol.process("p1").is_coordinator
        result = run_2pc(protocol, [1, 1, 1])
        assert result.decision_values == frozenset({1})

    def test_unknown_coordinator_rejected(self):
        with pytest.raises(ValueError):
            make_protocol(TwoPhaseCommitProcess, 3, coordinator="p9")
