"""CLI entry point: ``python -m repro.experiments [--full] [ids...]``."""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.harness import available_experiments, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the FLP reproduction experiment suite.",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        help="experiment ids to run (default: all); see --list",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full parameter grids (slower) instead of quick mode",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit the EXPERIMENTS.md report instead of plain tables",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit results as a JSON array instead of plain tables",
    )
    args = parser.parse_args(argv)

    catalog = available_experiments()
    if args.list:
        for exp_id, title in catalog.items():
            print(f"{exp_id:4s} {title}")
        return 0

    # Paper artifacts (E*) first, ablations (A*) after.
    selected = args.ids or sorted(
        catalog, key=lambda exp_id: (exp_id[0] != "E", exp_id)
    )
    unknown = [exp_id for exp_id in selected if exp_id not in catalog]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        print(f"available: {sorted(catalog)}", file=sys.stderr)
        return 2

    if args.markdown:
        from repro.experiments.report import render_markdown

        results = [
            run_experiment(exp_id, quick=not args.full, seed=args.seed)
            for exp_id in selected
        ]
        print(render_markdown(results))
        return 0

    if args.json:
        results = [
            run_experiment(exp_id, quick=not args.full, seed=args.seed)
            for exp_id in selected
        ]
        print(
            "[" + ",\n".join(result.to_json() for result in results) + "]"
        )
        return 0

    for exp_id in selected:
        started = time.perf_counter()
        result = run_experiment(exp_id, quick=not args.full, seed=args.seed)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"({elapsed:.2f}s)")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
