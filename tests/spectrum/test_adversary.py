"""Graded adversaries: budgets, caps, grades, and the audit ledger."""

import pytest

from repro.faults.plan import FaultPlan, Omission, Partition
from repro.spectrum.adversary import (
    ADVERSARY_GRADES,
    AdaptiveAdversary,
    ContentAwareAdversary,
    ObliviousAdversary,
    make_adversary,
)
from repro.synchrony.partial import AdversaryView, Envelope


def _view(round_number=1, phase=0, gst=10, active=("a", "b", "c")):
    return AdversaryView(
        round_number=round_number,
        phase=phase,
        gst=gst,
        active=tuple(active),
        states={name: 0 for name in active},
        decisions={},
    )


def _mesh(names=("a", "b", "c"), payload=("R", 1)):
    return [
        Envelope(sender=s, receiver=r, payload=payload)
        for s in names
        for r in names
        if s != r
    ]


class TestFactory:
    def test_builds_every_grade(self):
        for grade in ADVERSARY_GRADES:
            adversary = make_adversary(grade)
            assert adversary.GRADE == grade

    def test_unknown_grade_raises(self):
        with pytest.raises(ValueError, match="unknown adversary grade"):
            make_adversary("omniscient")

    def test_plan_and_drop_probability_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            make_adversary(
                "oblivious",
                plan=FaultPlan([Omission()]),
                drop_probability=0.5,
            )

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError, match="per_receiver_cap"):
            make_adversary("oblivious", per_receiver_cap=-1)


class TestBudgetsAndCaps:
    def test_unbounded_certain_clause_drops_everything(self):
        adversary = ObliviousAdversary()
        dropped = adversary.filter_phase(_mesh(), _view())
        assert len(dropped) == 6
        assert adversary.counters.omission_drops == 6
        assert len(adversary.actions) == 6
        assert all(a.kind == "omission-drop" for a in adversary.actions)

    def test_budget_limits_total_drops_across_phases(self):
        adversary = ObliviousAdversary(FaultPlan([Omission(budget=4)]))
        first = adversary.filter_phase(_mesh(), _view(phase=0))
        second = adversary.filter_phase(_mesh(), _view(phase=1))
        assert len(first) + len(second) == 4

    def test_begin_run_resets_budget_and_ledger(self):
        adversary = ObliviousAdversary(FaultPlan([Omission(budget=2)]))
        adversary.filter_phase(_mesh(), _view())
        assert adversary.counters.omission_drops == 2
        adversary.begin_run(run_seed=99)
        assert adversary.counters.omission_drops == 0
        assert adversary.actions == []
        assert len(adversary.filter_phase(_mesh(), _view())) == 2

    def test_per_receiver_cap_bounds_each_receiver(self):
        adversary = ObliviousAdversary(per_receiver_cap=1)
        dropped = adversary.filter_phase(_mesh(), _view())
        per_receiver = {}
        for _, receiver in dropped:
            per_receiver[receiver] = per_receiver.get(receiver, 0) + 1
        assert per_receiver == {"a": 1, "b": 1, "c": 1}

    def test_zero_cap_silences_nothing(self):
        adversary = ObliviousAdversary(per_receiver_cap=0)
        assert adversary.filter_phase(_mesh(), _view()) == set()

    def test_clause_destination_filter(self):
        plan = FaultPlan([Omission(destination="b", budget=None)])
        adversary = ObliviousAdversary(plan)
        dropped = adversary.filter_phase(_mesh(), _view())
        assert dropped == {("a", "b"), ("c", "b")}


class TestDeterminism:
    def test_same_run_seed_same_drops(self):
        results = []
        for _ in range(2):
            adversary = make_adversary("oblivious", drop_probability=0.5)
            adversary.begin_run(1234)
            results.append(adversary.filter_phase(_mesh(), _view()))
        assert results[0] == results[1]

    def test_different_run_seed_can_differ(self):
        outcomes = set()
        for run_seed in range(8):
            adversary = make_adversary("oblivious", drop_probability=0.5)
            adversary.begin_run(run_seed)
            outcomes.add(
                frozenset(adversary.filter_phase(_mesh(), _view()))
            )
        assert len(outcomes) > 1


class TestContentAwareGrade:
    def test_spends_budget_on_most_damaging_payload(self):
        envelopes = [
            Envelope("a", "b", ("R", 0)),
            Envelope("a", "c", ("decide", 1)),
            Envelope("b", "c", ("ack", 3)),
        ]
        adversary = ContentAwareAdversary(FaultPlan([Omission(budget=1)]))
        dropped = adversary.filter_phase(envelopes, _view())
        assert dropped == {("a", "c")}

    def test_refuses_value_free_payloads(self):
        envelopes = [
            Envelope("a", "b", ("P", None)),
            Envelope("b", "a", ("P", None)),
        ]
        adversary = ContentAwareAdversary()
        assert adversary.filter_phase(envelopes, _view()) == set()
        assert adversary.counters.omission_drops == 0


class TestAdaptiveGrade:
    def test_starves_the_leading_value(self):
        # Receiver r hears 0 twice and 1 once: the adversary must spend
        # its single budget unit on a copy carrying the leader (0).
        envelopes = [
            Envelope("a", "r", ("R", 0)),
            Envelope("b", "r", ("R", 0)),
            Envelope("c", "r", ("R", 1)),
        ]
        adversary = AdaptiveAdversary(FaultPlan([Omission(budget=1)]))
        dropped = adversary.filter_phase(envelopes, _view())
        assert len(dropped) == 1
        ((sender, receiver),) = dropped
        assert receiver == "r" and sender in ("a", "b")

    def test_deterministic_without_any_coin(self):
        envelopes = [
            Envelope("a", "r", ("R", 0)),
            Envelope("b", "r", ("R", 1)),
        ]
        results = {
            frozenset(
                AdaptiveAdversary(
                    FaultPlan([Omission(budget=1)]), seed=seed
                ).filter_phase(envelopes, _view())
            )
            for seed in range(5)
        }
        assert len(results) == 1


class TestPartitionClauses:
    def test_partition_forces_drops_outside_budget(self):
        plan = FaultPlan(
            [Partition(groups=(("a",), ("b", "c")), start=0)]
        )
        adversary = ObliviousAdversary(plan)
        dropped = adversary.filter_phase(_mesh(), _view(round_number=2))
        assert dropped == {("a", "b"), ("a", "c"), ("b", "a"), ("c", "a")}
        assert adversary.counters.partition_blocks == 4
        assert {a.kind for a in adversary.actions} == {"partition-freeze"}

    def test_healed_partition_stops_forcing(self):
        plan = FaultPlan(
            [Partition(groups=(("a",), ("b", "c")), start=0, heal_at=3)]
        )
        adversary = ObliviousAdversary(plan)
        assert adversary.filter_phase(_mesh(), _view(round_number=5)) == set()
