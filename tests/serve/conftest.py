"""Shared fixture: an in-process serve daemon on a background thread.

The daemon's event loop runs on its own thread (exactly how the chaos
subprocess runs it, minus the process boundary), so tests drive it with
the real blocking :class:`~repro.serve.client.ServeClient` over real
TCP.  Shutdown goes through the drain path unless a test already
stopped the daemon itself.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serve.client import ServeClient
from repro.serve.server import ServeApp, ServeConfig


class InProcessDaemon:
    """One ServeApp on a private event-loop thread."""

    def __init__(self, spool, **overrides):
        self.config = ServeConfig(spool=str(spool), port=0, **overrides)
        self.app: ServeApp | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> "InProcessDaemon":
        self._thread.start()
        if not self._ready.wait(30.0):
            raise TimeoutError("daemon thread did not become ready")
        if self._error is not None:
            raise self._error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 - surfaced to the test
            self._error = error
            self._ready.set()

    async def _main(self) -> None:
        self.app = ServeApp(self.config)
        self.loop = asyncio.get_running_loop()
        await self.app.start()
        self._ready.set()
        await self.app._stop.wait()
        await self.app.shutdown()

    @property
    def port(self) -> int:
        assert self.app is not None and self.app.port is not None
        return self.app.port

    @property
    def client(self) -> ServeClient:
        return ServeClient("127.0.0.1", self.port, timeout_s=120.0)

    def stop(self, timeout_s: float = 60.0) -> None:
        if self.loop is not None and self._thread.is_alive():
            try:
                self.loop.call_soon_threadsafe(self.app._stop.set)
            except RuntimeError:
                pass  # loop already closing; the join below settles it
        self._thread.join(timeout_s)
        if self._thread.is_alive():
            raise TimeoutError("daemon thread did not drain in time")


@pytest.fixture
def daemon(tmp_path):
    """Factory fixture: ``daemon(**config_overrides) -> InProcessDaemon``.

    Each call gets its own spool subdirectory unless ``spool=`` is
    passed explicitly (restart-on-same-spool tests do that).
    """
    started: list[InProcessDaemon] = []

    def factory(spool=None, **overrides) -> InProcessDaemon:
        if spool is None:
            spool = tmp_path / f"spool-{len(started)}"
        server = InProcessDaemon(spool, **overrides)
        started.append(server)
        return server.start()

    yield factory
    for server in started:
        server.stop()
