"""Configurations of the whole system (paper, Section 2).

A *configuration* consists of the internal state of each process together
with the contents of the message buffer.  An *initial configuration* is
one in which each process is in an initial state and the buffer is empty.

Configurations are immutable value objects with structural equality and
hashing.  This is load-bearing: the exploration layer memoizes on
configurations, and Lemma 1's commutativity claim ("both lead to the same
configuration C3") is checked as a literal ``==``.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.core.errors import UnknownProcess
from repro.core.messages import MessageBuffer
from repro.core.process import ProcessState

__all__ = ["Configuration"]


class Configuration:
    """Immutable system snapshot: per-process states + message buffer."""

    __slots__ = ("_states", "_buffer", "_key", "_hash")

    def __init__(
        self, states: Mapping[str, ProcessState], buffer: MessageBuffer
    ):
        if not states:
            raise ValueError("a configuration needs at least one process")
        self._states = dict(states)
        self._buffer = buffer
        self._key = tuple(sorted(self._states.items()))
        self._hash = hash((self._key, buffer))

    # -- accessors ---------------------------------------------------------

    @property
    def buffer(self) -> MessageBuffer:
        """The message buffer component of this configuration."""
        return self._buffer

    @property
    def process_names(self) -> tuple[str, ...]:
        """All process names, sorted."""
        return tuple(name for name, _ in self._key)

    def state_of(self, process: str) -> ProcessState:
        """The internal state of *process*.

        Raises
        ------
        UnknownProcess
            If *process* is not part of this configuration.
        """
        try:
            return self._states[process]
        except KeyError:
            raise UnknownProcess(process) from None

    def states(self) -> Iterator[tuple[str, ProcessState]]:
        """Iterate over ``(name, state)`` pairs in sorted name order."""
        return iter(self._key)

    # -- decision structure --------------------------------------------------

    def decision_values(self) -> frozenset[int]:
        """The set of values written to output registers in this
        configuration.

        The paper says a configuration *has decision value v* if some
        process is in a decision state with ``y_p = v``.  Partial
        correctness condition (1) requires this set to have size ≤ 1 in
        every accessible configuration.
        """
        return frozenset(
            state.output
            for _, state in self._key
            if state.decided
        )

    def decided_processes(self) -> tuple[str, ...]:
        """Names of processes whose output register is set, sorted."""
        return tuple(
            name for name, state in self._key if state.decided
        )

    @property
    def has_decision(self) -> bool:
        """``True`` iff some process has decided in this configuration."""
        return any(state.decided for _, state in self._key)

    # -- functional updates ---------------------------------------------------

    def with_state(self, process: str, state: ProcessState) -> "Configuration":
        """Copy of this configuration with *process*'s state replaced."""
        if process not in self._states:
            raise UnknownProcess(process)
        states = dict(self._states)
        states[process] = state
        return Configuration(states, self._buffer)

    def with_buffer(self, buffer: MessageBuffer) -> "Configuration":
        """Copy of this configuration with the buffer replaced."""
        return Configuration(self._states, buffer)

    def replace(
        self, process: str, state: ProcessState, buffer: MessageBuffer
    ) -> "Configuration":
        """Copy with both one process state and the buffer replaced.

        This is the shape of a single step: the stepping process's state
        changes and the buffer loses the delivered message and gains the
        sent ones; all other process states are untouched.
        """
        if process not in self._states:
            raise UnknownProcess(process)
        states = dict(self._states)
        states[process] = state
        return Configuration(states, buffer)

    # -- dunder ------------------------------------------------------------------

    def __contains__(self, process: str) -> bool:
        return process in self._states

    def __len__(self) -> int:
        return len(self._states)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._key == other._key and self._buffer == other._buffer

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Reconstruct through __init__: the sorted key and the cached
        # hash are derived state, and hashes are process-local under
        # PYTHONHASHSEED — worker processes must recompute both.
        return (Configuration, (self._states, self._buffer))

    def __repr__(self) -> str:
        parts = []
        for name, state in self._key:
            out = "b" if not state.decided else state.output
            parts.append(f"{name}:x={state.input},y={out}")
        return (
            f"Configuration({'; '.join(parts)}; "
            f"|buffer|={len(self._buffer)})"
        )

    def describe(self) -> str:
        """Multi-line human-readable rendering (for traces and examples)."""
        lines = ["Configuration:"]
        for name, state in self._key:
            lines.append(f"  {name}: {state!r}")
        lines.append(f"  buffer: {self._buffer!r}")
        return "\n".join(lines)
