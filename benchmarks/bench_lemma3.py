"""Bench E3 — Lemma 3 / Figures 2-3 (bivalent-successor search).

Regenerates the E3 table and micro-benchmarks one search, for both the
success (parity arbiter) and Case-2-failure (plain arbiter) paths.

:func:`collect` (used by ``python benchmarks/bench_core_ops.py``)
times staged adversary runs of increasing length and records how the
shared engine's ``configurations_explored`` counter stays flat as the
stage count quadruples — the sublinear-growth claim of the engine,
measured.
"""

import pytest

from repro.adversary.lemmas import find_bivalent_successor
from repro.core.events import NULL, Event
from repro.core.valency import ValencyAnalyzer
from repro.protocols import (
    ArbiterProcess,
    ParityArbiterProcess,
    make_protocol,
)


def test_e3_table(benchmark, run_and_render):
    result = run_and_render(benchmark, "E3")
    for row in result.rows:
        assert (
            row["immediate"] + row["deferred"] + row["case2_failures"]
            == row["searches"]
        )


@pytest.fixture(scope="module")
def warm_parity():
    protocol = make_protocol(ParityArbiterProcess, 3)
    analyzer = ValencyAnalyzer(protocol)
    config = protocol.initial_configuration([0, 0, 1])
    config = protocol.apply_event(config, Event("p1", NULL))
    config = protocol.apply_event(config, Event("p2", NULL))
    analyzer.valency(config)  # warm the cache
    return protocol, analyzer, config


def test_search_success_path(benchmark, warm_parity):
    protocol, analyzer, config = warm_parity
    claim = Event("p0", ("claim", "p1", 0, 0))

    def search():
        return find_bivalent_successor(protocol, analyzer, config, claim)

    outcome = benchmark(search)
    assert outcome.found


def test_search_failure_path(benchmark):
    protocol = make_protocol(ArbiterProcess, 3)
    analyzer = ValencyAnalyzer(protocol)
    config = protocol.initial_configuration([0, 0, 1])
    config = protocol.apply_event(config, Event("p1", NULL))
    analyzer.valency(config)
    claim = Event("p0", ("claim", "p1", 0))

    def search():
        return find_bivalent_successor(protocol, analyzer, config, claim)

    outcome = benchmark(search)
    assert outcome.failure is not None


# ---------------------------------------------------------------------------
# Artifact section (called by python benchmarks/bench_core_ops.py)
# ---------------------------------------------------------------------------


def collect() -> dict:
    """Staged adversary runs: wall time and engine growth vs stages.

    Every stage configuration lies in the initial configuration's
    forward closure, so on the shared engine quadrupling the stage
    count interns zero new configurations — ``explored_*`` below stay
    equal while the per-stage marginal cost is pure graph lookups.
    """
    from artifact import best_of

    from repro.adversary.flp import FLPAdversary

    protocol = make_protocol(ParityArbiterProcess, 3)
    short_stages, long_stages = 4, 16

    def staged_run(stages):
        analyzer = ValencyAnalyzer(protocol)
        FLPAdversary(protocol, analyzer=analyzer).build_run(stages=stages)
        return analyzer

    short_s = best_of(lambda: staged_run(short_stages))
    long_s = best_of(lambda: staged_run(long_stages))
    explored_short = staged_run(short_stages).configurations_explored
    explored_long = staged_run(long_stages).configurations_explored

    return {
        "protocol": "parity-arbiter/3",
        "short_stages": short_stages,
        "long_stages": long_stages,
        "short_run_s": round(short_s, 6),
        "long_run_s": round(long_s, 6),
        "marginal_s_per_stage": round(
            (long_s - short_s) / (long_stages - short_stages), 6
        ),
        "explored_after_short": explored_short,
        "explored_after_long": explored_long,
        "growth_is_flat": explored_long == explored_short,
    }
