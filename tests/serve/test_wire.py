"""Wire schema: validation strictness and cache-key semantics."""

import json

import pytest

from repro.serve.wire import (
    JobRecord,
    JobSpec,
    WireError,
    cache_key,
    canonical_json,
)


class TestJobSpecValidation:
    def test_minimal_spec(self):
        spec = JobSpec(verb="check", protocol="parity-arbiter")
        assert spec.resolved_n >= 2
        assert spec.budget == 100_000

    def test_unknown_verb_rejected(self):
        with pytest.raises(WireError, match="verb"):
            JobSpec(verb="explode", protocol="parity-arbiter")

    def test_unknown_protocol_rejected(self):
        with pytest.raises(WireError, match="unknown protocol"):
            JobSpec(verb="check", protocol="nonesuch")

    def test_attack_requires_analyzable(self):
        # benor's state space is unbounded; the adversary needs exact
        # valency analysis, so the spec is rejected at the wire.
        with pytest.raises(WireError, match="unbounded"):
            JobSpec(verb="attack", protocol="benor")

    def test_bad_inputs_rejected(self):
        with pytest.raises(WireError, match="inputs"):
            JobSpec(verb="map", protocol="parity-arbiter", inputs="01x")

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(WireError, match="max_seconds"):
            JobSpec(verb="check", protocol="parity-arbiter", max_seconds=0)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(WireError, match="unknown job fields"):
            JobSpec.from_dict(
                {"verb": "check", "protocol": "parity-arbiter", "bogus": 1}
            )

    def test_from_dict_requires_verb_and_protocol(self):
        with pytest.raises(WireError, match="verb"):
            JobSpec.from_dict({"protocol": "parity-arbiter"})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(WireError, match="JSON object"):
            JobSpec.from_dict(["check"])

    def test_roundtrip(self):
        spec = JobSpec(
            verb="map",
            protocol="parity-arbiter",
            n=3,
            inputs="010",
            budget=5_000,
            por=True,
        )
        assert JobSpec.from_dict(spec.to_dict()) == spec


class TestCacheKey:
    def test_deterministic(self):
        a = JobSpec(verb="check", protocol="parity-arbiter", n=3)
        b = JobSpec(verb="check", protocol="parity-arbiter", n=3)
        assert cache_key(a) == cache_key(b)

    def test_deadlines_do_not_enter_the_key(self):
        # Two queries differing only in patience are the same
        # computation; they must share one cached complete result.
        patient = JobSpec(verb="check", protocol="parity-arbiter", n=3)
        hurried = JobSpec(
            verb="check",
            protocol="parity-arbiter",
            n=3,
            max_seconds=0.5,
            max_memory_mb=64,
        )
        assert cache_key(patient) == cache_key(hurried)

    def test_default_n_resolves_to_explicit_n(self):
        from repro import registry

        default_n = registry.info("parity-arbiter").default_n
        implicit = JobSpec(verb="check", protocol="parity-arbiter")
        explicit = JobSpec(
            verb="check", protocol="parity-arbiter", n=default_n
        )
        assert cache_key(implicit) == cache_key(explicit)

    def test_verb_irrelevant_fields_ignored(self):
        # `stages` only matters to attack; check specs differing in it
        # are the same computation.
        a = JobSpec(verb="check", protocol="parity-arbiter", stages=5)
        b = JobSpec(verb="check", protocol="parity-arbiter", stages=50)
        assert cache_key(a) == cache_key(b)

    def test_relevant_fields_split_the_key(self):
        base = JobSpec(verb="check", protocol="parity-arbiter", n=3)
        assert cache_key(base) != cache_key(
            JobSpec(verb="check", protocol="parity-arbiter", n=3, budget=9)
        )
        assert cache_key(base) != cache_key(
            JobSpec(verb="map", protocol="parity-arbiter", n=3)
        )
        assert cache_key(base) != cache_key(
            JobSpec(verb="check", protocol="parity-arbiter", n=3, por=True)
        )


class TestJobRecord:
    def test_roundtrip(self):
        spec = JobSpec(verb="check", protocol="parity-arbiter", n=3)
        record = JobRecord(
            id="j1",
            spec=spec,
            key=cache_key(spec),
            state="running",
            submitted_unix=123.5,
            attempts=1,
            resumes=2,
        )
        record.partial = {"reason": "deadline", "nodes": 17}
        restored = JobRecord.from_dict(
            json.loads(canonical_json(record.to_dict()))
        )
        assert restored.id == record.id
        assert restored.spec == spec
        assert restored.state == "running"
        assert restored.attempts == 1
        assert restored.resumes == 2
        assert restored.partial == {"reason": "deadline", "nodes": 17}

    def test_bad_state_rejected(self):
        spec = JobSpec(verb="check", protocol="parity-arbiter")
        payload = JobRecord(
            id="j1", spec=spec, key=cache_key(spec)
        ).to_dict()
        payload["state"] = "zombie"
        with pytest.raises(WireError, match="state"):
            JobRecord.from_dict(payload)
