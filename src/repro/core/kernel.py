"""Batched transition kernel: table-driven frontier expansion.

:meth:`PackedCodec.apply_packed` is already memoized, but its memos are
keyed by rich objects — ``(buffer_id, Message)`` for deliveries,
``(buffer_id, sends_tuple)`` for send batches — so every edge of every
frontier node pays Python-object hashing, and every memo *miss* pays a
rich :class:`~repro.core.messages.MessageBuffer` construction (a dict
copy plus a frozenset hash).  Profiling benor/3@50k puts ~70% of serial
exploration inside exactly that: ``Message.__init__`` per edge,
``MessageBuffer.deliver``/``send_all`` on ~76%-miss memos, and 12.8M
``Message.__hash__`` calls.

This module replaces the per-edge rich-object work with dense integer
tables, lazily filled and permanently reusable:

* **Kernel event ids.**  Every distinct :class:`Event` the exploration
  enumerates is interned once; per event id the kernel keeps the
  stepping process's tuple position and the id of the message the event
  consumes (``-1`` for null deliveries — drop pseudo-events consume
  their unwrapped message like the real delivery does).
* **Step tables.**  Per event id, two flat ``array('q')`` columns
  indexed by state id: the successor state id and the interned
  *send-batch* id (``-1`` marks an unfilled slot, batch 0 is the empty
  batch).  A hit is two C-level gathers; a miss routes through
  :meth:`PackedCodec.kernel_step` — the same ``_steps`` memo the scalar
  path uses, so the scalar engine remains the fill oracle.
* **Buffer transition tables.**  Deliveries and send batches become
  dicts keyed by one composite int ``buffer_id * STRIDE + message_id``
  (resp. batch id) — no tuple allocation, no Message hashing on the hot
  path.
* **Buffer reps.**  To fill a buffer-transition miss *without*
  constructing a rich buffer, every buffer id gets a *rep*: a flat
  ``(message_id, count, ...)`` tuple sorted by the
  ``(destination, repr(value))`` key that
  :meth:`MessageBuffer.distinct_messages` sorts by.  A delivery is a
  count decrement, a send batch a sorted merge; the resulting rep is
  probed against a rep->buffer-id dict, and a *genuinely novel*
  multiset allocates the next codec buffer id as an unmaterialized
  placeholder — the rich :class:`MessageBuffer` (a dict plus a
  frozenset hash) is built only if something actually asks for it
  (:meth:`PackedCodec.buffer_at`, worker table sync, decoding).  The
  kernel keeps the rep index *complete* — every codec buffer id has a
  registered rep, rich-path interning routes through
  :meth:`intern_rich_buffer` — so a rep miss proves novelty and id
  allocation is byte-for-byte the sequence the scalar engine would
  have produced.  That is why census fingerprints are unchanged
  (pinned by ``tests/core/test_kernel.py``).
* **Per-buffer event rows.**  The enabled-event list of a buffer is a
  tuple of kernel event ids derived from its rep through the codec's
  :meth:`~PackedCodec.kernel_null_events` /
  :meth:`~PackedCodec.kernel_message_events` hooks — the exact order of
  :meth:`PackedCodec.events_for`, including the faulted codec's
  dead-process exclusions and lossy-channel drop edges.

Everything here is ``array``/``dict``/``tuple`` — no third-party
dependencies, per the core's rule.  The kernel is owned by one codec;
:meth:`snapshot_state`/:meth:`restore_state` ride inside checkpoint v2
so resumed runs reuse every filled table row instead of re-deriving it.
"""

from __future__ import annotations

import sys
from array import array
from typing import TYPE_CHECKING

from repro.core.messages import MessageBuffer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.events import Event
    from repro.core.packing import PackedCodec

__all__ = ["TransitionKernel", "materialize_checkpoint_buffers"]

#: Composite-key stride for the deliver/sends tables: the key is
#: ``buffer_id * _STRIDE + message_or_batch_id``.  2^20 distinct message
#: values / send batches per protocol is far beyond any finite instance
#: (benor/3 has 53 and 33); :meth:`_intern_message` guards the bound.
_STRIDE = 1 << 20


class TransitionKernel:
    """Dense transition tables over one :class:`PackedCodec`.

    The kernel never allocates ids of its own for states or buffers —
    those stay codec-owned, so scalar and kernel expansion interleave
    freely (the resume path and the parity tests rely on this).
    """

    def __init__(self, codec: "PackedCodec"):
        self.codec = codec
        codec.attach_kernel(self)
        # Kernel event interning + per-event-id metadata columns.
        self._events: list["Event"] = []
        self._event_ids: dict["Event", int] = {}
        self._ev_pos = array("q")
        self._ev_mid = array("q")
        # Message interning; the sort key mirrors distinct_messages().
        self._msgs: list = []
        self._msg_ids: dict = {}
        self._msg_keys: list[tuple[str, str]] = []
        self._mid_eids: list[tuple[int, ...] | None] = []
        # Send-batch interning; batch 0 is the empty batch.
        self._batches: list[tuple] = [()]
        self._batch_ids: dict = {(): 0}
        self._batch_deltas: list[tuple] = [()]
        # Step tables: per event id, state_id -> successor state id and
        # state_id -> send-batch id (-1 = unfilled).
        self._step_state: list[array | None] = []
        self._step_batch: list[array | None] = []
        # Buffer transitions, composite-int keyed.
        self._deliver: dict[int, int] = {}
        self._sends: dict[int, int] = {}
        # Buffer reps and the rep -> buffer id dedup index.
        self._reps: list[tuple[int, ...] | None] = []
        self._rep_ids: dict[tuple[int, ...], int] = {}
        # Per-buffer-id enabled-event rows (kernel event ids).
        self._ev_rows: list[tuple[int, ...] | None] = []
        self._null_eids: tuple[int, ...] | None = None
        #: Rows expanded through the kernel.
        self.batch_expansions = 0
        #: Edges whose step component was a dense-table gather hit.
        self.table_hits = 0
        #: Scalar-oracle consultations: step-table fills plus
        #: novel-buffer allocations (the work a table hit avoids).
        self.fallback_steps = 0
        self.reindex()

    # -- observability -----------------------------------------------------

    @property
    def table_bytes(self) -> int:
        """Resident bytes of the flat tables: the dense step columns
        plus the (shallow) dict footprint of the buffer-transition and
        rep indexes.  Rep tuples and interned rich objects are codec
        memory, not counted here."""
        total = sum(
            col.itemsize * len(col)
            for col in self._step_state
            if col is not None
        )
        total += sum(
            col.itemsize * len(col)
            for col in self._step_batch
            if col is not None
        )
        total += sys.getsizeof(self._deliver)
        total += sys.getsizeof(self._sends)
        total += sys.getsizeof(self._rep_ids)
        return total

    # -- interning ---------------------------------------------------------

    def event_at(self, eid: int) -> "Event":
        """The rich event interned at kernel event id *eid*."""
        return self._events[eid]

    def _intern_event(self, event: "Event") -> int:
        eid = self._event_ids.get(event)
        if eid is None:
            eid = len(self._events)
            self._event_ids[event] = eid
            self._events.append(event)
            self._ev_pos.append(self.codec.position_of(event.process))
            message = self.codec.protocol.consumed_message(event)
            self._ev_mid.append(
                -1 if message is None else self._intern_message(message)
            )
            self._step_state.append(None)
            self._step_batch.append(None)
        return eid

    def _intern_message(self, message) -> int:
        mid = self._msg_ids.get(message)
        if mid is None:
            mid = len(self._msgs)
            if mid >= _STRIDE:  # pragma: no cover - absurd instance
                raise RuntimeError(
                    f"kernel supports at most {_STRIDE} distinct "
                    "messages per protocol"
                )
            self._msg_ids[message] = mid
            self._msgs.append(message)
            self._msg_keys.append(
                (message.destination, repr(message.value))
            )
            self._mid_eids.append(None)
        return mid

    def _intern_batch(self, sends: tuple) -> int:
        batch = len(self._batches)
        if batch >= _STRIDE:  # pragma: no cover - absurd instance
            raise RuntimeError(
                f"kernel supports at most {_STRIDE} distinct send "
                "batches per protocol"
            )
        self._batch_ids[sends] = batch
        self._batches.append(sends)
        self._batch_deltas.append(self._batch_delta(sends))
        return batch

    def _batch_delta(self, sends: tuple) -> tuple:
        """*sends* as ``((message_id, count), ...)`` in rep-key order."""
        agg: dict[int, int] = {}
        for message in sends:
            mid = self._intern_message(message)
            agg[mid] = agg.get(mid, 0) + 1
        keys = self._msg_keys
        return tuple(sorted(agg.items(), key=lambda kv: keys[kv[0]]))

    # -- buffer reps -------------------------------------------------------

    def reindex(self) -> None:
        """(Re)build rep coverage for every buffer the codec holds.

        The lazy-allocation soundness invariant: *every* codec buffer id
        has a registered rep, so a rep-index miss proves the multiset is
        novel and the kernel may allocate the next id without consulting
        the rich index.  Called at attach time and whenever the codec's
        tables were replaced behind the kernel's back (a checkpoint
        restored without kernel tables)."""
        for bid in range(self.codec.interned_buffers):
            if bid >= len(self._reps) or self._reps[bid] is None:
                self._build_rep(bid)

    def _build_rep(self, bid: int) -> tuple[int, ...]:
        """Derive and register the rep of an already-rich buffer."""
        intern = self._intern_message
        pairs = [
            (intern(message), count)
            for message, count in self.codec.buffer_at(bid).items()
        ]
        keys = self._msg_keys
        pairs.sort(key=lambda kv: keys[kv[0]])
        rep = tuple(v for pair in pairs for v in pair)
        self._register_rep(bid, rep)
        return rep

    def _register_rep(self, bid: int, rep: tuple[int, ...]) -> None:
        reps = self._reps
        if bid >= len(reps):
            reps.extend([None] * (bid + 1 - len(reps)))
        reps[bid] = rep
        self._rep_ids[rep] = bid

    def _alloc_rep(self, rep: tuple[int, ...]) -> int:
        """Allocate the next codec buffer id for a novel multiset.

        No rich buffer is built: the codec slot holds ``None`` until
        :meth:`materialize_buffer` is asked for it.  Sound because the
        rep index is complete (:meth:`reindex`), so the caller's miss
        already proved no engine has seen this multiset — the id the
        scalar path would have allocated is exactly this one.
        """
        codec = self.codec
        bid = len(codec._buffers)
        codec._buffers.append(None)
        codec._buffer_events.append(None)
        self._register_rep(bid, rep)
        self.fallback_steps += 1
        return bid

    def intern_rich_buffer(self, buffer: MessageBuffer) -> int:
        """Rich-side interning, routed here by the codec on a rich-index
        miss: the multiset may already own an id as a placeholder.  If
        so, *buffer* fills the slot; otherwise it allocates the next id
        and registers its rep, keeping the index complete."""
        intern = self._intern_message
        pairs = [
            (intern(message), count) for message, count in buffer.items()
        ]
        keys = self._msg_keys
        pairs.sort(key=lambda kv: keys[kv[0]])
        rep = tuple(v for pair in pairs for v in pair)
        codec = self.codec
        bid = self._rep_ids.get(rep)
        if bid is None:
            bid = len(codec._buffers)
            codec._buffers.append(buffer)
            codec._buffer_events.append(None)
            self._register_rep(bid, rep)
        else:
            codec._buffers[bid] = buffer
        codec._buffer_ids[buffer] = bid
        return bid

    def materialize_buffer(self, bid: int) -> MessageBuffer:
        """Build the rich buffer for a lazily-allocated id and install
        it in the codec's tables (the deferred half of
        :meth:`_alloc_rep`; ids and reps are already fixed, so *when*
        this runs cannot change any allocation)."""
        rep = self._reps[bid]
        msgs = self._msgs
        counts = {}
        for i in range(0, len(rep), 2):
            counts[msgs[rep[i]]] = rep[i + 1]
        buffer = MessageBuffer._trusted(counts)
        codec = self.codec
        codec._buffers[bid] = buffer
        codec._buffer_ids[buffer] = bid
        return buffer

    def _merge_rep(self, rep: tuple[int, ...], delta: tuple) -> tuple:
        """*rep* plus a send-batch *delta*, order preserved."""
        keys = self._msg_keys
        out = list(rep)
        for mid, count in delta:
            key = keys[mid]
            for i in range(0, len(out), 2):
                omid = out[i]
                if omid == mid:
                    out[i + 1] += count
                    break
                if keys[omid] > key:
                    out[i:i] = (mid, count)
                    break
            else:
                out.append(mid)
                out.append(count)
        return tuple(out)

    # -- enabled-event rows ------------------------------------------------

    def _ev_row(self, bid: int) -> tuple[int, ...]:
        """The kernel event ids enabled for buffer *bid*, cached — the
        exact order of :meth:`PackedCodec.events_for`."""
        rows = self._ev_rows
        if bid >= len(rows):
            rows.extend([None] * (bid + 1 - len(rows)))
        row = rows[bid]
        if row is None:
            codec = self.codec
            if self._null_eids is None:
                self._null_eids = tuple(
                    self._intern_event(event)
                    for event in codec.kernel_null_events()
                )
            eids = list(self._null_eids)
            rep = self._reps[bid]
            mid_eids = self._mid_eids
            for i in range(0, len(rep), 2):
                mid = rep[i]
                block = mid_eids[mid]
                if block is None:
                    block = tuple(
                        self._intern_event(event)
                        for event in codec.kernel_message_events(
                            self._msgs[mid]
                        )
                    )
                    mid_eids[mid] = block
                eids.extend(block)
            row = tuple(eids)
            rows[bid] = row
        return row

    # -- fills (the scalar oracle) -----------------------------------------

    def _fill_step(self, eid: int, sid: int) -> tuple[int, int]:
        """Fill the step-table slot ``(eid, sid)`` through the codec's
        scalar step memo; returns ``(new_state_id, batch_id)``."""
        codec = self.codec
        new_sid, sends = codec.kernel_step(
            self._ev_pos[eid], sid, self._events[eid]
        )
        batch = self._batch_ids.get(sends)
        if batch is None:
            batch = self._intern_batch(sends)
        col = self._step_state[eid]
        needed = max(sid, new_sid) + 1
        if col is None or len(col) < needed:
            size = max(needed, 64, 0 if col is None else 2 * len(col))
            grown = array("q", [-1]) * size
            bgrown = array("q", [-1]) * size
            if col is not None:
                grown[: len(col)] = col
                bgrown[: len(col)] = self._step_batch[eid]
            self._step_state[eid] = col = grown
            self._step_batch[eid] = bgrown
        col[sid] = new_sid
        self._step_batch[eid][sid] = batch
        self.fallback_steps += 1
        return new_sid, batch

    def _fill_deliver(self, bid: int, mid: int, key: int) -> int:
        rep = self._reps[bid]
        for i in range(0, len(rep), 2):
            if rep[i] == mid:
                if rep[i + 1] > 1:
                    new_rep = rep[:i + 1] + (rep[i + 1] - 1,) + rep[i + 2:]
                else:
                    new_rep = rep[:i] + rep[i + 2:]
                break
        else:  # pragma: no cover - event rows derive from the rep
            from repro.core.errors import InvalidEvent

            raise InvalidEvent(
                f"{self._msgs[mid]!r} is not in the message buffer"
            )
        delivered = self._rep_ids.get(new_rep)
        if delivered is None:
            delivered = self._alloc_rep(new_rep)
        self._deliver[key] = delivered
        return delivered

    def _fill_sends(self, bid: int, batch: int, key: int) -> int:
        new_rep = self._merge_rep(
            self._reps[bid], self._batch_deltas[batch]
        )
        sent = self._rep_ids.get(new_rep)
        if sent is None:
            sent = self._alloc_rep(new_rep)
        self._sends[key] = sent
        return sent

    # -- expansion ---------------------------------------------------------

    def expand_row(
        self, row: tuple[int, ...]
    ) -> list[tuple[int, tuple[int, ...] | None]]:
        """All ``(kernel_event_id, successor)`` edges of a packed row,
        in canonical enabled-event order.

        A self-loop — a null delivery that leaves the state unchanged
        and sends nothing — yields ``None`` as its successor: the caller
        already holds the row, and the sentinel lets the merge skip both
        the tuple construction and the index probe for what is, on
        quiescent frontiers, a large fraction of all edges."""
        bid = row[-1]
        rows = self._ev_rows
        eids = rows[bid] if bid < len(rows) else None
        if eids is None:
            eids = self._ev_row(bid)
        self.batch_expansions += 1
        ev_pos = self._ev_pos
        ev_mid = self._ev_mid
        step_state = self._step_state
        step_batch = self._step_batch
        deliver_get = self._deliver.get
        sends_get = self._sends.get
        base = list(row)
        out = []
        append = out.append
        hits = 0
        for eid in eids:
            pos = ev_pos[eid]
            sid = row[pos]
            col = step_state[eid]
            new_sid = (
                col[sid] if col is not None and sid < len(col) else -1
            )
            if new_sid < 0:
                new_sid, batch = self._fill_step(eid, sid)
            else:
                batch = step_batch[eid][sid]
                hits += 1
            mid = ev_mid[eid]
            if mid < 0:
                if not batch:
                    if new_sid == sid:
                        append((eid, None))
                        continue
                    b = bid
                else:
                    key = bid * _STRIDE + batch
                    b = sends_get(key)
                    if b is None:
                        b = self._fill_sends(bid, batch, key)
            else:
                key = bid * _STRIDE + mid
                b = deliver_get(key)
                if b is None:
                    b = self._fill_deliver(bid, mid, key)
                if batch:
                    key = b * _STRIDE + batch
                    sent = sends_get(key)
                    if sent is None:
                        sent = self._fill_sends(b, batch, key)
                    b = sent
            successor = base.copy()
            successor[pos] = new_sid
            successor[-1] = b
            append((eid, tuple(successor)))
        self.table_hits += hits
        return out

    def expand_row_deltas(
        self, row: tuple[int, ...]
    ) -> list[tuple[int, int, int, int]]:
        """Edges of a packed row as component deltas: ``(kernel_event_id,
        new_state_id, post_delivery_buffer_id, final_buffer_id)`` with
        ``-1`` for the null-delivery intermediate.  The parallel
        workers' wire shape — includes the intermediate buffer so the
        parent can mirror the scalar engine's id-allocation order."""
        bid = row[-1]
        rows = self._ev_rows
        eids = rows[bid] if bid < len(rows) else None
        if eids is None:
            eids = self._ev_row(bid)
        self.batch_expansions += 1
        ev_pos = self._ev_pos
        ev_mid = self._ev_mid
        step_state = self._step_state
        step_batch = self._step_batch
        deliver = self._deliver
        sends = self._sends
        out = []
        hits = 0
        for eid in eids:
            sid = row[ev_pos[eid]]
            col = step_state[eid]
            new_sid = (
                col[sid] if col is not None and sid < len(col) else -1
            )
            if new_sid < 0:
                new_sid, batch = self._fill_step(eid, sid)
            else:
                batch = step_batch[eid][sid]
                hits += 1
            b = bid
            delivered = -1
            mid = ev_mid[eid]
            if mid >= 0:
                key = b * _STRIDE + mid
                delivered = deliver.get(key, -1)
                if delivered < 0:
                    delivered = self._fill_deliver(b, mid, key)
                b = delivered
            if batch:
                key = b * _STRIDE + batch
                sent = sends.get(key, -1)
                if sent < 0:
                    sent = self._fill_sends(b, batch, key)
                b = sent
            out.append((eid, new_sid, delivered, b))
        self.table_hits += hits
        return out

    # -- checkpointing -----------------------------------------------------

    def snapshot_state(self) -> dict[str, object]:
        """Picklable snapshot: interning lists, the dense step columns
        as raw bytes, the int-keyed transition tables, and the buffer
        reps (a placeholder slot in the codec snapshot has *only* its
        rep as identity, so reps are load-bearing, not a cache).
        Per-buffer event rows rebuild lazily from the reps."""
        return {
            "reps": list(self._reps),
            "events": list(self._events),
            "ev_pos": self._ev_pos.tobytes(),
            "ev_mid": self._ev_mid.tobytes(),
            "msgs": list(self._msgs),
            "batches": list(self._batches),
            "step_state": [
                None if col is None else col.tobytes()
                for col in self._step_state
            ],
            "step_batch": [
                None if col is None else col.tobytes()
                for col in self._step_batch
            ],
            "deliver": dict(self._deliver),
            "sends": dict(self._sends),
            "counters": (
                self.batch_expansions,
                self.table_hits,
                self.fallback_steps,
            ),
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Install a :meth:`snapshot_state` payload (codec restored
        first — message/event identity is content-based, so the rebuilt
        id maps land on the same ids)."""
        self._events = list(state["events"])
        self._event_ids = {e: i for i, e in enumerate(self._events)}
        self._ev_pos = array("q")
        self._ev_pos.frombytes(state["ev_pos"])
        self._ev_mid = array("q")
        self._ev_mid.frombytes(state["ev_mid"])
        self._msgs = list(state["msgs"])
        self._msg_ids = {m: i for i, m in enumerate(self._msgs)}
        self._msg_keys = [
            (m.destination, repr(m.value)) for m in self._msgs
        ]
        self._mid_eids = [None] * len(self._msgs)
        self._batches = list(state["batches"])
        self._batch_ids = {b: i for i, b in enumerate(self._batches)}
        self._batch_deltas = [
            self._batch_delta(batch) for batch in self._batches
        ]
        self._step_state = []
        for blob in state["step_state"]:
            if blob is None:
                self._step_state.append(None)
            else:
                col = array("q")
                col.frombytes(blob)
                self._step_state.append(col)
        self._step_batch = []
        for blob in state["step_batch"]:
            if blob is None:
                self._step_batch.append(None)
            else:
                col = array("q")
                col.frombytes(blob)
                self._step_batch.append(col)
        self._deliver = dict(state["deliver"])
        self._sends = dict(state["sends"])
        self._reps = list(state["reps"])
        self._rep_ids = {
            rep: bid
            for bid, rep in enumerate(self._reps)
            if rep is not None
        }
        self._ev_rows = []
        self._null_eids = None
        counters = state["counters"]
        self.batch_expansions = int(counters[0])
        self.table_hits = int(counters[1])
        self.fallback_steps = int(counters[2])
        # Codec and kernel snapshot atomically, so coverage should
        # already be complete; reindex is a cheap no-op then, and
        # restores the invariant if the codec grew in between.
        self.reindex()


def materialize_checkpoint_buffers(codec, kernel_state) -> None:
    """Fill a restored codec's placeholder buffer slots from a kernel
    snapshot *without* instantiating a kernel — the path for resuming a
    kernel-written checkpoint with the kernel disabled.  Ids are fixed
    by the snapshot; this only swaps ``None`` slots for rich buffers."""
    msgs = kernel_state["msgs"]
    reps = kernel_state["reps"]
    buffers = codec._buffers
    buffer_ids = codec._buffer_ids
    for bid, buffer in enumerate(buffers):
        if buffer is None:
            rep = reps[bid]
            counts = {}
            for i in range(0, len(rep), 2):
                counts[msgs[rep[i]]] = rep[i + 1]
            buffer = MessageBuffer._trusted(counts)
            buffers[bid] = buffer
            buffer_ids[buffer] = bid
