"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_catalog(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "parity-arbiter" in out
        assert "description" in out


class TestCheck:
    def test_safe_protocol_exits_zero(self, capsys):
        assert main(["check", "arbiter"]) == 0
        out = capsys.readouterr().out
        assert "partially correct" in out
        assert "bivalent" in out

    def test_unsafe_protocol_exits_one(self, capsys):
        assert main(["check", "quorum-vote"]) == 1
        out = capsys.readouterr().out
        assert "NOT partially correct" in out

    def test_unanalyzable_uses_simulation_sweep(self, capsys):
        assert main(["check", "benor"]) == 0
        out = capsys.readouterr().out
        assert "simulation sweep" in out
        assert "agreement=True" in out


class TestAttack:
    def test_staged_attack(self, capsys):
        assert main(["attack", "parity-arbiter", "--stages", "6"]) == 0
        out = capsys.readouterr().out
        assert "bivalence-preserving" in out
        assert "verified by replay: True" in out

    def test_fault_attack(self, capsys):
        assert main(["attack", "2pc", "--stages", "3"]) == 0
        out = capsys.readouterr().out
        assert "fault" in out

    def test_trace_flag(self, capsys):
        assert (
            main(
                ["attack", "arbiter", "--stages", "3", "--trace", "4"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "receives" in out

    def test_unanalyzable_refused(self, capsys):
        assert main(["attack", "benor"]) == 2
        err = capsys.readouterr().err
        assert "unbounded" in err

    def test_degenerate_protocol_reports_stuck(self, capsys):
        assert main(["attack", "always-zero"]) == 1
        err = capsys.readouterr().err
        assert "stuck" in err


class TestSimulate:
    def test_fault_free(self, capsys):
        assert main(["simulate", "wait-for-all", "--inputs", "101"]) == 0
        out = capsys.readouterr().out
        assert "decided" in out
        assert "agreement: holds" in out

    def test_crash_spec(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "wait-for-all",
                    "--inputs",
                    "111",
                    "--crash",
                    "p0@0",
                    "--max-steps",
                    "300",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "none" in out  # nobody decides

    def test_random_scheduler(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "arbiter",
                    "--scheduler",
                    "random",
                    "--seed",
                    "4",
                ]
            )
            == 0
        )

    def test_bad_inputs_length(self):
        with pytest.raises(SystemExit):
            main(["simulate", "arbiter", "--inputs", "10101"])


class TestMap:
    def test_map_summary(self, capsys):
        assert main(["map", "arbiter", "--inputs", "001"]) == 0
        out = capsys.readouterr().out
        assert "critical steps" in out

    def test_hypercube_flag(self, capsys):
        assert (
            main(["map", "arbiter", "--inputs", "001", "--hypercube"])
            == 0
        )
        out = capsys.readouterr().out
        assert "consecutive rows are adjacent" in out

    def test_dot_export(self, tmp_path, capsys):
        target = tmp_path / "graph.dot"
        assert (
            main(
                ["map", "arbiter", "--inputs", "001", "--dot", str(target)]
            )
            == 0
        )
        assert target.read_text().startswith("digraph")


class TestStatsFlag:
    def test_check_stats(self, capsys):
        assert main(["check", "arbiter", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "engine counters:" in out
        assert "interned" in out
        assert "cache_hits" in out

    def test_stats_surface_cache_and_packed_counters(self, capsys):
        assert main(["check", "arbiter", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "transition_hits" in out
        assert "transition_misses" in out
        assert "packed_step_hits" in out
        assert "packed_step_misses" in out
        assert "workers" in out

    def test_map_stats(self, capsys):
        assert main(["map", "arbiter", "--inputs", "001", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "engine counters:" in out

    def test_attack_stats(self, capsys):
        assert (
            main(
                ["attack", "parity-arbiter", "--stages", "3", "--stats"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "engine counters:" in out
        assert "explore_time_s" in out


class TestWorkersFlag:
    def test_check_with_workers(self, capsys):
        assert main(["check", "arbiter", "--workers", "2", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "partially correct" in out
        assert "workers" in out

    def test_map_with_workers_matches_serial(self, capsys):
        assert main(["map", "parity-arbiter", "--inputs", "001"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(
                [
                    "map",
                    "parity-arbiter",
                    "--inputs",
                    "001",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_attack_with_workers(self, capsys):
        assert (
            main(
                [
                    "attack",
                    "parity-arbiter",
                    "--stages",
                    "3",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "verified by replay: True" in out


class TestExperimentsPassthrough:
    def test_runs_single_experiment(self, capsys):
        assert main(["experiments", "E8"]) == 0
        out = capsys.readouterr().out
        assert "FloodSet" in out
