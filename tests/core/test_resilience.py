"""Budget guards and graceful degradation of the exploration engine."""

import os

import pytest

from repro.core.checkpoint import load_checkpoint
from repro.core.exploration import GlobalConfigurationGraph
from repro.core.resilience import (
    BudgetGuard,
    CheckpointConfig,
    PartialResult,
    ResilienceConfig,
)
from repro.protocols import ParityArbiterProcess, make_protocol


@pytest.fixture(scope="module")
def protocol():
    return make_protocol(ParityArbiterProcess, 3)


def _root(protocol):
    return protocol.initial_configuration([0, 0, 1])


class TestBudgetGuard:
    def test_no_limits_never_exceeds(self):
        guard = BudgetGuard(ResilienceConfig())
        assert guard.exceeded() is None

    def test_wall_clock_limit(self):
        guard = BudgetGuard(ResilienceConfig(wall_clock_limit_s=0.0))
        assert guard.exceeded() == "wall-clock"

    def test_memory_limit(self):
        # Any live Python process has RSS far above 1 MiB.
        guard = BudgetGuard(ResilienceConfig(memory_limit_mb=1.0))
        assert guard.exceeded() == "memory"
        assert BudgetGuard.peak_rss_mb() > 1.0

    def test_generous_limits_pass(self):
        guard = BudgetGuard(
            ResilienceConfig(
                wall_clock_limit_s=3600.0, memory_limit_mb=1 << 20
            )
        )
        assert guard.exceeded() is None


class TestGracefulStop:
    @pytest.mark.parametrize("packed", [True, False], ids=["packed", "dict"])
    def test_wall_clock_stop_reports_partial_result(
        self, protocol, packed
    ):
        graph = GlobalConfigurationGraph(
            protocol,
            packed=packed,
            resilience=ResilienceConfig(
                wall_clock_limit_s=0.0, check_interval_nodes=1
            ),
        )
        result = graph.explore(_root(protocol), max_configurations=100_000)
        assert not result.complete
        assert graph.stats.budget_stops == 1
        partial = graph.last_partial
        assert isinstance(partial, PartialResult)
        assert partial.reason == "wall-clock"
        assert partial.nodes == len(graph)
        assert partial.expanded + partial.frontier == partial.nodes
        assert "wall-clock" in partial.summary()

    def test_stop_writes_final_checkpoint(self, protocol, tmp_path):
        path = str(tmp_path / "budget.ckpt")
        graph = GlobalConfigurationGraph(
            protocol,
            resilience=ResilienceConfig(wall_clock_limit_s=0.0),
            checkpoint=CheckpointConfig(path=path),
        )
        graph.explore(_root(protocol), max_configurations=100_000)
        assert os.path.exists(path)
        assert graph.last_partial.checkpoint_path == path
        # The snapshot is immediately resumable.
        resumed = load_checkpoint(path, protocol)
        assert len(resumed) == graph.last_partial.nodes

    def test_partial_graph_stays_queryable_and_resumable(self, protocol):
        graph = GlobalConfigurationGraph(
            protocol,
            resilience=ResilienceConfig(wall_clock_limit_s=0.0),
        )
        graph.explore(_root(protocol), max_configurations=100_000)
        assert not graph.complete
        assert graph.frontier_ids()
        # Lifting the ceiling on the same engine finishes the job.
        graph.resilience = ResilienceConfig()
        result = graph.explore(_root(protocol), max_configurations=100_000)
        assert result.complete
        assert graph.complete

    def test_as_dict_round_trips(self):
        partial = PartialResult(
            reason="memory",
            nodes=10,
            expanded=4,
            frontier=6,
            elapsed_s=1.25,
            checkpoint_path=None,
        )
        row = partial.as_dict()
        assert row["reason"] == "memory"
        assert row["frontier"] == 6
        assert "no checkpoint configured" in partial.summary()


class TestRequestStop:
    """Cooperative external stop: the serve daemon's drain/deadline hook."""

    @pytest.mark.parametrize("packed", [True, False], ids=["packed", "dict"])
    def test_pre_armed_stop_halts_immediately(self, protocol, packed):
        graph = GlobalConfigurationGraph(protocol, packed=packed)
        graph.request_stop("drain")
        result = graph.explore(_root(protocol), max_configurations=100_000)
        assert not result.complete
        assert graph.stats.stop_requests == 1
        assert graph.last_partial.reason == "drain"

    def test_stop_is_sticky_until_cleared(self, protocol):
        graph = GlobalConfigurationGraph(protocol)
        graph.request_stop("deadline")
        graph.explore(_root(protocol), max_configurations=100_000)
        nodes_after_stop = len(graph)
        # Still armed: a second call must not make progress.
        graph.explore(_root(protocol), max_configurations=100_000)
        assert len(graph) == nodes_after_stop
        assert graph.stats.stop_requests == 2
        assert graph.stop_requested == "deadline"
        graph.clear_stop()
        result = graph.explore(_root(protocol), max_configurations=100_000)
        assert result.complete

    def test_stop_writes_final_checkpoint(self, protocol, tmp_path):
        path = os.path.join(tmp_path, "stop.ckpt")
        graph = GlobalConfigurationGraph(
            protocol,
            checkpoint=CheckpointConfig(path=path, every_seconds=3600.0),
        )
        graph.request_stop("drain")
        graph.explore(_root(protocol), max_configurations=100_000)
        assert os.path.exists(path)
        resumed = load_checkpoint(path, protocol)
        resumed.clear_stop()
        result = resumed.explore(_root(protocol), max_configurations=100_000)
        assert result.complete

        clean = GlobalConfigurationGraph(protocol)
        clean.explore(_root(protocol), max_configurations=100_000)
        assert resumed.fingerprint() == clean.fingerprint()
