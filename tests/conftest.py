"""Shared fixtures: session-scoped protocol instances and analyzers.

Valency analysis amortizes across tests through shared
:class:`ValencyAnalyzer` caches, so the suite stays fast even though
many tests ask exhaustive questions.
"""

from __future__ import annotations

import pytest

from repro.core.valency import ValencyAnalyzer
from repro.protocols import (
    ArbiterProcess,
    ParityArbiterProcess,
    ThreePhaseCommitProcess,
    TwoPhaseCommitProcess,
    WaitForAllProcess,
    make_protocol,
)


@pytest.fixture(scope="session")
def arbiter3():
    return make_protocol(ArbiterProcess, 3)


@pytest.fixture(scope="session")
def parity_arbiter3():
    return make_protocol(ParityArbiterProcess, 3)


@pytest.fixture(scope="session")
def wait_for_all3():
    return make_protocol(WaitForAllProcess, 3)


@pytest.fixture(scope="session")
def two_pc3():
    return make_protocol(TwoPhaseCommitProcess, 3)


@pytest.fixture(scope="session")
def three_pc3():
    return make_protocol(ThreePhaseCommitProcess, 3)


@pytest.fixture(scope="session")
def arbiter3_analyzer(arbiter3):
    return ValencyAnalyzer(arbiter3)


@pytest.fixture(scope="session")
def parity_arbiter3_analyzer(parity_arbiter3):
    return ValencyAnalyzer(parity_arbiter3)


@pytest.fixture(scope="session")
def wait_for_all3_analyzer(wait_for_all3):
    return ValencyAnalyzer(wait_for_all3)
