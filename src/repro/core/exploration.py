"""Reachable-configuration graphs.

The proof machinery of the paper quantifies over *accessible*
configurations — those reachable from some initial configuration by a
schedule.  For finite protocol instances the reachable set is a finite
directed graph whose edges are events; this module builds that graph
explicitly, with memoization on configuration identity and an explicit
budget so unbounded protocols degrade to a truthful partial answer
instead of hanging.

The graph is the substrate for exact valency computation
(:mod:`repro.core.valency`): valency is reverse reachability from
decision configurations.
"""

from __future__ import annotations

import atexit
import functools
import hashlib
import logging
import time
import warnings
import weakref
from array import array
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.core.configuration import Configuration
from repro.core.errors import ExplorationLimitExceeded, WorkerPoolError
from repro.core.events import Event
from repro.core.protocol import Protocol
from repro.core.resilience import (
    BudgetGuard,
    ChaosConfig,
    CheckpointConfig,
    PartialResult,
    ResilienceConfig,
)
from repro.core.store import GraphStore, StoreConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.reduction import ReductionPolicy

__all__ = [
    "ConfigurationGraph",
    "GlobalConfigurationGraph",
    "GraphStats",
    "GrowthResult",
    "TransitionCache",
    "explore",
    "reachable_set",
]

#: Default exploration budget (number of distinct configurations).
DEFAULT_MAX_CONFIGURATIONS = 200_000

logger = logging.getLogger("repro.exploration")


class TransitionCache:
    """Memoized ``(configuration, event) -> successor`` application.

    The valency analyzer and the adversary explore heavily overlapping
    graphs (the full accessible set, then one event-filtered 𝒞 per
    stage, then each ``e``-successor's own reachable set).  Since the
    model is deterministic, every transition computed once can be
    reused across all of them; sharing one cache turns re-exploration
    into dictionary lookups.

    The cache belongs to exactly one protocol — mixing protocols would
    conflate transition functions — which :meth:`apply` asserts.
    """

    def __init__(self, protocol: "Protocol"):
        self.protocol = protocol
        self._transitions: dict[
            tuple[Configuration, Event], Configuration
        ] = {}
        #: Optional :class:`~repro.core.packing.PackedCodec` to route
        #: misses through (set by a packed-mode engine sharing this
        #: cache): fresh applications then reuse the packed memos and
        #: the decode dedup instead of recomputing rich transitions.
        self.codec = None
        #: Lookups answered from the memo / computed fresh.
        self.hits = 0
        self.misses = 0

    def apply(
        self, protocol: "Protocol", configuration: Configuration,
        event: Event,
    ) -> Configuration:
        """``e(C)``, memoized."""
        if protocol is not self.protocol:
            raise ValueError(
                "TransitionCache is bound to a different protocol"
            )
        key = (configuration, event)
        successor = self._transitions.get(key)
        if successor is None:
            self.misses += 1
            if self.codec is not None:
                successor = self.codec.apply_rich(configuration, event)
            else:
                successor = protocol.apply_event(configuration, event)
            self._transitions[key] = successor
        else:
            self.hits += 1
        return successor

    def __len__(self) -> int:
        return len(self._transitions)


@dataclass
class ConfigurationGraph:
    """The explored portion of the configuration graph rooted at ``root``.

    Attributes
    ----------
    root:
        The configuration exploration started from.
    configurations:
        Every explored configuration, indexed by node id.  ``root`` is
        node 0.
    successors:
        ``successors[i]`` lists ``(event, j)`` pairs: applying ``event``
        to configuration ``i`` yields configuration ``j``.  Populated
        only for *expanded* nodes.
    predecessors:
        Reverse adjacency (node ids only), for reverse reachability.
    frontier:
        Node ids that were discovered but never expanded because the
        budget ran out.  Empty iff :attr:`complete`.
    complete:
        ``True`` iff the reachable set was exhausted — every discovered
        configuration was expanded.  Only then are "cannot reach"
        judgements sound.
    """

    root: Configuration
    configurations: list[Configuration] = field(default_factory=list)
    successors: list[list[tuple[Event, int]]] = field(default_factory=list)
    predecessors: list[list[int]] = field(default_factory=list)
    frontier: set[int] = field(default_factory=set)
    complete: bool = True
    _index: dict[Configuration, int] = field(default_factory=dict)

    def node_id(self, configuration: Configuration) -> int:
        """The id of *configuration* in this graph.

        Raises
        ------
        KeyError
            If the configuration was not discovered during exploration.
        """
        return self._index[configuration]

    def __contains__(self, configuration: Configuration) -> bool:
        return configuration in self._index

    def __len__(self) -> int:
        return len(self.configurations)

    def nodes_reaching(self, targets: set[int]) -> set[int]:
        """All node ids with a path into *targets* (including targets).

        This is reverse BFS over :attr:`predecessors` — the primitive
        underlying valency: a configuration is (say) 0-valent iff it
        reaches a 0-decision configuration and no 1-decision one.
        """
        seen = set(targets)
        queue = deque(targets)
        while queue:
            node = queue.popleft()
            for predecessor in self.predecessors[node]:
                if predecessor not in seen:
                    seen.add(predecessor)
                    queue.append(predecessor)
        return seen

    def decision_nodes(self, value: int) -> set[int]:
        """Node ids of configurations having decision value *value*."""
        return {
            i
            for i, configuration in enumerate(self.configurations)
            if value in configuration.decision_values()
        }

    def iter_edges(self) -> Iterator[tuple[int, Event, int]]:
        """Iterate over all edges as ``(source, event, target)``."""
        for source, out in enumerate(self.successors):
            for event, target in out:
                yield source, event, target


def explore(
    protocol: Protocol,
    root: Configuration,
    max_configurations: int = DEFAULT_MAX_CONFIGURATIONS,
    event_filter: Callable[[Configuration, Event], bool] | None = None,
    include_null: bool = True,
    cache: TransitionCache | None = None,
) -> ConfigurationGraph:
    """Breadth-first exploration of the configuration graph from *root*.

    Parameters
    ----------
    protocol:
        Supplies the step semantics and the enabled-event enumeration.
    root:
        Starting configuration (need not be initial).
    max_configurations:
        Budget on distinct configurations.  When exceeded, the result has
        ``complete=False`` and the unexpanded nodes in ``frontier``; no
        exception is raised (callers needing exactness check
        ``complete``).
    event_filter:
        Optional predicate; events for which it returns ``False`` are not
        taken.  Lemma 3's set 𝒞 ("reachable from C without applying e")
        is exploration with the filter ``event != e``.
    include_null:
        Whether null-delivery events are explored.  The model always
        allows them; protocols designed so that null deliveries are
        no-ops keep the graph small either way, but excluding them is
        useful for delivery-only analyses.
    cache:
        Optional shared :class:`TransitionCache`; explorations with
        overlapping state spaces (the valency analyzer, the adversary's
        per-stage 𝒞 searches) reuse each other's computed transitions.
    """
    graph = ConfigurationGraph(root=root)
    graph.configurations.append(root)
    graph.successors.append([])
    graph.predecessors.append([])
    graph._index[root] = 0

    queue: deque[int] = deque([0])
    expanded: set[int] = set()

    while queue:
        node = queue.popleft()
        if node in expanded:
            continue
        expanded.add(node)
        configuration = graph.configurations[node]
        for event in protocol.enabled_events(
            configuration, include_null=include_null
        ):
            if event_filter is not None and not event_filter(
                configuration, event
            ):
                continue
            if cache is not None:
                successor = cache.apply(protocol, configuration, event)
            else:
                successor = protocol.apply_event(configuration, event)
            existing = graph._index.get(successor)
            if existing is None:
                if len(graph.configurations) >= max_configurations:
                    # Budget exhausted: record the truthful partial result.
                    graph.complete = False
                    graph.frontier = {
                        n
                        for n in range(len(graph.configurations))
                        if n not in expanded
                    }
                    # The current node is only partially expanded.
                    graph.frontier.add(node)
                    return graph
                existing = len(graph.configurations)
                graph.configurations.append(successor)
                graph.successors.append([])
                graph.predecessors.append([])
                graph._index[successor] = existing
                queue.append(existing)
            graph.successors[node].append((event, existing))
            if node not in graph.predecessors[existing]:
                graph.predecessors[existing].append(node)

    graph.complete = True
    graph.frontier = set()
    return graph


def reachable_set(
    protocol: Protocol,
    root: Configuration,
    max_configurations: int = DEFAULT_MAX_CONFIGURATIONS,
    require_complete: bool = False,
) -> set[Configuration]:
    """The set of configurations reachable from *root*.

    With ``require_complete=True`` an incomplete exploration raises
    :class:`ExplorationLimitExceeded` instead of returning a partial set.
    """
    graph = explore(protocol, root, max_configurations=max_configurations)
    if require_complete and not graph.complete:
        raise ExplorationLimitExceeded(
            f"reachable set from {root!r} exceeds "
            f"{max_configurations} configurations"
        )
    return set(graph.configurations)


# ---------------------------------------------------------------------------
# The shared incremental engine
# ---------------------------------------------------------------------------


@dataclass
class GraphStats:
    """Observability counters for one :class:`GlobalConfigurationGraph`.

    Every counter is cumulative over the engine's lifetime; wall-clock
    phases are in seconds.  Surfaced by
    :func:`repro.analysis.stats.format_counters` and the CLI ``--stats``
    flag, and recorded in the ``BENCH_core_ops.json`` artifact.
    """

    #: Distinct configurations interned to dense ids.
    interned: int = 0
    #: Nodes whose full successor set has been computed.
    expansions: int = 0
    #: Valency queries answered without touching the graph.
    cache_hits: int = 0
    #: Valency queries that required growing / reclassifying the graph.
    cache_misses: int = 0
    #: Calls to :meth:`GlobalConfigurationGraph.explore`.
    explore_calls: int = 0
    #: Reverse-reachability sweeps (:meth:`reaching_mask`).
    reach_calls: int = 0
    #: Rebuilds of the CSR reverse-adjacency index.
    csr_rebuilds: int = 0
    #: Rich-level :class:`TransitionCache` lookups answered from memo /
    #: computed fresh (mirrored from the engine's shared cache).
    transition_hits: int = 0
    transition_misses: int = 0
    #: Packed step applications answered from the codec memo / computed
    #: fresh through the rich transition function (packed mode only).
    packed_step_hits: int = 0
    packed_step_misses: int = 0
    #: Batched-kernel counters (packed engine with the kernel enabled):
    #: rows expanded through the kernel, edges whose step component was
    #: a dense-table gather hit, scalar-oracle fills (step-table misses
    #: plus rich-buffer materializations), and resident bytes of the
    #: flat transition tables.
    kernel_batch_expansions: int = 0
    kernel_table_hits: int = 0
    kernel_fallback_steps: int = 0
    kernel_table_bytes: int = 0
    #: Configured worker-pool size (0/1 = serial).
    workers: int = 0
    #: Frontier batches shipped to the worker crew, the total / largest
    #: node count across them, and the work-stealing chunks the crew
    #: completed (batch-size and stealing observability).
    worker_batches: int = 0
    worker_batch_nodes: int = 0
    worker_max_batch: int = 0
    worker_chunks: int = 0
    #: Flat-buffer store gauges: spill events (RAM -> mmap migrations)
    #: and live bytes in the arena / edge CSR at last measurement.
    store_spills: int = 0
    arena_bytes: int = 0
    edge_bytes: int = 0
    #: BFS levels processed by the packed engine (cumulative).
    explore_levels: int = 0
    #: Recovery events: batch dispatches lost to a timeout (covers both
    #: hangs and SIGKILLed workers — a dead worker's batch never
    #: completes), non-timeout pool faults, re-dispatches after backoff,
    #: pool teardown+rebuilds, and batches expanded inline after the
    #: pool was given up on.
    worker_timeouts: int = 0
    worker_faults: int = 0
    worker_retries: int = 0
    pool_rebuilds: int = 0
    serial_fallbacks: int = 0
    #: 1 once repeated failures disabled the pool for the rest of the run.
    pool_disabled: int = 0
    #: Budget-guard stops (wall-clock / memory ceilings).
    budget_stops: int = 0
    #: Cooperative stops honored via :meth:`GlobalConfigurationGraph.
    #: request_stop` (service drains, external deadlines).
    stop_requests: int = 0
    #: Checkpoints written, wall time spent writing them, and the node
    #: count restored from a checkpoint at resume (0 = cold start).
    checkpoints_written: int = 0
    checkpoint_time: float = 0.0
    resumed_nodes: int = 0
    #: Wall time spent growing the graph.
    explore_time: float = 0.0
    #: Wall time spent in reverse reachability (incl. CSR rebuilds).
    reach_time: float = 0.0
    #: Wall time spent classifying valencies (set by the analyzer).
    classify_time: float = 0.0
    #: Wall time spent encoding rich configurations to packed tuples.
    encode_time: float = 0.0
    #: Aggregate busy time reported by workers (sum over processes).
    worker_busy_time: float = 0.0
    #: Wall time the parent spent blocked on worker batches; worker
    #: utilization = worker_busy_time / (parallel_time * workers).
    parallel_time: float = 0.0
    #: Reduction counters (see :mod:`repro.core.reduction`): edges
    #: pruned by the ample reducer, nodes where a visible successor (or
    #: a replay violation) forced full expansion, sampled Lemma-1
    #: diamond replays and the violations among them, packed tuples
    #: rerouted to a different orbit representative by the symmetry
    #: quotient, and 1 when a declared symmetry failed validation and
    #: the engine fell back to the identity quotient.
    por_pruned: int = 0
    ample_fallbacks: int = 0
    replay_checks: int = 0
    replay_violations: int = 0
    sym_canonical_hits: int = 0
    sym_fallbacks: int = 0
    #: Distinct packed tuples the quotient actually canonicalized
    #: (memo misses) and the packed images it materialized doing so —
    #: the refine fast path builds at most one image per miss, the
    #: brute oracle n!-1.  Mirrored from the quotient after explore().
    sym_canonical_misses: int = 0
    sym_leaf_images: int = 0
    #: Frontier levels expanded inline because the batch was too small
    #: to occupy the pool (see ``min_batch_per_worker``).
    small_batch_levels: int = 0
    #: Fault-engine counters, mirrored from a
    #: :class:`repro.faults.model.FaultedProtocol` when exploration
    #: runs under a fault plan (all zero otherwise).
    fault_crashes: int = 0
    fault_recoveries: int = 0
    fault_inbox_wipes: int = 0
    fault_omission_drops: int = 0
    fault_duplications: int = 0
    fault_partition_blocks: int = 0
    fault_drop_edges: int = 0
    fault_send_blocks: int = 0
    fault_dead_exclusions: int = 0

    @property
    def worker_utilization(self) -> float | None:
        """Fraction of the pool's capacity that did useful work.

        ``None`` when the pool never processed a batch (serial engine,
        or every frontier level fell below the dispatch threshold) —
        utilization is *undefined* there, and the old ``0.0`` reading
        made healthy serial-fallback runs look like a saturated pool
        doing nothing.
        """
        if (
            self.workers <= 1
            or self.worker_batches == 0
            or self.parallel_time == 0.0
        ):
            return None
        return self.worker_busy_time / (self.parallel_time * self.workers)

    def as_dict(self) -> dict[str, object]:
        """Flat mapping for tables and JSON artifacts."""
        return {
            "interned": self.interned,
            "expansions": self.expansions,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "explore_calls": self.explore_calls,
            "reach_calls": self.reach_calls,
            "csr_rebuilds": self.csr_rebuilds,
            "transition_hits": self.transition_hits,
            "transition_misses": self.transition_misses,
            "packed_step_hits": self.packed_step_hits,
            "packed_step_misses": self.packed_step_misses,
            "kernel_batch_expansions": self.kernel_batch_expansions,
            "kernel_table_hits": self.kernel_table_hits,
            "kernel_fallback_steps": self.kernel_fallback_steps,
            "kernel_table_bytes": self.kernel_table_bytes,
            "workers": self.workers,
            "worker_batches": self.worker_batches,
            "worker_batch_nodes": self.worker_batch_nodes,
            "worker_max_batch": self.worker_max_batch,
            "worker_chunks": self.worker_chunks,
            "store_spills": self.store_spills,
            "arena_bytes": self.arena_bytes,
            "edge_bytes": self.edge_bytes,
            "worker_utilization": (
                None
                if (utilization := self.worker_utilization) is None
                else round(utilization, 4)
            ),
            "explore_levels": self.explore_levels,
            "small_batch_levels": self.small_batch_levels,
            "por_pruned": self.por_pruned,
            "ample_fallbacks": self.ample_fallbacks,
            "replay_checks": self.replay_checks,
            "replay_violations": self.replay_violations,
            "sym_canonical_hits": self.sym_canonical_hits,
            "sym_canonical_misses": self.sym_canonical_misses,
            "sym_leaf_images": self.sym_leaf_images,
            "sym_fallbacks": self.sym_fallbacks,
            "worker_timeouts": self.worker_timeouts,
            "worker_faults": self.worker_faults,
            "worker_retries": self.worker_retries,
            "pool_rebuilds": self.pool_rebuilds,
            "serial_fallbacks": self.serial_fallbacks,
            "pool_disabled": self.pool_disabled,
            "budget_stops": self.budget_stops,
            "stop_requests": self.stop_requests,
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_time_s": round(self.checkpoint_time, 6),
            "resumed_nodes": self.resumed_nodes,
            "explore_time_s": round(self.explore_time, 6),
            "reach_time_s": round(self.reach_time, 6),
            "classify_time_s": round(self.classify_time, 6),
            "encode_time_s": round(self.encode_time, 6),
            "worker_busy_s": round(self.worker_busy_time, 6),
            "parallel_wall_s": round(self.parallel_time, 6),
            "fault_crashes": self.fault_crashes,
            "fault_recoveries": self.fault_recoveries,
            "fault_inbox_wipes": self.fault_inbox_wipes,
            "fault_omission_drops": self.fault_omission_drops,
            "fault_duplications": self.fault_duplications,
            "fault_partition_blocks": self.fault_partition_blocks,
            "fault_drop_edges": self.fault_drop_edges,
            "fault_send_blocks": self.fault_send_blocks,
            "fault_dead_exclusions": self.fault_dead_exclusions,
        }


@dataclass(frozen=True)
class GrowthResult:
    """What one :meth:`GlobalConfigurationGraph.explore` call learned.

    Attributes
    ----------
    root:
        Dense id of the root the growth started from.
    nodes:
        Ids of every node reachable from ``root`` inside the explored
        region (the root's forward closure, as currently known).
    complete:
        ``True`` iff every node in ``nodes`` is fully expanded — only
        then are "cannot reach" judgements about the root's closure
        sound.
    """

    root: int
    nodes: frozenset[int]
    complete: bool


class _ConfigurationView:
    """Sequence view of a packed engine's configurations, decoded lazily.

    Packed mode never materializes a rich configuration unless someone
    asks for it (traces, witnesses, the census); this view keeps the
    ``graph.configurations[node]`` / iteration API of the dict-backed
    engine while paying the decode cost per node at most once.
    """

    __slots__ = ("_graph",)

    def __init__(self, graph: "GlobalConfigurationGraph"):
        self._graph = graph

    def __len__(self) -> int:
        return len(self._graph)

    def __getitem__(self, node: int) -> Configuration:
        if isinstance(node, slice):
            return [
                self._graph.configuration_at(i)
                for i in range(*node.indices(len(self._graph)))
            ]
        if node < 0:
            node += len(self._graph)
        return self._graph.configuration_at(node)

    def __iter__(self) -> Iterator[Configuration]:
        for node in range(len(self._graph)):
            yield self._graph.configuration_at(node)


class _SuccessorsView:
    """Sequence view of a packed engine's edge lists, decoded on demand.

    The flat-buffer store keeps edges as int64 ``(event_id, target)``
    CSR pairs; this view preserves the historical
    ``graph.successors[node] -> [(Event, target), ...]`` API (and list
    equality, which the byte-identity tests lean on) without the engine
    holding one Python list per node.
    """

    __slots__ = ("_graph",)

    def __init__(self, graph: "GlobalConfigurationGraph"):
        self._graph = graph

    def __len__(self) -> int:
        return len(self._graph)

    def __getitem__(self, node: int) -> list[tuple[Event, int]]:
        length = len(self._graph)
        if isinstance(node, slice):
            return [self[i] for i in range(*node.indices(length))]
        if node < 0:
            node += length
        if not 0 <= node < length:
            raise IndexError(node)
        return self._graph._store.edge_list(node)

    def __iter__(self) -> Iterator[list[tuple[Event, int]]]:
        edge_list = self._graph._store.edge_list
        for node in range(len(self._graph)):
            yield edge_list(node)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (_SuccessorsView, list)):
            if len(self) != len(other):
                return False
            return all(a == b for a, b in zip(self, other))
        return NotImplemented

    __hash__ = None  # mutable sequence semantics


def _close_from_atexit(graph_ref: "weakref.ref") -> None:
    """Interpreter-exit cleanup for engines that were never closed.

    Module-level (not a bound method) so the atexit registration holds
    no strong reference to the graph; a graph collected earlier is
    simply a dead weakref here.
    """
    graph = graph_ref()
    if graph is not None:
        graph.close()


class GlobalConfigurationGraph:
    """One incremental accessible-configuration graph per protocol.

    The paper's proof machinery (Lemmas 2–3, Theorem 1) quantifies over
    *one* graph of accessible configurations; this class is that graph,
    grown lazily.  Configurations are interned to dense integer ids
    exactly once, :meth:`explore` extends the explored region from any
    new root instead of starting over, and reverse reachability runs
    over a CSR-style packed reverse adjacency with flat ``bytearray``
    visited maps rather than Python sets.

    By default nodes are keyed by the *packed* encoding
    (:class:`~repro.core.packing.PackedCodec`): a configuration is a
    flat ``tuple[int, ...]`` of interned state ids plus a buffer id, so
    the index dictionary hashes and compares small int tuples in C, and
    expansion applies memoized packed transitions instead of rebuilding
    rich objects per edge.  ``packed=False`` keeps the dict-backed
    representation (the pre-packing engine, retained as the benchmark
    baseline and for A/B regression checks).

    ``workers > 1`` turns on batched frontier expansion over an opt-in
    ``multiprocessing`` pool: each BFS level's unexpanded nodes are
    shipped to workers, which apply the pure transition function and
    return successor deltas; the parent merges them *in node order* and
    does all interning, so the resulting graph — ids, edge order,
    everything downstream — is byte-identical to a serial run.

    Invariant: a node with ``is_expanded(id)`` true has its *complete*
    successor set recorded (every enabled event, null deliveries
    included).  Expansion is never partial — serial or parallel — so
    anything proven about an expanded node's forward closure stays true
    as the graph grows, which is what makes incremental classification
    sound.
    """

    def __init__(
        self,
        protocol: Protocol,
        transitions: TransitionCache | None = None,
        *,
        packed: bool = True,
        kernel: bool = True,
        workers: int = 0,
        min_batch_per_worker: int = 4,
        resilience: ResilienceConfig | None = None,
        checkpoint: CheckpointConfig | None = None,
        chaos: ChaosConfig | None = None,
        reduction: "ReductionPolicy | None" = None,
        store: "StoreConfig | str | None" = None,
    ):
        self.protocol = protocol
        # Escape hatch for protocols whose step semantics genuinely
        # cannot be expressed through a packed codec.  FaultedProtocol
        # no longer needs it (it supplies a fault-aware codec via
        # ``packed_codec()``); anything still setting the flag routes to
        # the dict engine, where every step goes through the protocol.
        if packed and getattr(protocol, "requires_rich_engine", False):
            packed = False
        # Explicit None-check: an empty TransitionCache is falsy (len 0).
        self.transitions = (
            transitions if transitions is not None
            else TransitionCache(protocol)
        )
        self.stats = GraphStats()
        self.workers = max(0, workers)
        self.stats.workers = self.workers
        self._min_batch_per_worker = max(1, min_batch_per_worker)
        #: Recovery / degradation policy (see :mod:`repro.core.resilience`).
        self.resilience = resilience or ResilienceConfig()
        #: Snapshot cadence; ``None`` disables checkpointing entirely.
        self.checkpoint_config = checkpoint
        #: Fault-injection hooks (chaos harness only; ``None`` in prod).
        self.chaos = chaos
        #: Metadata of the most recent snapshot written by this engine.
        self.last_checkpoint = None
        #: :class:`~repro.core.resilience.PartialResult` of the most
        #: recent budget-guard stop or interrupt, ``None`` otherwise.
        self.last_partial: PartialResult | None = None
        #: Reason string of a pending cooperative stop request (set from
        #: any thread via :meth:`request_stop`), ``None`` otherwise.
        self._stop_requested: str | None = None
        self._pool = None
        self._pool_failures = 0
        self._pool_disabled = False
        self._small_batch_logged = False
        self._pool_idle_logged = False
        self._atexit_hook = None
        self._last_checkpoint_time: float | None = None
        self._chunks_since_checkpoint = 0
        self._expansions_at_checkpoint = 0
        self._expanded = bytearray()
        self._decision_nodes: dict[int, list[int]] = {}
        #: Bumped on any node/edge addition; versions CSR staleness.
        self._version = 0
        self._csr_version = -1
        self._rev_indptr: array | None = None
        self._rev_indices: array | None = None
        self.store_config = StoreConfig.coerce(store)
        if packed:
            self._codec = protocol.packed_codec()
            self._store = GraphStore(
                self._codec.width,
                self.store_config,
                on_spill=self._record_spill,
            )
            # The batched transition kernel (on by default; kernel=False
            # keeps the scalar per-edge path, retained as the fill
            # oracle and the A/B baseline).  Either way the recorded
            # graph is byte-identical — the kernel only changes how fast
            # successors are computed, never which ids they get.
            if kernel:
                from repro.core.kernel import TransitionKernel

                self._kernel = TransitionKernel(self._codec)
            else:
                self._kernel = None
            #: Lazy kernel-event-id -> store-event-id map, filled in
            #: edge-write order so store event ids allocate exactly as
            #: the scalar merge would have.
            self._kernel_store_eids: list[int] = []
            self._rich: dict[int, Configuration] = {}
            self.configurations = _ConfigurationView(self)
            self.successors = _SuccessorsView(self)
            # Route shared-cache misses through the packed memos so the
            # adversary's rich-level searches reuse exploration work.
            self.transitions.codec = self._codec
        else:
            if self.store_config.mode != "ram":
                raise ValueError(
                    "the flat-buffer store (mode='mmap') requires the "
                    "packed engine"
                )
            self._codec = None
            self._store = None
            self._kernel = None
            self._index: dict[Configuration, int] = {}
            self.configurations: list[Configuration] = []
            self.successors: list[list[tuple[Event, int]]] = []
        #: Reduction layers (:mod:`repro.core.reduction`); both ``None``
        #: unless a :class:`ReductionPolicy` asked for them.
        self.reduction = reduction
        self._reducer = None
        self._quotient = None
        if reduction is not None and reduction.enabled:
            if self._codec is None:
                raise ValueError(
                    "partial-order reduction and the symmetry quotient "
                    "operate on packed configurations; the dict engine "
                    "does not support them"
                )
            from repro.core.reduction import AmpleReducer, SymmetryQuotient

            if reduction.symmetry:
                quotient, fallback = SymmetryQuotient.build(
                    protocol, self._codec, reduction
                )
                if quotient is None:
                    warnings.warn(
                        "symmetry quotient disabled: " + str(fallback),
                        stacklevel=2,
                    )
                    self.stats.sym_fallbacks = 1
                else:
                    self._quotient = quotient
                    # Orbit edges must be replayable: track the
                    # renaming chosen at every edge (the store is
                    # fresh, so tracking starts aligned).
                    self._store.enable_perm_tracking()
            if reduction.por:
                self._reducer = AmpleReducer(
                    self._codec, reduction, self.stats
                )

    @property
    def packed(self) -> bool:
        """Whether nodes are keyed by the packed encoding."""
        return self._codec is not None

    @property
    def codec(self):
        """The packed codec (``None`` in dict mode)."""
        return self._codec

    @property
    def kernel(self):
        """The batched transition kernel (``None`` when disabled)."""
        return self._kernel

    def reset_kernel(self) -> None:
        """Replace the kernel with a fresh one bound to the current
        codec tables — the checkpoint-restore path for snapshots written
        without kernel state (attach re-derives rep coverage, so lazy
        allocation stays sound over the restored buffers)."""
        if self._kernel is not None:
            from repro.core.kernel import TransitionKernel

            self._kernel = TransitionKernel(self._codec)
            self._kernel_store_eids = []

    @property
    def store(self) -> "GraphStore | None":
        """The flat-buffer store (``None`` in dict mode)."""
        return self._store

    def _record_spill(self, nbytes: int) -> None:
        self.stats.store_spills += 1
        logger.info(
            "flat-buffer store spilled %d bytes to a memory-mapped "
            "temp file (budget %.0f MiB)",
            nbytes,
            self.store_config.spill_budget_mb,
        )

    # -- interning ---------------------------------------------------------------

    def intern(self, configuration: Configuration) -> int:
        """The dense id of *configuration*, allocating one if new."""
        if self._codec is not None:
            started = time.perf_counter()
            packed = self._codec.encode(configuration)
            self.stats.encode_time += time.perf_counter() - started
            node = self._intern_packed(packed)
            # Under the symmetry quotient the node may stand for a
            # *different* orbit member; let the lazy decode produce the
            # canonical representative instead of caching this one.
            if self._quotient is None and node not in self._rich:
                self._rich[node] = configuration
            return node
        node = self._index.get(configuration)
        if node is None:
            node = len(self.configurations)
            self._index[configuration] = node
            self.configurations.append(configuration)
            self.successors.append([])
            self._expanded.append(0)
            for value in configuration.decision_values():
                self._decision_nodes.setdefault(value, []).append(node)
            self.stats.interned += 1
            self._version += 1
        return node

    def _intern_packed(self, packed: tuple[int, ...]) -> int:
        """The dense id of a packed configuration, allocating if new.

        With the symmetry quotient active the id is the *orbit's*: the
        tuple is canonicalized before the index probe.
        """
        quotient = self._quotient
        if quotient is not None:
            canonical = quotient.canonicalize(packed)
            if canonical != packed:
                self.stats.sym_canonical_hits += 1
                packed = canonical
        store = self._store
        node = store.find(packed)
        if node is None:
            node = store.add(packed)
            self._expanded.append(0)
            for value in self._codec.decision_values(packed):
                self._decision_nodes.setdefault(value, []).append(node)
            self.stats.interned += 1
            self._version += 1
        return node

    def _encode(self, configuration: Configuration) -> tuple[int, ...]:
        started = time.perf_counter()
        packed = self._codec.encode(configuration)
        self.stats.encode_time += time.perf_counter() - started
        return packed

    def configuration_at(self, node: int) -> Configuration:
        """The rich configuration for *node* (decoded lazily, cached)."""
        if self._codec is None:
            return self.configurations[node]
        rich = self._rich.get(node)
        if rich is None:
            rich = self._codec.decode(self._store.row(node))
            self._rich[node] = rich
        return rich

    def packed_at(self, node: int) -> tuple[int, ...]:
        """The packed tuple for *node* (packed mode only)."""
        if self._codec is None:
            raise ValueError("dict-backed engine has no packed encoding")
        return self._store.row(node)

    def edge_records(self, node: int) -> list[tuple[Event, int, tuple[int, ...]]]:
        """*node*'s edges as ``(event, target, renaming)`` triples.

        The renaming is what the symmetry quotient applied to the raw
        successor before interning (identity when no quotient is
        active) — the un-quotienting data witness extraction composes
        back out.  Packed mode only.
        """
        if self._codec is None:
            raise ValueError("dict-backed engine has no edge records")
        store = self._store
        edges = store.edge_list(node)
        if store.tracking_perms:
            perms = store.edge_perms(node)
            return [
                (event, target, perms[k])
                for k, (event, target) in enumerate(edges)
            ]
        identity = tuple(range(self._codec.width - 1))
        return [(event, target, identity) for event, target in edges]

    def _lookup_key(self, packed: tuple[int, ...]) -> tuple[int, ...]:
        """The index key for *packed*: its orbit representative under the
        symmetry quotient, the tuple itself otherwise."""
        if self._quotient is not None:
            return self._quotient.canonicalize(packed)
        return packed

    def node_id(self, configuration: Configuration) -> int:
        """The id of an already-interned configuration (KeyError if not)."""
        if self._codec is not None:
            key = self._lookup_key(self._encode(configuration))
            node = self._store.find(key)
            if node is None:
                raise KeyError(configuration)
            return node
        return self._index[configuration]

    def find(self, configuration: Configuration) -> int | None:
        """The id of *configuration*, or ``None`` if never interned."""
        if self._codec is not None:
            return self._store.find(
                self._lookup_key(self._encode(configuration))
            )
        return self._index.get(configuration)

    def __contains__(self, configuration: Configuration) -> bool:
        return self.find(configuration) is not None

    def __len__(self) -> int:
        return len(self._expanded)

    def is_expanded(self, node: int) -> bool:
        """Whether *node*'s full successor set has been computed."""
        return bool(self._expanded[node])

    # -- worker pool -------------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            from repro.core.parallel import WorkStealingCrew

            self._pool = WorkStealingCrew(
                self.workers,
                self.protocol,
                self.chaos,
                kernel=self._kernel is not None,
            )
            if self._atexit_hook is None:
                # Registered through a weakref so the atexit table never
                # keeps the graph (and its pool) alive; ``close()``
                # unregisters.  This guarantees pool teardown even when
                # the owner forgets to close and ``__del__`` never runs.
                self._atexit_hook = functools.partial(
                    _close_from_atexit, weakref.ref(self)
                )
                atexit.register(self._atexit_hook)
        return self._pool

    def close(self) -> None:
        """Shut down the worker crew (idempotent; serial = no-op)."""
        hook = self._atexit_hook
        self._atexit_hook = None
        if hook is not None:
            atexit.unregister(hook)
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            pass

    # -- growth ------------------------------------------------------------------

    def request_stop(self, reason: str = "interrupt") -> None:
        """Ask the engine to stop growing at its next consistency point.

        Safe to call from any thread (the flag is read at BFS-level /
        check-interval boundaries, where every node is fully merged).
        The engine reacts exactly like a budget-guard stop: it writes a
        final checkpoint, records an honest
        :class:`~repro.core.resilience.PartialResult` carrying *reason*,
        and returns an incomplete :class:`GrowthResult` — no exception.
        The request is *sticky*: later ``explore`` calls stop
        immediately (zero new expansions) until :meth:`clear_stop` is
        called, so a multi-root query drains as one unit.  This is the
        graceful-degradation hook the ``repro serve`` daemon uses for
        per-job wall-clock deadlines and shutdown drains.
        """
        self._stop_requested = reason

    def clear_stop(self) -> None:
        """Withdraw a pending :meth:`request_stop`."""
        self._stop_requested = None

    @property
    def stop_requested(self) -> str | None:
        """Reason of the pending cooperative stop, or ``None``."""
        return self._stop_requested

    def explore(
        self,
        root: Configuration,
        max_configurations: int = DEFAULT_MAX_CONFIGURATIONS,
        *,
        max_levels: int | None = None,
    ) -> GrowthResult:
        """Grow the explored region to cover *root*'s forward closure.

        Already-expanded nodes are traversed (not recomputed); only
        never-expanded nodes pay for event enumeration and transition
        application.  A root inside the fully explored region is a pure
        walk over existing edges with zero new work.

        *max_configurations* bounds the **total** number of interned
        configurations.  A node whose expansion would exceed the budget
        is left unexpanded (hence in the frontier) and the result
        reports ``complete=False`` — the truthful-partial-answer
        contract of the per-root :func:`explore`, carried over.

        The traversal is level-synchronized BFS with an in-order merge,
        so the interning sequence (hence every node id and edge list) is
        a pure function of the protocol and the root — independent of
        worker count, batch sharding, and ``PYTHONHASHSEED``.

        *max_levels* (packed engine only) stops after that many BFS
        levels from *root* — a depth horizon rather than a node budget,
        which is what makes reduced-vs-full expansion counts comparable
        (same temporal horizon, different graph sizes).  Levels are
        counted from the root on every call, so re-exploring a grown
        graph with a larger horizon continues where the smaller one
        stopped.
        """
        started = time.perf_counter()
        self.stats.explore_calls += 1
        guard = BudgetGuard(self.resilience)
        if self._last_checkpoint_time is None:
            self._last_checkpoint_time = time.monotonic()
        try:
            if self._codec is not None:
                return self._explore_packed(
                    root, max_configurations, guard, max_levels
                )
            if max_levels is not None:
                raise ValueError(
                    "max_levels requires the packed engine (the dict "
                    "engine's traversal has no level structure)"
                )
            return self._explore_rich(root, max_configurations, guard)
        except KeyboardInterrupt:
            # Operator ^C / SIGINT (or the chaos harness imitating one):
            # leave a final snapshot and an honest partial report, then
            # let the interrupt propagate to the caller.
            self._record_stop("interrupt", guard)
            raise
        finally:
            self.stats.explore_time += time.perf_counter() - started
            self.stats.transition_hits = self.transitions.hits
            self.stats.transition_misses = self.transitions.misses
            if self._codec is not None:
                self.stats.packed_step_hits = self._codec.step_hits
                self.stats.packed_step_misses = self._codec.step_misses
                self.stats.arena_bytes = self._store.arena_bytes
                self.stats.edge_bytes = self._store.edge_bytes
            if self._kernel is not None:
                kernel = self._kernel
                self.stats.kernel_batch_expansions = (
                    kernel.batch_expansions
                )
                self.stats.kernel_table_hits = kernel.table_hits
                self.stats.kernel_fallback_steps = kernel.fallback_steps
                self.stats.kernel_table_bytes = kernel.table_bytes
            if self._quotient is not None:
                self.stats.sym_canonical_misses = (
                    self._quotient.canonical_misses
                )
                self.stats.sym_leaf_images = self._quotient.leaf_images

    def _explore_packed(
        self,
        root: Configuration,
        max_configurations: int,
        guard: BudgetGuard,
        max_levels: int | None = None,
    ) -> GrowthResult:
        root_id = self.intern(root)
        visited = {root_id}
        frontier = [root_id]
        complete = True
        expanded = self._expanded
        level = 0

        while frontier:
            stop = self._stop_requested
            if stop is not None:
                # Cooperative stop (service drain / external deadline):
                # every discovered node is fully merged here, so a final
                # snapshot resumes byte-identically.  Checked *before*
                # the batch so a sticky request halts later explore
                # calls with zero new work.
                self.stats.stop_requests += 1
                self._record_stop(stop, guard)
                complete = False
                break
            batch = [node for node in frontier if not expanded[node]]
            if batch:
                expansions, kernel_edges = self._expand_batch(batch)
                if (
                    kernel_edges
                    and self._reducer is None
                    and self._quotient is None
                ):
                    merged = self._merge_expansions_kernel(
                        batch, expansions, max_configurations
                    )
                else:
                    if kernel_edges:
                        # Reduction layers consume (Event, packed)
                        # edges; rehydrate the kernel's event ids.
                        expansions = self._kernel_edges_to_events(
                            batch, expansions
                        )
                    merged = self._merge_expansions(
                        batch, expansions, max_configurations
                    )
                if not merged:
                    complete = False
            level += 1
            self.stats.explore_levels += 1
            self._chunks_since_checkpoint += 1
            # Level boundaries are the consistency points: every batch
            # node is fully merged (all-or-nothing), so a snapshot here
            # resumes byte-identically.  The chaos interrupt fires only
            # after the cadence hook so the per-level checkpoint exists.
            self._write_checkpoint()
            chaos = self.chaos
            if (
                chaos is not None
                and chaos.interrupt_after_level is not None
                and level >= chaos.interrupt_after_level
            ):
                raise KeyboardInterrupt
            reason = guard.exceeded()
            if reason is not None:
                self._budget_stop(reason, guard)
                complete = False
                break
            next_frontier = []
            edge_targets = self._store.edge_targets
            for node in frontier:
                if not expanded[node]:
                    continue
                for target in edge_targets(node):
                    if target not in visited:
                        visited.add(target)
                        next_frontier.append(target)
            frontier = next_frontier
            if max_levels is not None and level >= max_levels and frontier:
                # Depth horizon reached with work remaining: the rim
                # stays unexpanded, exactly like a node-budget stop.
                complete = False
                break

        if (
            self.workers > 1
            and self.stats.worker_batches == 0
            and not self._pool_idle_logged
        ):
            self._pool_idle_logged = True
            logger.info(
                "workers=%d requested but every frontier level stayed "
                "below the %d-node dispatch threshold; the run expanded "
                "serially",
                self.workers,
                self.workers * self._min_batch_per_worker,
            )
        if complete:
            # Nodes reached through previously-explored edges may still
            # be unexpanded from an earlier budget-limited call.
            complete = all(expanded[node] for node in visited)
        return GrowthResult(
            root=root_id, nodes=frozenset(visited), complete=complete
        )

    def _expand_batch(
        self, batch: list[int]
    ) -> tuple[Iterable[list], bool]:
        """Produce every batch node's edges: ``(expansions, kernel_edges)``.

        Dispatches to the shared-memory crew when it pays (enough nodes
        to occupy every worker), else expands inline — through the
        batched transition kernel when enabled, else through the
        codec's packed memos.  Either way the produced edge lists are
        aligned with *batch* and in canonical event order.
        ``kernel_edges`` tells the merge which shape the lists carry:
        ``(kernel_event_id, packed)`` pairs from the kernel, or rich
        ``(Event, packed)`` pairs otherwise.  The parallel path is a
        generator: the merge consumes chunk results in order *while
        workers are still computing later chunks*, so there is no
        per-level map barrier.
        """
        threshold = self.workers * self._min_batch_per_worker
        if (
            self.workers > 1
            and not self._pool_disabled
            and len(batch) < threshold
        ):
            # Auto-disable for this level: a batch too small to occupy
            # every worker loses more to IPC than it gains (see
            # BENCH_parallel.json), so it expands inline.  Logged once,
            # honestly, instead of silently idling the crew.
            self.stats.small_batch_levels += 1
            if not self._small_batch_logged:
                self._small_batch_logged = True
                logger.info(
                    "frontier batch of %d nodes is below the %d-node "
                    "dispatch threshold (%d workers x %d nodes); "
                    "expanding inline without the pool",
                    len(batch),
                    threshold,
                    self.workers,
                    self._min_batch_per_worker,
                )
        if (
            self.workers > 1
            and not self._pool_disabled
            and len(batch) >= threshold
        ):
            return self._expand_batch_parallel(batch), False
        if self._kernel is not None:
            return self._expand_batch_kernel(batch), True
        return self._expand_batch_serial(batch), False

    def _expand_batch_kernel(
        self, batch: list[int]
    ) -> Iterable[list[tuple[int, tuple[int, ...]]]]:
        # A generator for the same reason as _expand_batch_serial: the
        # merge must interleave interning with expansion per node so id
        # allocation matches the parallel path exactly.
        expand_row = self._kernel.expand_row
        row = self._store.row
        for node in batch:
            yield expand_row(row(node))

    def _kernel_edges_to_events(
        self, batch: list[int], expansions: Iterable[list]
    ) -> Iterable[list[tuple[Event, tuple[int, ...]]]]:
        # Reduction layers want rich (Event, packed) pairs; the kernel's
        # self-loop sentinel rehydrates to the node's own row.
        event_at = self._kernel.event_at
        row = self._store.row
        for node, edges in zip(batch, expansions):
            packed_row = row(node)
            yield [
                (event_at(eid), packed if packed is not None else packed_row)
                for eid, packed in edges
            ]

    def _expand_batch_serial(
        self, batch: list[int]
    ) -> Iterable[list[tuple[Event, tuple[int, ...]]]]:
        # A generator, deliberately: the merge must interleave "intern
        # this node's raw successors" with "canonicalize this node's
        # edges" one node at a time, exactly like the parallel path
        # streams _materialize_deltas per node.  Under the symmetry
        # quotient the merge interns canonical images into the codec,
        # so expanding the whole batch eagerly here would allocate
        # codec ids in a different order than a parallel run — and
        # fingerprints are byte-level, so allocation order is contract.
        expand_packed = self._codec.expand_packed
        row = self._store.row
        for node in batch:
            yield expand_packed(row(node))

    def _expand_batch_parallel(self, batch: list[int]):
        """Generator over the batch's edge lists, crew-expanded.

        Frontier rows go into the crew's shared-memory block; chunk
        descriptors go onto the stealing queue; results stream back and
        are yielded *in chunk order* (buffering out-of-order arrivals),
        so the merge overlaps with ongoing worker computation.

        Recovery: a timed-out / dead-worker wait tears the crew down,
        backs off, rebuilds, and re-dispatches only the unfinished
        chunks (completed results are pure functions of the frontier
        and stay valid).  Once the retry budget — or the
        engine-lifetime failure budget — is exhausted, the *remaining*
        chunks expand inline through the packed memos, or
        :class:`WorkerPoolError` is raised when ``serial_fallback`` is
        off.  Model errors (:class:`~repro.core.errors.FLPError`)
        propagate, exactly as in serial mode.
        """
        from repro.core.parallel import CrewFailure

        codec = self._codec
        stats = self.stats
        config = self.resilience
        store = self._store
        flat = store.arena.rows_flat(batch)
        crew = self._ensure_pool()
        dispatch = crew.begin(flat, len(batch), codec.width, codec)
        attempt = 0
        attempts = max(1, config.max_retries + 1)
        serial_chunks: set[int] = set()
        used_workers = False
        for idx, (start, end) in enumerate(dispatch.chunks):
            while (
                idx not in dispatch.results
                and idx not in serial_chunks
            ):
                shipped = time.perf_counter()
                try:
                    crew.collect(dispatch, config.batch_timeout_s)
                    stats.parallel_time += time.perf_counter() - shipped
                except CrewFailure as failure:
                    stats.parallel_time += time.perf_counter() - shipped
                    if failure.kind == "timeout":
                        stats.worker_timeouts += 1
                    else:
                        stats.worker_faults += 1
                    self._pool_failures += 1
                    attempt += 1
                    if self._pool_failures >= config.max_pool_failures:
                        self._pool_disabled = True
                        stats.pool_disabled = 1
                    if (
                        not self._pool_disabled
                        and attempt < attempts
                    ):
                        stats.pool_rebuilds += 1
                        stats.worker_retries += 1
                        delay = (
                            config.backoff_base_s
                            * config.backoff_factor ** (attempt - 1)
                        )
                        if delay > 0:
                            time.sleep(delay)
                        crew.rebuild()
                        crew.redispatch(dispatch, codec)
                        continue
                    # Given up on the crew for this level: tear it down
                    # (lazily recreated next level unless disabled) and
                    # finish the unfinished chunks inline.
                    self.close()
                    if not config.serial_fallback:
                        raise WorkerPoolError(
                            f"frontier batch of {len(batch)} "
                            f"configurations failed after {attempt} "
                            "dispatch attempt(s); serial fallback is "
                            "disabled"
                        ) from None
                    stats.serial_fallbacks += 1
                    serial_chunks.update(dispatch.pending)
                    dispatch.pending.clear()
            if idx in serial_chunks:
                expand_packed = codec.expand_packed
                for position in range(start, end):
                    yield expand_packed(store.row(batch[position]))
                continue
            busy, payload = dispatch.results.pop(idx)
            stats.worker_busy_time += busy
            stats.worker_chunks += 1
            if not used_workers:
                # Batch-level accounting happens on the *first* consumed
                # worker chunk: the merge's zip() stops pulling once the
                # batch is exhausted, so code after this generator's
                # last yield would never run.
                used_workers = True
                stats.worker_batches += 1
                stats.worker_batch_nodes += len(batch)
                stats.worker_max_batch = max(
                    stats.worker_max_batch, len(batch)
                )
            for position, deltas in zip(range(start, end), payload):
                yield self._materialize_deltas(batch[position], deltas)

    def _materialize_deltas(
        self, node: int, deltas
    ) -> list[tuple[Event, tuple[int, ...]]]:
        """Turn one node's worker deltas into packed successor edges.

        References that were already in the synced tables arrive as
        parent ids and need no work; novel states/buffers arrive rich
        and are interned here, in delta order — the same first-seen
        order the serial engine's ``apply_packed`` would have used, so
        id allocation (hence every packed encoding) stays byte-
        identical.
        """
        codec = self._codec
        intern_state = codec.intern_state
        intern_buffer = codec.intern_buffer
        position_of = codec.position_of
        packed = self._store.row(node)
        edges = []
        for event, state, delivered, buffer in deltas:
            successor = list(packed)
            successor[position_of(event.process)] = (
                state if isinstance(state, int) else intern_state(state)
            )
            # Intern the intermediate post-delivery buffer first: the
            # serial path allocates it before the post-send buffer, and
            # id allocation order must match exactly.
            if delivered is not None and not isinstance(delivered, int):
                intern_buffer(delivered)
            successor[-1] = (
                buffer if isinstance(buffer, int)
                else intern_buffer(buffer)
            )
            edges.append((event, tuple(successor)))
        return edges

    def _merge_expansions(
        self,
        batch: list[int],
        expansions: Iterable[list[tuple[Event, tuple[int, ...]]]],
        max_configurations: int,
    ) -> bool:
        """Intern and record the batch's edges, in node order.

        *expansions* may be a list (serial path) or the streaming
        generator from :meth:`_expand_batch_parallel` — either way it is
        consumed strictly in batch order, so the interning sequence is
        identical.  Returns ``False`` if any node was left unexpanded
        because its fresh successors no longer fit the budget
        (all-or-nothing per node, exactly like the serial engine).
        """
        store = self._store
        reducer = self._reducer
        quotient = self._quotient
        stats = self.stats
        complete = True
        for node, edges in zip(batch, expansions):
            # Reduction happens here — the one place serial and parallel
            # paths share — so the recorded graph is identical for any
            # worker count.  The reducer sees raw successors (its replay
            # guard applies real events); the quotient then reroutes
            # each kept edge to its orbit representative.
            if reducer is not None:
                edges = reducer.filter(store.row(node), edges)
            perms = None
            if quotient is not None:
                rerouted = []
                perms = []
                for event, packed in edges:
                    canonical, perm = quotient.canonicalize_with_perm(
                        packed
                    )
                    if canonical != packed:
                        stats.sym_canonical_hits += 1
                    rerouted.append((event, canonical))
                    perms.append(perm)
                edges = rerouted
            fresh = {
                packed
                for _event, packed in edges
                if store.find(packed) is None
            }
            if len(store) + len(fresh) > max_configurations:
                complete = False
                continue
            store.set_edges(
                node,
                [
                    (event, self._intern_packed(packed))
                    for event, packed in edges
                ],
                perms=perms,
            )
            self._expanded[node] = 1
            self.stats.expansions += 1
            self._version += 1
        return complete

    def _merge_expansions_kernel(
        self,
        batch: list[int],
        expansions: Iterable[list[tuple[int, tuple[int, ...]]]],
        max_configurations: int,
    ) -> bool:
        """Fast-path merge for kernel-shaped edges (no reductions).

        Same observable behavior as :meth:`_merge_expansions` — one
        all-or-nothing budget decision per node, first-seen-in-edge-order
        interning, store event ids allocated at first edge write — but
        each *distinct* successor is probed against the index at most
        once per level: a batch-wide cache of resolved ids short-circuits
        the converging-edge duplicates BFS levels are full of, and the
        kernel's ``None`` self-loop sentinel resolves to the node itself
        with no probe at all.  Edges append as pre-interned flat pairs.
        """
        store = self._store
        find = store.find
        add = store.add
        decision_values = self._codec.decision_values
        decision_nodes = self._decision_nodes
        stats = self.stats
        expanded = self._expanded
        eid_map = self._kernel_store_eids
        event_at = self._kernel.event_at
        event_id = store.event_id
        complete = True
        cache: dict[tuple[int, ...], int] = {}
        cache_get = cache.get
        for node, edges in zip(batch, expansions):
            probed = []
            probe = probed.append
            pending: dict[tuple[int, ...], int] = {}
            for eid, packed in edges:
                if packed is None:
                    probe((eid, None, node))
                    continue
                target = cache_get(packed)
                if target is None and packed not in pending:
                    target = find(packed)
                    if target is None:
                        pending[packed] = -1
                    else:
                        cache[packed] = target
                probe((eid, packed, target))
            if len(store) + len(pending) > max_configurations:
                # Budget refusal discards ``pending`` uncached — the
                # node stays unexpanded and nothing was interned, same
                # as the scalar merge.
                complete = False
                continue
            for packed in pending:
                fresh = add(packed)
                expanded.append(0)
                for value in decision_values(packed):
                    decision_nodes.setdefault(value, []).append(fresh)
                pending[packed] = fresh
                cache[packed] = fresh
                stats.interned += 1
                self._version += 1
            flat: list[int] = []
            for eid, packed, target in probed:
                if eid >= len(eid_map):
                    eid_map.extend([-1] * (eid + 1 - len(eid_map)))
                store_eid = eid_map[eid]
                if store_eid < 0:
                    store_eid = event_id(event_at(eid))
                    eid_map[eid] = store_eid
                flat.append(store_eid)
                flat.append(
                    pending[packed] if target is None else target
                )
            store.set_edges_flat(node, flat)
            expanded[node] = 1
            stats.expansions += 1
            self._version += 1
        return complete

    def _explore_rich(
        self,
        root: Configuration,
        max_configurations: int,
        guard: BudgetGuard,
    ) -> GrowthResult:
        """The dict-backed engine (pre-packing), kept as the baseline."""
        protocol = self.protocol
        transitions = self.transitions
        root_id = self.intern(root)
        visited = {root_id}
        queue: deque[int] = deque((root_id,))
        complete = True
        interval = max(1, self.resilience.check_interval_nodes)
        processed = 0

        while queue:
            stop = self._stop_requested
            if stop is not None:
                self.stats.stop_requests += 1
                self._record_stop(stop, guard)
                complete = False
                break
            node = queue.popleft()
            if self._expanded[node]:
                for _event, target in self.successors[node]:
                    if target not in visited:
                        visited.add(target)
                        queue.append(target)
                continue
            configuration = self.configurations[node]
            pending: list[tuple[Event, Configuration]] = []
            fresh: set[Configuration] = set()
            for event in protocol.enabled_events(
                configuration, include_null=True
            ):
                successor = transitions.apply(
                    protocol, configuration, event
                )
                pending.append((event, successor))
                if successor not in self._index:
                    fresh.add(successor)
            if len(self.configurations) + len(fresh) > max_configurations:
                # Budget exhausted: leave the node unexpanded (frontier)
                # rather than record a partial successor set.
                complete = False
                continue
            out = self.successors[node]
            for event, successor in pending:
                target = self.intern(successor)
                out.append((event, target))
                if target not in visited:
                    visited.add(target)
                    queue.append(target)
            self._expanded[node] = 1
            self.stats.expansions += 1
            self._version += 1
            processed += 1
            if processed % interval == 0:
                # The dict engine has no level structure, so guard /
                # checkpoint / chaos hooks run every *interval* expanded
                # nodes; between queue pops every node is fully merged,
                # so these are consistency points too.  Cadence is
                # expansion-based here (``_write_checkpoint`` converts
                # ``every_levels`` to an equivalent expansion count) —
                # the old chunk counter survived across explore() calls
                # and drifted from the documented interval.
                self._write_checkpoint()
                chaos = self.chaos
                if (
                    chaos is not None
                    and chaos.interrupt_after_expansions is not None
                    and self.stats.expansions
                    >= chaos.interrupt_after_expansions
                ):
                    raise KeyboardInterrupt
                reason = guard.exceeded()
                if reason is not None:
                    self._budget_stop(reason, guard)
                    complete = False
                    break

        if complete:
            # Nodes reached through previously-explored edges may still
            # be unexpanded from an earlier budget-limited call.
            complete = all(self._expanded[node] for node in visited)
        return GrowthResult(
            root=root_id, nodes=frozenset(visited), complete=complete
        )

    # -- resilience --------------------------------------------------------------

    def _write_checkpoint(self, force: bool = False) -> None:
        """Snapshot to the configured path when the cadence says so.

        ``force=True`` bypasses the cadence (final snapshots on budget
        stops and interrupts); with no :class:`CheckpointConfig` this is
        always a no-op.
        """
        config = self.checkpoint_config
        if config is None:
            return
        if (
            force
            and self.last_checkpoint is not None
            and self.stats.expansions == self._expansions_at_checkpoint
        ):
            # Nothing expanded since the last snapshot: the file on disk
            # is already this graph.  Skipping keeps sticky stop
            # requests (which hit every explore call of a multi-root
            # query) from rewriting a large snapshot once per root.
            return
        if not force:
            since = self.stats.expansions - self._expansions_at_checkpoint
            due = (
                config.every_expansions > 0
                and since >= config.every_expansions
            )
            if not due and config.every_levels > 0:
                if self._codec is not None:
                    # Packed engine: a "level" is a BFS level.
                    due = (
                        self._chunks_since_checkpoint
                        >= config.every_levels
                    )
                else:
                    # Dict engine: no level structure, so a "level" is
                    # one check interval's worth of expansions.  The old
                    # chunk counter ticked once per explore-call interval
                    # but was never scoped to a call, so resumed runs
                    # checkpointed at the wrong cadence; counting
                    # expansions directly keeps the documented rate.
                    interval = max(1, self.resilience.check_interval_nodes)
                    due = since >= config.every_levels * interval
            if not due and config.every_seconds > 0:
                last = self._last_checkpoint_time
                due = (
                    last is None
                    or time.monotonic() - last >= config.every_seconds
                )
            if not due:
                return
        from repro.core.checkpoint import save_checkpoint

        info = save_checkpoint(self, config.path)
        self.last_checkpoint = info
        self.stats.checkpoints_written += 1
        self.stats.checkpoint_time += info.elapsed_s
        self._chunks_since_checkpoint = 0
        self._expansions_at_checkpoint = self.stats.expansions
        self._last_checkpoint_time = time.monotonic()

    def _record_stop(self, reason: str, guard: BudgetGuard) -> None:
        """Final snapshot + honest partial report for a stopped run."""
        self._write_checkpoint(force=True)
        expanded = sum(self._expanded)
        self.last_partial = PartialResult(
            reason=reason,
            nodes=len(self),
            expanded=expanded,
            frontier=len(self) - expanded,
            elapsed_s=guard.elapsed(),
            checkpoint_path=(
                self.last_checkpoint.path
                if self.last_checkpoint is not None
                else None
            ),
        )

    def _budget_stop(self, reason: str, guard: BudgetGuard) -> None:
        self.stats.budget_stops += 1
        self._record_stop(reason, guard)

    def fingerprint(self) -> str:
        """SHA-256 over the node table and edge lists, in id order.

        Two engines produce the same fingerprint iff they interned the
        same configurations under the same ids and recorded the same
        edges in the same order — the determinism contract behind both
        parallel expansion and checkpoint/resume.  Packed fingerprints
        are stable across processes (ids are first-seen-order ints);
        dict-mode fingerprints are only stable within one process, since
        rich reprs include frozensets whose iteration order follows
        ``PYTHONHASHSEED``.
        """
        digest = hashlib.sha256()
        if self._codec is not None:
            store = self._store
            for node in range(len(store)):
                digest.update(repr(store.row(node)).encode())
                digest.update(repr(store.edge_list(node)).encode())
        else:
            for configuration, out in zip(
                self.configurations, self.successors
            ):
                digest.update(configuration.describe().encode())
                digest.update(repr(out).encode())
        return digest.hexdigest()

    # -- queries -----------------------------------------------------------------

    @property
    def complete(self) -> bool:
        """Whether every discovered configuration is fully expanded."""
        return 0 not in self._expanded

    def frontier_ids(self) -> list[int]:
        """Ids discovered but never expanded (budget-limited edges)."""
        return [
            node
            for node, expanded in enumerate(self._expanded)
            if not expanded
        ]

    def decision_nodes(self, value: int) -> list[int]:
        """Ids of configurations having decision value *value*.

        Maintained incrementally at intern time — O(1) per query, no
        rescan of the configuration list.
        """
        return self._decision_nodes.get(value, [])

    def iter_edges(self) -> Iterator[tuple[int, Event, int]]:
        """Iterate over all recorded edges as ``(source, event, target)``."""
        if self._codec is not None:
            yield from self._store.iter_edges()
            return
        for source, out in enumerate(self.successors):
            for event, target in out:
                yield source, event, target

    def reachable_from(self, node: int) -> GrowthResult:
        """Forward closure of *node* inside the explored region.

        Pure graph walk — never applies transitions.  ``complete`` is
        ``True`` iff the closure contains no unexpanded node.
        """
        visited = {node}
        queue: deque[int] = deque((node,))
        complete = True
        while queue:
            current = queue.popleft()
            if not self._expanded[current]:
                complete = False
                continue
            for _event, target in self.successors[current]:
                if target not in visited:
                    visited.add(target)
                    queue.append(target)
        return GrowthResult(
            root=node, nodes=frozenset(visited), complete=complete
        )

    # -- reverse reachability ----------------------------------------------------

    def _reverse_csr(self) -> tuple[array, array]:
        """The packed reverse adjacency, rebuilt lazily on growth."""
        if self._csr_version != self._version:
            n = len(self)
            counts = [0] * (n + 1)
            if self._codec is not None:
                edge_targets = self._store.edge_targets
                for source in range(n):
                    for target in edge_targets(source):
                        counts[target + 1] += 1
            else:
                for out in self.successors:
                    for _event, target in out:
                        counts[target + 1] += 1
            for i in range(n):
                counts[i + 1] += counts[i]
            indptr = array("l", counts)
            indices = array("l", bytes(indptr.itemsize * indptr[n]))
            cursor = counts[:n]
            if self._codec is not None:
                for source in range(n):
                    for target in edge_targets(source):
                        indices[cursor[target]] = source
                        cursor[target] += 1
            else:
                for source, out in enumerate(self.successors):
                    for _event, target in out:
                        indices[cursor[target]] = source
                        cursor[target] += 1
            self._rev_indptr = indptr
            self._rev_indices = indices
            self._csr_version = self._version
            self.stats.csr_rebuilds += 1
        assert self._rev_indptr is not None
        assert self._rev_indices is not None
        return self._rev_indptr, self._rev_indices

    def reaching_mask(self, targets: Iterable[int]) -> bytearray:
        """Flat visited map of all nodes with a path into *targets*.

        The returned ``bytearray`` has one byte per node id; byte ``i``
        is 1 iff node ``i`` reaches some target (targets included).
        This replaces the set-of-ints reverse BFS of
        :meth:`ConfigurationGraph.nodes_reaching`: same relation, flat
        memory, no per-element hashing.
        """
        started = time.perf_counter()
        indptr, indices = self._reverse_csr()
        mask = bytearray(len(self))
        stack: list[int] = []
        for target in targets:
            if not mask[target]:
                mask[target] = 1
                stack.append(target)
        while stack:
            node = stack.pop()
            for i in range(indptr[node], indptr[node + 1]):
                predecessor = indices[i]
                if not mask[predecessor]:
                    mask[predecessor] = 1
                    stack.append(predecessor)
        self.stats.reach_calls += 1
        self.stats.reach_time += time.perf_counter() - started
        return mask

    def nodes_reaching(self, targets: Iterable[int]) -> set[int]:
        """Set view of :meth:`reaching_mask` (compatibility helper)."""
        mask = self.reaching_mask(targets)
        return {node for node, hit in enumerate(mask) if hit}
