"""flpkit command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the protocol catalog.
``check <protocol>``
    Partial correctness + validity + initial-hypercube valency census.
``attack <protocol>``
    Run the FLP adversary and report the non-deciding run certificate,
    with admissibility accounting.
``simulate <protocol>``
    Forward-simulate under a chosen scheduler/crash plan.
``map <protocol>``
    Valency map of the reachable graph; optional DOT export.
``chaos <protocol>``
    Fault-injection suite: kill/hang pool workers, force batch
    timeouts, interrupt and resume — each must recover with a graph
    byte-identical to a clean run.
``experiments [ids...]``
    Alias for ``python -m repro.experiments``.
``serve``
    Run the exploration service: an HTTP daemon with a bounded job
    queue, per-job deadlines, crash recovery from a spool directory,
    and a persistent result cache.
``query <verb> <protocol>``
    Submit one job to a running daemon and wait for the result.

The exploration-backed commands (``check``, ``attack``, ``map``) accept
resilience flags: ``--checkpoint``/``--checkpoint-every`` snapshot the
engine periodically, ``--resume`` restores a snapshot, ``--max-seconds``
/ ``--max-memory-mb`` stop gracefully at a budget, and ``--batch-timeout``
bounds each parallel frontier batch.  ^C exits with status 130 after
printing the partial progress and the latest checkpoint path.
"""

from __future__ import annotations

import argparse
import sys

from repro import registry
from repro.adversary.flp import FLPAdversary
from repro.analysis.admissibility import analyze_admissibility
from repro.analysis.stats import format_counters, format_table
from repro.analysis.valency_map import build_valency_map
from repro.core.correctness import (
    check_determinism,
    check_partial_correctness,
    check_validity,
)
from repro.core.errors import (
    AdversaryStuck,
    CheckpointError,
    SymmetryError,
)
from repro.core.resilience import (
    CHAOS_SCENARIOS,
    CheckpointConfig,
    ResilienceConfig,
    run_chaos_suite,
)
from repro.core.simulation import StopCondition, simulate
from repro.core.store import DEFAULT_SPILL_BUDGET_MB, StoreConfig
from repro.core.valency import ValencyAnalyzer
from repro.schedulers import CrashPlan, RandomScheduler, RoundRobinScheduler

__all__ = ["main"]

#: Batch deadline applied when ``--workers`` is given without an
#: explicit ``--batch-timeout``: generous enough that no legitimate
#: level trips it, tight enough that a SIGKILLed worker (whose batch
#: never completes) is detected instead of hanging the run forever.
DEFAULT_BATCH_TIMEOUT_S = 60.0

#: The analyzer serving the current command, for the ^C handler.
_ACTIVE: ValencyAnalyzer | None = None


def _parse_inputs(text: str | None, n: int) -> list[int]:
    if text is None:
        return [i % 2 for i in range(n)]
    bits = [int(c) for c in text if c in "01"]
    if len(bits) != n:
        raise SystemExit(
            f"--inputs must supply exactly {n} bits, got {text!r}"
        )
    return bits


def _print_engine_stats(analyzer: ValencyAnalyzer) -> None:
    """Dump the shared configuration-graph engine's counters."""
    # analyzer.stats mirrors the TransitionCache and packed-codec
    # counters on read, so as_dict() is the complete picture.
    counters = analyzer.stats.as_dict()
    print()
    print(format_counters(counters, title="engine counters:"))


def _reduction_policy(args):
    """The :class:`ReductionPolicy` requested by the command's flags."""
    por = getattr(args, "por", False)
    symmetry = getattr(args, "symmetry", False)
    brute = getattr(args, "symmetry_brute", False)
    if not (por or symmetry or brute):
        return None
    from repro.core.reduction import ReductionPolicy

    return ReductionPolicy(
        por=por,
        symmetry=symmetry or brute,
        symmetry_algorithm="brute" if brute else "refine",
    )


def _make_analyzer(protocol, args) -> ValencyAnalyzer:
    """Build the analyzer honoring the command's engine flags."""
    global _ACTIVE
    workers = getattr(args, "workers", 0)
    batch_timeout = getattr(args, "batch_timeout", None)
    if batch_timeout is None and workers > 1:
        batch_timeout = DEFAULT_BATCH_TIMEOUT_S
    store_mode = getattr(args, "store", "ram")
    memory_mb = getattr(args, "max_memory_mb", None)
    if store_mode == "mmap":
        # The budget *drives the spill* instead of stopping the run:
        # past it, the flat buffers move to mmap-backed temp files and
        # exploration continues, so the RSS guard is not armed.
        store = StoreConfig(
            mode="mmap",
            spill_budget_mb=(
                memory_mb if memory_mb else DEFAULT_SPILL_BUDGET_MB
            ),
        )
        memory_guard_mb = None
    else:
        store = StoreConfig(mode="ram")
        memory_guard_mb = memory_mb
    resilience = ResilienceConfig(
        batch_timeout_s=batch_timeout,
        wall_clock_limit_s=getattr(args, "max_seconds", None),
        memory_limit_mb=memory_guard_mb,
    )
    checkpoint = None
    path = getattr(args, "checkpoint", None)
    if path:
        checkpoint = CheckpointConfig(
            path=path,
            every_seconds=getattr(args, "checkpoint_every", 30.0),
        )
    analyzer = ValencyAnalyzer(
        protocol,
        workers=workers,
        resilience=resilience,
        checkpoint=checkpoint,
        resume_from=getattr(args, "resume", None),
        reduction=_reduction_policy(args),
        store=store,
        kernel=getattr(args, "kernel", True),
    )
    _ACTIVE = analyzer
    return analyzer


def _cmd_list(_args) -> int:
    rows = []
    for name in registry.names():
        entry = registry.info(name)
        rows.append(
            {
                "name": entry.name,
                "N": entry.default_n,
                "safe": entry.safe,
                "order-sensitive": entry.order_sensitive,
                "analyzable": entry.analyzable,
                "description": entry.description,
            }
        )
    print(format_table(rows))
    return 0


def _cmd_check(args) -> int:
    entry = registry.info(args.protocol)
    protocol = entry.build(args.n)
    print(f"protocol: {protocol}")
    determinism = check_determinism(protocol)
    print(f"determinism: {determinism.summary()}")
    if entry.analyzable:
        report = check_partial_correctness(protocol)
        print(f"partial correctness: {report.summary()}")
        validity = check_validity(protocol)
        print(f"validity: {'holds' if validity.valid else 'VIOLATED'}")
        analyzer = _make_analyzer(protocol, args)
        rows = [
            {
                "inputs": "".join(str(b) for b in vector),
                "valency": valency.value,
            }
            for vector, valency in sorted(
                analyzer.classify_initials().items()
            )
        ]
        print()
        print("initial-configuration valencies:")
        print(format_table(rows))
        if args.stats:
            _print_engine_stats(analyzer)
        analyzer.close()
        return 0 if report.is_partially_correct else 1

    # Unbounded state space: exhaustive checking is infeasible, so run
    # a simulation sweep instead — every input vector under a fair
    # scheduler and a few random ones — checking agreement, validity,
    # and that both decision values occur.  Honest but not exhaustive.
    print(
        "(unbounded state space: exhaustive checking skipped; running "
        "a simulation sweep instead)"
    )
    values_seen: set[int] = set()
    agreement_ok = True
    validity_ok = True
    runs = 0
    n = protocol.num_processes
    for bits in range(2**n):
        inputs = [(bits >> i) & 1 for i in range(n)]
        for scheduler in (
            RoundRobinScheduler(),
            RandomScheduler(seed=bits),
        ):
            result = simulate(
                protocol,
                protocol.initial_configuration(inputs),
                scheduler,
                max_steps=4000,
                stop=StopCondition.ALL_DECIDED,
            )
            runs += 1
            values_seen |= result.decision_values
            agreement_ok = agreement_ok and result.agreement_holds
            validity_ok = validity_ok and (
                result.decision_values <= set(inputs)
            )
    both = values_seen == {0, 1}
    print(
        f"simulation sweep over {runs} runs: agreement="
        f"{agreement_ok}, validity={validity_ok}, "
        f"both-values-reachable={both}"
    )
    if args.stats:
        print(
            "(no engine counters: the simulation sweep does not use "
            "the exploration engine)"
        )
    return 0 if agreement_ok and validity_ok and both else 1


def _cmd_attack(args) -> int:
    # --symmetry is fine here: quotient edges record the renaming they
    # applied, so the adversary's schedules are un-quotiented back to
    # concrete replayable runs before they leave the engine.
    entry = registry.info(args.protocol)
    if not entry.analyzable:
        print(
            f"{entry.name} has an unbounded state space; the adversary "
            "needs exact valency analysis.  Pick an analyzable protocol "
            "(see `list`).",
            file=sys.stderr,
        )
        return 2
    protocol = entry.build(args.n)
    adversary = FLPAdversary(protocol, analyzer=_make_analyzer(protocol, args))
    try:
        certificate = adversary.build_run(stages=args.stages)
    except AdversaryStuck as error:
        print(f"adversary stuck: {error}", file=sys.stderr)
        return 1
    print(f"protocol: {protocol}")
    print(f"outcome:  {certificate.summary()}")
    faulty = (
        frozenset({certificate.faulty_process})
        if certificate.faulty_process
        else frozenset()
    )
    admissibility = analyze_admissibility(
        protocol,
        certificate.initial,
        certificate.schedule,
        faulty=faulty,
        fault_point=certificate.fault_point,
    )
    print(f"fairness: {admissibility.summary()}")
    verified = certificate.verify(protocol)
    print(f"verified by replay: {verified}")
    if args.trace:
        from repro.analysis.trace import trace_run

        trace = trace_run(
            protocol, certificate.initial, certificate.schedule
        )
        print()
        print(trace.describe(limit=args.trace))
    if args.spacetime:
        from repro.analysis.spacetime import spacetime_diagram

        print()
        print(
            spacetime_diagram(
                protocol,
                certificate.initial,
                certificate.schedule,
                max_rows=args.spacetime,
            )
        )
    if args.save:
        from repro.adversary.bundle import export_bundle

        with open(args.save, "w") as handle:
            handle.write(
                export_bundle(args.protocol, certificate, protocol)
            )
        print(f"proof bundle written to {args.save}")
    if args.stats:
        _print_engine_stats(adversary.analyzer)
    adversary.analyzer.close()
    return 0 if verified else 1


def _cmd_verify(args) -> int:
    from repro.adversary.bundle import verify_bundle
    from repro.core.errors import FLPError

    with open(args.bundle) as handle:
        text = handle.read()
    try:
        report = verify_bundle(text)
    except (FLPError, ValueError, KeyError) as error:
        print(f"REJECTED: {error}", file=sys.stderr)
        return 1
    print(report.summary())
    return 0 if report.verified else 1


def _cmd_simulate(args) -> int:
    entry = registry.info(args.protocol)
    protocol = entry.build(args.n)
    inputs = _parse_inputs(args.inputs, protocol.num_processes)
    crash_plan = CrashPlan(
        dict(
            (spec.split("@")[0], int(spec.split("@")[1]))
            for spec in (args.crash or [])
        )
    )
    if args.scheduler == "round-robin":
        scheduler = RoundRobinScheduler(crash_plan=crash_plan)
    else:
        scheduler = RandomScheduler(seed=args.seed, crash_plan=crash_plan)
    result = simulate(
        protocol,
        protocol.initial_configuration(inputs),
        scheduler,
        max_steps=args.max_steps,
        stop=StopCondition.ALL_DECIDED,
    )
    print(f"protocol: {protocol}  inputs={inputs}")
    print(
        f"stop: {result.stop_reason} after {result.steps} steps; "
        f"decisions: {result.decisions or 'none'}"
    )
    print(f"agreement: {'holds' if result.agreement_holds else 'VIOLATED'}")
    return 0


def _cmd_map(args) -> int:
    entry = registry.info(args.protocol)
    if not entry.analyzable:
        print(f"{entry.name} is not analyzable", file=sys.stderr)
        return 2
    protocol = entry.build(args.n)
    inputs = _parse_inputs(args.inputs, protocol.num_processes)
    root = protocol.initial_configuration(inputs)
    analyzer = _make_analyzer(protocol, args)
    vmap = build_valency_map(protocol, root, analyzer=analyzer)
    print(f"protocol: {protocol}  inputs={inputs}")
    print(vmap.summary())
    if args.hypercube:
        from repro.analysis.diagrams import hypercube_diagram

        print()
        print(hypercube_diagram(analyzer.classify_initials()))
    if args.dot:
        from repro.analysis.diagrams import graph_to_dot
        from repro.core.exploration import explore

        graph = explore(protocol, root)
        with open(args.dot, "w") as handle:
            handle.write(graph_to_dot(graph, analyzer))
        print(f"wrote {args.dot}")
    if args.stats:
        _print_engine_stats(analyzer)
    analyzer.close()
    return 0


def _cmd_chaos(args) -> int:
    entry = registry.info(args.protocol)
    protocol = entry.build(args.n)
    scenarios = (
        tuple(args.scenarios) if args.scenarios else CHAOS_SCENARIOS
    )
    print(
        f"protocol: {protocol}  workers={args.workers}  "
        f"budget={args.max_configurations}"
    )
    outcomes = run_chaos_suite(
        protocol,
        workers=args.workers,
        scenarios=scenarios,
        max_configurations=args.max_configurations,
        protocol_name=args.protocol,
    )
    print(format_table([outcome.as_row() for outcome in outcomes]))
    failed = [outcome for outcome in outcomes if not outcome.ok]
    if failed:
        names = ", ".join(outcome.scenario for outcome in failed)
        print(f"FAILED scenarios: {names}", file=sys.stderr)
        return 1
    print("all scenarios recovered with byte-identical fingerprints")
    return 0


def _cmd_survive(args) -> int:
    from repro.faults.survivability import (
        FAULT_MODELS,
        check_expectations,
        survivability_matrix,
    )

    if getattr(args, "por", False) or getattr(args, "symmetry", False):
        print(
            "note: --por/--symmetry shape the exploration engine; "
            "survive is simulation-based and runs unreduced."
        )
    protocols = [args.protocol] if args.protocol else None
    fault_models = (
        tuple(args.fault_models) if args.fault_models else FAULT_MODELS
    )
    cells = survivability_matrix(
        protocols,
        fault_models,
        n=args.n,
        seeds=args.seeds,
        max_steps=args.max_steps,
    )
    rows = [
        {
            "protocol": cell.protocol,
            "fault model": cell.model,
            "agreement": cell.agreement,
            "validity": cell.validity,
            "termination": cell.termination,
            "admissible": f"{cell.admissible_runs}/{cell.runs}",
            "flagged clauses": ",".join(sorted(cell.flagged)) or "-",
        }
        for cell in cells
    ]
    print(format_table(rows))
    witnesses = [cell for cell in cells if cell.witness]
    if witnesses:
        print("\nwitnesses:")
        for cell in witnesses:
            print(f"  {cell.protocol} × {cell.model}: {cell.witness}")
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(
                {"cells": [cell.as_dict() for cell in cells]},
                handle,
                indent=2,
            )
        print(f"\nwrote {args.json}")
    failures = check_expectations(cells)
    if failures:
        print(
            "survivability expectations FAILED:\n  "
            + "\n  ".join(failures),
            file=sys.stderr,
        )
        return 1
    print("\nall survivability expectations hold")
    return 0


def _cmd_spectrum(args) -> int:
    import dataclasses
    import json

    from repro.spectrum import (
        SweepRunner,
        check_phase_expectations,
        default_grid,
        smoke_grid,
    )

    cells = smoke_grid() if args.preset == "smoke" else default_grid()
    if args.samples is not None:
        cells = [
            dataclasses.replace(cell, samples=args.samples)
            for cell in cells
        ]
    runner = SweepRunner(
        cells,
        base_seed=args.seed,
        workers=max(1, args.workers),
        checkpoint_path=args.checkpoint,
        max_seconds=args.max_seconds,
        max_memory_mb=args.max_memory_mb,
        throttle_s=args.throttle_s,
    )
    try:
        result = runner.run()
    except KeyboardInterrupt:
        runner.request_stop("interrupt")
        print("interrupted", file=sys.stderr)
        if args.checkpoint:
            print(
                f"resume with the same command; completed cells are in "
                f"{args.checkpoint}",
                file=sys.stderr,
            )
        return 130

    rows = []
    for key in sorted(result.outcomes):
        outcome = result.outcomes[key]
        cell = outcome.cell
        low, high = outcome.termination_ci
        rows.append(
            {
                "cell": (
                    f"{cell.protocol}/n{cell.n}/f{cell.f} {cell.grade} "
                    f"gst={'inf' if cell.gst is None else cell.gst} "
                    f"det={cell.detector}"
                ),
                "samples": cell.samples,
                "terminated": (
                    f"{outcome.termination_rate:.3f} "
                    f"[{low:.3f},{high:.3f}]"
                ),
                "rounds": (
                    "-"
                    if outcome.mean_rounds is None
                    else f"{outcome.mean_rounds:.2f}"
                ),
                "post-GST": (
                    "-"
                    if outcome.max_post_gst is None
                    else outcome.max_post_gst
                ),
                "violations": outcome.agreement_violations
                + outcome.validity_violations,
            }
        )
    print(format_table(rows))
    print(
        f"\n{len(result.outcomes)}/{result.total_cells} cells "
        f"(resumed {result.resumed_cells}), seed={result.base_seed}"
    )
    print(f"fingerprint: {result.fingerprint()}")
    if result.partial is not None:
        print(result.partial.summary())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    violations = check_phase_expectations(result)
    if violations:
        print(
            "phase expectations FAILED:\n  " + "\n  ".join(violations),
            file=sys.stderr,
        )
        if args.check:
            return 1
    elif args.check and not result.complete:
        print(
            "phase check requires a complete sweep; this one is partial",
            file=sys.stderr,
        )
        return 1
    else:
        print("phase expectations hold on all completed cells")
    return 0


def _cmd_experiments(args) -> int:
    from repro.experiments.__main__ import main as experiments_main

    argv = list(args.ids)
    if args.full:
        argv.append("--full")
    return experiments_main(argv)


def _cmd_serve(args) -> int:
    import asyncio
    import logging

    from repro.serve.server import ServeApp, ServeConfig

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    app = ServeApp(
        ServeConfig(
            host=args.host,
            port=args.port,
            spool=args.spool,
            max_pending=args.max_pending,
            job_workers=args.job_workers,
            checkpoint_every_s=args.checkpoint_every,
            drain_timeout_s=args.drain_timeout,
        )
    )
    asyncio.run(app.run())
    return 0


def _cmd_query(args) -> int:
    import json

    from repro.serve.client import ServeClient

    spec: dict[str, object] = {"verb": args.verb, "protocol": args.protocol}
    optional = {
        "n": args.n,
        "inputs": args.inputs,
        "budget": args.budget,
        "stages": args.stages,
        "max_seconds": args.max_seconds,
        "max_memory_mb": args.max_memory_mb,
        "seeds": args.seeds,
        "max_steps": args.max_steps,
        "preset": args.preset,
        "samples": args.samples,
        "seed": args.seed,
    }
    spec.update(
        {name: value for name, value in optional.items() if value is not None}
    )
    if args.por:
        spec["por"] = True
    if args.symmetry:
        spec["symmetry"] = True
    try:
        if args.port is not None:
            client = ServeClient(args.host, args.port, args.timeout)
        else:
            client = ServeClient.from_spool(args.spool, args.timeout)
        response = client.query(spec, retry=not args.no_retry)
    except (ConnectionError, OSError, TimeoutError) as error:
        print(f"cannot reach daemon: {error}", file=sys.stderr)
        return 2
    cache = response.headers.get("x-repro-cache", "?")
    if response.status != 200:
        print(
            f"query failed ({response.status}): "
            f"{response.body.decode(errors='replace')}",
            file=sys.stderr,
        )
        return 1
    try:
        print(json.dumps(json.loads(response.body), indent=2, sort_keys=True))
    except ValueError:
        sys.stdout.buffer.write(response.body + b"\n")
    print(f"[{cache}]", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="flpkit: executable FLP impossibility toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="show the protocol catalog")

    stats_help = "print shared-engine counters (interning, cache, phases)"
    workers_help = (
        "expand exploration frontiers on N worker processes "
        "(default serial; results are byte-identical either way)"
    )

    def add_reduction_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--por",
            action=argparse.BooleanOptionalAction,
            default=False,
            help="Lemma-1 partial-order reduction: expand an ample "
            "subset of events per node (default off; valency verdicts "
            "are identical to the full graph)",
        )
        sub.add_argument(
            "--symmetry",
            action="store_true",
            help="canonicalize configurations under process renaming "
            "via partition refinement (needs the protocol's automata "
            "to declare symmetric=True; witnesses and attacks are "
            "un-quotiented back to concrete replayable schedules)",
        )
        sub.add_argument(
            "--symmetry-brute",
            action="store_true",
            help="use the n!-enumeration canonicalizer instead of "
            "partition refinement (cross-check oracle for small "
            "rosters; implies --symmetry)",
        )

    def add_resilience_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--checkpoint",
            metavar="PATH",
            help="periodically snapshot the exploration engine to PATH "
            "(atomic; also written on ^C and budget stops)",
        )
        sub.add_argument(
            "--checkpoint-every",
            type=float,
            default=30.0,
            metavar="SECONDS",
            help="checkpoint cadence in seconds (default 30)",
        )
        sub.add_argument(
            "--resume",
            metavar="PATH",
            help="restore the exploration engine from a checkpoint "
            "before running (resumed runs are byte-identical to "
            "uninterrupted ones)",
        )
        sub.add_argument(
            "--max-seconds",
            type=float,
            default=None,
            metavar="S",
            help="stop exploring gracefully after S seconds of graph "
            "growth (final checkpoint + partial result, not a crash)",
        )
        sub.add_argument(
            "--max-memory-mb",
            type=float,
            default=None,
            metavar="MB",
            help="memory budget in MB: with --store ram, stop exploring "
            "gracefully once peak RSS exceeds it; with --store mmap, "
            "spill the flat node/edge buffers to disk past it and keep "
            "exploring",
        )
        sub.add_argument(
            "--store",
            choices=("ram", "mmap"),
            default="ram",
            metavar="MODE",
            help="graph-store backing: 'ram' keeps the flat buffers in "
            "memory; 'mmap' spills them to memory-mapped temp files "
            "past the --max-memory-mb budget (default "
            f"{DEFAULT_SPILL_BUDGET_MB:g} MB), letting multi-million-"
            "node graphs exceed RAM (default: ram)",
        )
        sub.add_argument(
            "--batch-timeout",
            type=float,
            default=None,
            metavar="S",
            help="seconds to wait for one parallel frontier batch "
            f"before rebuilding the pool (default "
            f"{DEFAULT_BATCH_TIMEOUT_S:g} when --workers > 1)",
        )

    def add_engine_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--no-kernel",
            dest="kernel",
            action="store_false",
            default=True,
            help="disable the batched transition kernel and expand "
            "frontiers through the scalar per-configuration step path "
            "(slower; results are byte-identical either way)",
        )
        sub.add_argument(
            "--profile",
            type=int,
            default=0,
            metavar="N",
            help="run under cProfile and print the top N functions by "
            "cumulative time after the command finishes",
        )

    check = commands.add_parser("check", help="correctness + valency census")
    check.add_argument("protocol", choices=registry.names())
    check.add_argument("-n", type=int, default=None)
    check.add_argument("--stats", action="store_true", help=stats_help)
    check.add_argument(
        "--workers", type=int, default=0, metavar="N", help=workers_help
    )
    add_reduction_flags(check)
    add_resilience_flags(check)
    add_engine_flags(check)

    attack = commands.add_parser("attack", help="run the FLP adversary")
    attack.add_argument("protocol", choices=registry.names())
    attack.add_argument("-n", type=int, default=None)
    attack.add_argument("--stages", type=int, default=20)
    attack.add_argument(
        "--trace",
        type=int,
        default=0,
        metavar="K",
        help="print the first K steps of the run",
    )
    attack.add_argument(
        "--spacetime",
        type=int,
        default=0,
        metavar="K",
        help="print a space-time diagram of the first K steps",
    )
    attack.add_argument(
        "--save",
        metavar="PATH",
        help="write a portable proof bundle (JSON) to PATH",
    )
    attack.add_argument("--stats", action="store_true", help=stats_help)
    attack.add_argument(
        "--workers", type=int, default=0, metavar="N", help=workers_help
    )
    add_reduction_flags(attack)
    add_resilience_flags(attack)
    add_engine_flags(attack)

    verify = commands.add_parser(
        "verify",
        help="re-verify a proof bundle produced by `attack --save`",
    )
    verify.add_argument("bundle", help="path to the bundle JSON")

    sim = commands.add_parser("simulate", help="forward simulation")
    sim.add_argument("protocol", choices=registry.names())
    sim.add_argument("-n", type=int, default=None)
    sim.add_argument("--inputs", help="bit string, one per process")
    sim.add_argument(
        "--scheduler", choices=("round-robin", "random"),
        default="round-robin",
    )
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--max-steps", type=int, default=2000)
    sim.add_argument(
        "--crash",
        action="append",
        metavar="PROC@STEP",
        help="crash PROC at STEP (repeatable)",
    )

    vmap = commands.add_parser("map", help="valency map of reachable graph")
    vmap.add_argument("protocol", choices=registry.names())
    vmap.add_argument("-n", type=int, default=None)
    vmap.add_argument("--inputs")
    vmap.add_argument("--dot", help="write Graphviz DOT to this path")
    vmap.add_argument(
        "--hypercube",
        action="store_true",
        help="also print the Lemma-2 initial hypercube (Gray-code walk)",
    )
    vmap.add_argument("--stats", action="store_true", help=stats_help)
    vmap.add_argument(
        "--workers", type=int, default=0, metavar="N", help=workers_help
    )
    add_reduction_flags(vmap)
    add_resilience_flags(vmap)
    add_engine_flags(vmap)

    chaos = commands.add_parser(
        "chaos",
        help="fault-injection suite: kill/hang workers, force timeouts, "
        "interrupt + resume; recovery must be byte-identical",
    )
    chaos.add_argument("protocol", choices=registry.names())
    chaos.add_argument("-n", type=int, default=None)
    chaos.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="pool size for the worker-fault scenarios (default 2; "
        "<= 1 skips them)",
    )
    chaos.add_argument(
        "--max-configurations",
        type=int,
        default=8_000,
        metavar="K",
        help="exploration budget per scenario run (default 8000)",
    )
    chaos.add_argument(
        "--scenarios",
        nargs="*",
        choices=CHAOS_SCENARIOS,
        metavar="NAME",
        help=f"subset of scenarios to run (default: all of "
        f"{', '.join(CHAOS_SCENARIOS)})",
    )

    survive = commands.add_parser(
        "survive",
        help="survivability matrix: sweep protocols × fault models, "
        "audit every run, check the paper's predictions",
    )
    survive.add_argument(
        "protocol",
        nargs="?",
        choices=registry.names(),
        help="one protocol (default: the whole zoo)",
    )
    survive.add_argument("-n", type=int, default=None)
    survive.add_argument(
        "--fault-models",
        nargs="*",
        metavar="MODEL",
        help="subset of fault models to sweep (default: all)",
    )
    survive.add_argument(
        "--seeds",
        type=int,
        default=1,
        metavar="K",
        help="random-scheduler seeds per plan (default 1; round-robin "
        "always runs too)",
    )
    survive.add_argument(
        "--max-steps",
        type=int,
        default=800,
        metavar="N",
        help="step budget per run; an undecided run at the budget "
        "marks the cell stalled (default 800)",
    )
    survive.add_argument(
        "--json",
        metavar="PATH",
        help="also write the matrix as machine-readable JSON",
    )
    add_reduction_flags(survive)

    spectrum = commands.add_parser(
        "spectrum",
        help="Monte-Carlo resilience sweep over (protocol, n, f, "
        "adversary grade, GST, detector): termination probability and "
        "rounds-to-decide with confidence intervals",
    )
    spectrum.add_argument(
        "--preset",
        choices=("smoke", "default"),
        default="default",
        help="grid preset: 'default' is the full phase diagram, "
        "'smoke' a seconds-scale slice with the same headline cells",
    )
    spectrum.add_argument(
        "--samples",
        type=int,
        default=None,
        metavar="K",
        help="override the per-cell sample count",
    )
    spectrum.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="base seed; every run is a pure function of "
        "(seed, cell, sample index) (default 0)",
    )
    spectrum.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="fan cells out over N worker processes (default serial; "
        "fingerprints are byte-identical either way)",
    )
    spectrum.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="checkpoint completed cells to PATH (atomic, per cell); "
        "rerunning with the same grid and seed resumes from it",
    )
    spectrum.add_argument(
        "--json",
        metavar="PATH",
        help="write the full sweep result (cells + fingerprint) as JSON",
    )
    spectrum.add_argument(
        "--check",
        action="store_true",
        help="gate the paper's phase-boundary expectations: exit 1 "
        "on any violation or an incomplete sweep",
    )
    spectrum.add_argument("--max-seconds", type=float, default=None,
                          metavar="S",
                          help="wall-clock budget: stop at the next cell "
                          "boundary with a partial result")
    spectrum.add_argument("--max-memory-mb", type=float, default=None,
                          metavar="MB",
                          help="memory budget: stop at the next cell "
                          "boundary once peak RSS exceeds it")
    spectrum.add_argument(
        "--throttle-s",
        type=float,
        default=0.0,
        help=argparse.SUPPRESS,  # chaos-harness knob: sleep per cell
    )

    experiments = commands.add_parser(
        "experiments", help="run the paper-reproduction experiments"
    )
    experiments.add_argument("ids", nargs="*")
    experiments.add_argument("--full", action="store_true")

    serve = commands.add_parser(
        "serve",
        help="run the exploration service: jobs over HTTP with admission "
        "control, deadlines, crash recovery, and a result cache",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (default 0: pick a free port and record it "
        "in <spool>/endpoint.json)",
    )
    serve.add_argument(
        "--spool",
        default=".repro-spool",
        metavar="DIR",
        help="crash-safe state directory: job records, checkpoints, "
        "results, cache (default .repro-spool)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=16,
        metavar="N",
        help="admission limit on queued+running jobs; beyond it new "
        "submissions get 429 (default 16)",
    )
    serve.add_argument(
        "--job-workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent job executions (default 2)",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="per-job engine checkpoint cadence (default 1.0)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="max wait for running jobs to checkpoint on shutdown "
        "(default 30)",
    )

    query = commands.add_parser(
        "query",
        help="submit one job to a running serve daemon and wait for "
        "the result",
    )
    query.add_argument(
        "verb", choices=("check", "attack", "map", "survive", "spectrum")
    )
    query.add_argument(
        "protocol",
        choices=tuple(registry.names())
        + tuple(
            name
            for name in ("all", "rotating")
            if name not in registry.names()
        ),
        help="a registry protocol, or a family filter (all/benor/"
        "rotating) for the spectrum verb",
    )
    query.add_argument("-n", type=int, default=None)
    query.add_argument("--inputs", default=None, metavar="BITS")
    query.add_argument("--budget", type=int, default=None, metavar="K")
    query.add_argument("--stages", type=int, default=None, metavar="K")
    query.add_argument("--max-seconds", type=float, default=None)
    query.add_argument("--max-memory-mb", type=float, default=None)
    query.add_argument("--seeds", type=int, default=None, metavar="K")
    query.add_argument("--max-steps", type=int, default=None, metavar="N")
    query.add_argument(
        "--preset",
        choices=("smoke", "default"),
        default=None,
        help="spectrum grid preset (spectrum verb only)",
    )
    query.add_argument(
        "--samples",
        type=int,
        default=None,
        metavar="K",
        help="override Monte-Carlo samples per cell (spectrum verb only)",
    )
    query.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="SEED",
        help="sweep base seed (spectrum verb only)",
    )
    query.add_argument(
        "--no-retry",
        action="store_true",
        help="fail immediately on 429 instead of honoring Retry-After "
        "with bounded jittered backoff",
    )
    add_reduction_flags(query)
    query.add_argument(
        "--spool",
        default=".repro-spool",
        metavar="DIR",
        help="find the daemon via <spool>/endpoint.json (default "
        ".repro-spool)",
    )
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument(
        "--port",
        type=int,
        default=None,
        help="connect directly instead of reading endpoint.json",
    )
    query.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="client-side wait for the synchronous result (default 300)",
    )

    return parser


_HANDLERS = {
    "list": _cmd_list,
    "check": _cmd_check,
    "attack": _cmd_attack,
    "simulate": _cmd_simulate,
    "map": _cmd_map,
    "chaos": _cmd_chaos,
    "verify": _cmd_verify,
    "survive": _cmd_survive,
    "spectrum": _cmd_spectrum,
    "experiments": _cmd_experiments,
    "serve": _cmd_serve,
    "query": _cmd_query,
}


def _interrupt_summary() -> str:
    """Partial-progress report for a ^C, from the active analyzer."""
    lines = ["interrupted"]
    analyzer = _ACTIVE
    if analyzer is not None:
        graph = analyzer.graph
        partial = graph.last_partial
        if partial is not None:
            lines.append(partial.summary())
        else:
            lines.append(
                f"explored {len(graph)} configurations before the "
                "interrupt"
            )
        if graph.last_checkpoint is not None:
            lines.append(
                f"resume with: --resume {graph.last_checkpoint.path}"
            )
    return "\n".join(lines)


def _run_profiled(handler, args) -> int:
    """Run *handler* under cProfile, then print the top-N cumulative."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    try:
        return profiler.runcall(handler, args)
    finally:
        print()
        print(f"profile (top {args.profile} by cumulative time):")
        pstats.Stats(profiler, stream=sys.stdout).sort_stats(
            "cumulative"
        ).print_stats(args.profile)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        handler = _HANDLERS[args.command]
        if getattr(args, "profile", 0) > 0:
            return _run_profiled(handler, args)
        return handler(args)
    except CheckpointError as error:
        # A checkpoint from another protocol / engine mode (or a
        # damaged file) is an operator mistake, not a crash: one line,
        # no traceback.
        message = str(error).replace("\n", " ")
        print(f"cannot resume: {message}", file=sys.stderr)
        return 2
    except SymmetryError as error:
        # --symmetry on a protocol that never declared it: operator
        # mistake, one line, no traceback.
        message = str(error).replace("\n", " ")
        print(f"cannot reduce: {message}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # The engine already wrote its final checkpoint (explore()
        # catches the interrupt first); report progress and exit with
        # the conventional SIGINT status.
        print(_interrupt_summary(), file=sys.stderr)
        if _ACTIVE is not None:
            _ACTIVE.close()
        return 130
