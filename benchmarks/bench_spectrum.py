"""Benchmark + artifact for the Monte-Carlo resilience workbench.

``BENCH_spectrum.json`` records the phase diagram of experiment E9 —
the default grid's termination probabilities and rounds-to-decide with
confidence intervals — plus the robustness claims the sweep runtime
makes, each checked at emission time rather than merely measured:

* **phase boundary** — Ben-Or decides in every sampled run for
  ``f < n/2`` under the oblivious adversary and degrades under the
  adaptive one; the rotating coordinator decides within ``f + 1``
  rounds after a finite GST; the GST = ∞ deterministic cell never
  terminates (FLP);
* **resume identity** — a sweep assembled from a partial checkpoint
  plus a resumed remainder fingerprints byte-identically to an
  uninterrupted run;
* **sweep-kill** — the subprocess SIGKILL harness recovers with a
  matching fingerprint;
* **parallel fan-out** — wall time serial vs 4 workers.  On a runner
  with fewer cores than workers the timing is *skipped* with an honest
  marker (oversubscription numbers are not data); the > 2x gate applies
  only where the hardware can express it.

Run directly to emit the artifact; ``--smoke`` checks the seconds-scale
grid and writes nothing; ``--ci`` regenerates the artifact and fails
the build on any violated claim.
"""

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.spectrum.chaos import run_sweep_kill
from repro.spectrum.montecarlo import (
    SweepRunner,
    check_phase_expectations,
    default_grid,
    smoke_grid,
)

from artifact import write_artifact

#: Cells whose headline numbers the artifact calls out.
_HEADLINES = (
    ("benor/n5/f2 oblivious", "benor/n5/f2/oblivious"),
    ("benor/n5/f2 adaptive", "benor/n5/f2/adaptive"),
    ("benor/n5/f3 adaptive", "benor/n5/f3/adaptive"),
    ("rotating gst=4 adaptive det=none",
     "rotating/n5/f2/adaptive/p1/gst-4/det-none"),
    ("rotating gst=inf adaptive det=none",
     "rotating/n5/f2/adaptive/p1/gst-inf/det-none"),
)


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (interactive measurement)
# ---------------------------------------------------------------------------


def test_smoke_sweep(benchmark):
    result = benchmark(lambda: SweepRunner(smoke_grid()).run())
    assert result.complete
    assert check_phase_expectations(result) == []


def test_benor_cell(benchmark):
    from repro.spectrum.montecarlo import SpectrumCell, run_cell

    cell = SpectrumCell(
        protocol="benor", n=3, f=1, grade="adaptive", samples=40, horizon=40
    )
    outcome = benchmark(lambda: run_cell(cell))
    assert outcome.agreement_violations == 0


# ---------------------------------------------------------------------------
# Artifact sections
# ---------------------------------------------------------------------------


def collect_phase_diagram() -> dict:
    """The default grid, serial, with the paper's expectations checked."""
    started = time.perf_counter()
    result = SweepRunner(default_grid()).run()
    elapsed = time.perf_counter() - started
    violations = check_phase_expectations(result)
    headlines = {}
    for label, prefix in _HEADLINES:
        for key, outcome in result.outcomes.items():
            if key.startswith(prefix):
                headlines[label] = {
                    "termination_rate": outcome.termination_rate,
                    "termination_ci": [
                        round(x, 4) for x in outcome.termination_ci
                    ],
                    "mean_rounds": outcome.mean_rounds,
                    "max_post_gst": outcome.max_post_gst,
                }
    return {
        "cells": result.total_cells,
        "serial_s": round(elapsed, 3),
        "fingerprint": result.fingerprint(),
        "expectations_ok": not violations,
        "violations": violations,
        "headlines": headlines,
        "diagram": result.to_dict()["cells"],
    }


def collect_resume_identity(tmp_dir: str) -> dict:
    """Half a sweep checkpointed, the rest resumed: one fingerprint."""
    grid = smoke_grid()
    clean = SweepRunner(grid).run()
    checkpoint = os.path.join(tmp_dir, "resume.ckpt")
    SweepRunner(grid[: len(grid) // 2], checkpoint_path=checkpoint).run()
    resumed = SweepRunner(grid, checkpoint_path=checkpoint).run()
    return {
        "resumed_cells": resumed.resumed_cells,
        "clean_fingerprint": clean.fingerprint(),
        "resumed_fingerprint": resumed.fingerprint(),
        "match": resumed.fingerprint() == clean.fingerprint(),
    }


def collect_sweep_kill() -> dict:
    """The real-SIGKILL harness, recorded rather than only tested."""
    outcome = run_sweep_kill()
    return {
        "recovered": outcome.recovered,
        "fingerprint_match": outcome.fingerprint_match,
        **outcome.stats,
    }


def collect_parallel(workers: int = 4, force: bool = False) -> dict:
    """Serial vs fan-out wall time on the default grid.

    Skipped (honestly) when the machine has fewer cores than workers —
    a 1-core container can only measure pool overhead, and recording
    that as "speedup" would flatter nobody.
    """
    cpu_count = os.cpu_count() or 1
    section: dict = {"cpu_count": cpu_count, "workers": workers}
    if cpu_count < workers and not force:
        section["skipped"] = "cpu_count < workers"
        section["speedup"] = None
        return section
    grid = default_grid()
    started = time.perf_counter()
    serial = SweepRunner(grid).run()
    section["serial_s"] = round(time.perf_counter() - started, 3)
    started = time.perf_counter()
    parallel = SweepRunner(grid, workers=workers).run()
    section["parallel_s"] = round(time.perf_counter() - started, 3)
    section["speedup"] = round(
        section["serial_s"] / section["parallel_s"], 2
    )
    section["deterministic"] = (
        parallel.fingerprint() == serial.fingerprint()
    )
    return section


def _emit_artifact() -> tuple[Path, dict]:
    import tempfile

    with tempfile.TemporaryDirectory() as tmp_dir:
        sections = {
            "phase_diagram": collect_phase_diagram(),
            "resume_identity": collect_resume_identity(tmp_dir),
            "sweep_kill": collect_sweep_kill(),
            "parallel": collect_parallel(),
        }
    assert sections["phase_diagram"]["expectations_ok"], sections[
        "phase_diagram"
    ]["violations"]
    assert sections["resume_identity"]["match"], "resume diverged"
    assert sections["sweep_kill"]["fingerprint_match"], "sweep-kill diverged"
    path = write_artifact(sections, name="spectrum")
    print(f"wrote {path}")
    diagram = sections["phase_diagram"]
    print(
        f"phase diagram: {diagram['cells']} cells in "
        f"{diagram['serial_s']}s, expectations_ok="
        f"{diagram['expectations_ok']}"
    )
    for label, row in diagram["headlines"].items():
        print(
            f"  {label}: termination {row['termination_rate']:.3f} "
            f"mean_rounds {row['mean_rounds']}"
        )
    parallel = sections["parallel"]
    if parallel.get("skipped"):
        print(f"parallel: skipped ({parallel['skipped']})")
    else:
        print(
            f"parallel: {parallel['speedup']}x with "
            f"{parallel['workers']} workers"
        )
    return path, sections


def main(argv=None) -> int:
    import tempfile

    argv = sys.argv[1:] if argv is None else argv
    if "--smoke" in argv:
        # CI smoke: the seconds-scale grid plus resume identity; no
        # artifact is written.
        result = SweepRunner(smoke_grid()).run()
        violations = check_phase_expectations(result)
        assert result.complete and not violations, violations
        with tempfile.TemporaryDirectory() as tmp_dir:
            identity = collect_resume_identity(tmp_dir)
        assert identity["match"], "resume diverged"
        print(
            f"smoke ok: {result.total_cells} cells, "
            f"fingerprint {result.fingerprint()[:16]}, "
            f"resume match={identity['match']}"
        )
        return 0

    if "--ci" in argv:
        # CI gate: every recorded claim must hold; the parallel > 2x
        # bar applies only where the hardware can express it.
        path, sections = _emit_artifact()
        parallel = sections["parallel"]
        if parallel.get("skipped"):
            print(
                f"parallel gate skipped: cpu_count="
                f"{parallel['cpu_count']} < {parallel['workers']}; "
                "fan-out timing from this runner would be meaningless"
            )
        else:
            assert parallel["deterministic"], "parallel sweep diverged"
            assert parallel["speedup"] > 2.0, (
                f"4-worker sweep speedup {parallel['speedup']}x <= 2x"
            )
        print(f"ci gate ok: {path}")
        return 0

    _emit_artifact()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
