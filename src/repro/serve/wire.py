"""Wire schema of the exploration service.

Everything that crosses the HTTP boundary or lands in the spool is
defined here: :class:`JobSpec` (the validated request), :class:`JobRecord`
(the persisted lifecycle state), and :func:`cache_key` (the content hash
under which completed results are cached and deduplicated).

Validation is strict — unknown fields, wrong types, and unknown
protocols raise :class:`WireError`, which the server maps to a 400
instead of letting a malformed job into the queue.  Serialization is
canonical (sorted keys, fixed separators) so a record or result written
by one daemon process reads back identically in the next — the same
discipline the checkpoint headers use.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields

from repro import registry

__all__ = [
    "VERBS",
    "JOB_STATES",
    "WireError",
    "JobSpec",
    "JobRecord",
    "cache_key",
    "canonical_json",
]

#: Service verbs, mirroring the CLI commands they wrap.
VERBS = ("check", "attack", "map", "survive", "spectrum")

#: ``spectrum`` jobs take a protocol *family* (or "all"), not a
#: registry name — the grid spans families.
SPECTRUM_PROTOCOLS = ("all", "benor", "rotating")

#: Grid presets a ``spectrum`` job may request.
SPECTRUM_PRESETS = ("smoke", "default")

#: Lifecycle states of a job record.  ``queued`` and ``running`` are
#: the recoverable states — a restarted daemon requeues both.
JOB_STATES = ("queued", "running", "done", "failed")


class WireError(ValueError):
    """A malformed request or record; the server answers 400."""


def canonical_json(payload: object) -> bytes:
    """Stable serialization: sorted keys, fixed separators, UTF-8."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode()


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise WireError(message)


@dataclass(frozen=True)
class JobSpec:
    """One validated job request.

    ``budget`` caps the total configurations the job's engine may
    intern (the honest-partial-answer contract of ``explore``);
    ``max_seconds`` / ``max_memory_mb`` are *deadlines*: breaching one
    degrades the job to a partial result plus a final checkpoint
    instead of failing it.  Deadline fields never enter the cache key —
    a deadline-truncated answer is not cached, so two queries differing
    only in patience share one cached complete result.
    """

    verb: str
    protocol: str
    n: int | None = None
    inputs: str | None = None
    budget: int = 100_000
    stages: int = 20
    por: bool = False
    symmetry: bool = False
    max_seconds: float | None = None
    max_memory_mb: float | None = None
    seeds: int = 1
    max_steps: int = 800
    preset: str = "smoke"
    samples: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        _require(self.verb in VERBS, f"verb must be one of {VERBS}, got "
                 f"{self.verb!r}")
        if self.verb == "spectrum":
            _require(
                self.protocol in SPECTRUM_PROTOCOLS,
                f"spectrum takes a protocol family from "
                f"{SPECTRUM_PROTOCOLS}, got {self.protocol!r}",
            )
        else:
            _require(
                self.protocol in registry.names(),
                f"unknown protocol {self.protocol!r}; pick from "
                f"{registry.names()}",
            )
        _require(
            self.preset in SPECTRUM_PRESETS,
            f"preset must be one of {SPECTRUM_PRESETS}, "
            f"got {self.preset!r}",
        )
        _require(
            self.samples is None
            or (isinstance(self.samples, int) and self.samples >= 1),
            "samples must be a positive int",
        )
        _require(
            isinstance(self.seed, int) and not isinstance(self.seed, bool),
            "seed must be an int",
        )
        _require(
            self.n is None or (isinstance(self.n, int) and self.n >= 2),
            "n must be an int >= 2",
        )
        _require(
            isinstance(self.budget, int) and self.budget >= 1,
            "budget must be a positive int",
        )
        _require(
            isinstance(self.stages, int) and self.stages >= 1,
            "stages must be a positive int",
        )
        _require(
            isinstance(self.seeds, int) and self.seeds >= 1,
            "seeds must be a positive int",
        )
        _require(
            isinstance(self.max_steps, int) and self.max_steps >= 1,
            "max_steps must be a positive int",
        )
        for name in ("max_seconds", "max_memory_mb"):
            value = getattr(self, name)
            _require(
                value is None
                or (isinstance(value, (int, float)) and value > 0),
                f"{name} must be a positive number",
            )
        if self.inputs is not None:
            _require(
                isinstance(self.inputs, str)
                and self.inputs != ""
                and set(self.inputs) <= {"0", "1"},
                "inputs must be a nonempty string of 0/1 bits",
            )
        if self.verb == "spectrum":
            return
        entry = registry.info(self.protocol)
        if self.verb == "attack":
            _require(
                entry.analyzable,
                f"{self.protocol} has an unbounded state space; the "
                "adversary needs exact valency analysis",
            )

    @classmethod
    def from_dict(cls, payload: object) -> "JobSpec":
        """Strictly validated construction from decoded JSON."""
        if not isinstance(payload, dict):
            raise WireError("job spec must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise WireError(
                f"unknown job fields: {sorted(unknown)}; "
                f"accepted: {sorted(known)}"
            )
        if "verb" not in payload or "protocol" not in payload:
            raise WireError("job spec needs at least 'verb' and 'protocol'")
        try:
            return cls(**payload)
        except TypeError as error:
            raise WireError(str(error)) from None

    def to_dict(self) -> dict[str, object]:
        return {
            "verb": self.verb,
            "protocol": self.protocol,
            "n": self.n,
            "inputs": self.inputs,
            "budget": self.budget,
            "stages": self.stages,
            "por": self.por,
            "symmetry": self.symmetry,
            "max_seconds": self.max_seconds,
            "max_memory_mb": self.max_memory_mb,
            "seeds": self.seeds,
            "max_steps": self.max_steps,
            "preset": self.preset,
            "samples": self.samples,
            "seed": self.seed,
        }

    @property
    def resolved_n(self) -> int:
        """The roster size after applying the registry default."""
        if self.verb == "spectrum":
            # Grid cells carry their own rosters; there is no registry
            # default to resolve against.
            return self.n if self.n is not None else 0
        entry = registry.info(self.protocol)
        return self.n if self.n is not None else entry.default_n

    def reduction_stamp(self) -> dict[str, object]:
        """The reduction-policy identity, as the checkpoint header
        records it (see ``checkpoint._reduction_stamp``)."""
        if not (self.por or self.symmetry):
            return {"por": False, "symmetry": False}
        from repro.core.reduction import ReductionPolicy

        return ReductionPolicy(
            por=self.por, symmetry=self.symmetry
        ).describe()

    def canonical_params(self) -> dict[str, object]:
        """The verb-relevant, deadline-free fields of this spec.

        Specs that differ only in fields their verb ignores (or in
        deadlines) must share a cache entry, so irrelevant fields are
        dropped before hashing.
        """
        if self.verb == "spectrum":
            return {
                "verb": self.verb,
                "protocol": self.protocol,
                "preset": self.preset,
                "samples": self.samples,
                "seed": self.seed,
            }
        params: dict[str, object] = {
            "verb": self.verb,
            "n": self.resolved_n,
            "budget": self.budget,
        }
        if self.verb == "map":
            params["inputs"] = self.inputs
        if self.verb == "attack":
            params["stages"] = self.stages
        if self.verb == "survive":
            params["seeds"] = self.seeds
            params["max_steps"] = self.max_steps
        return params


def cache_key(spec: JobSpec) -> str:
    """Content hash under which *spec*'s completed result is cached.

    Built from the same two identities the checkpoint layer verifies
    before resuming a snapshot: the protocol identity (repr + process
    names/types, via ``checkpoint._protocol_identity``) and the
    reduction stamp — plus the verb and its canonical parameters.  Two
    submissions with equal keys are the same computation, so they may
    share one exploration (single-flight) and one cached result.
    """
    if spec.verb == "spectrum":
        # Sweep results are a pure function of the canonical params —
        # there is no engine-side protocol identity to stamp.
        identity = {
            "identity": {"kind": "spectrum-sweep"},
            "params": spec.canonical_params(),
        }
        return hashlib.sha256(canonical_json(identity)).hexdigest()

    from repro.core.checkpoint import _protocol_identity

    entry = registry.info(spec.protocol)
    protocol = entry.build(spec.resolved_n)
    identity = {
        "identity": _protocol_identity(protocol),
        "reduction": spec.reduction_stamp(),
        "params": spec.canonical_params(),
    }
    return hashlib.sha256(canonical_json(identity)).hexdigest()


@dataclass
class JobRecord:
    """Lifecycle state of one job, persisted in the spool on every
    transition so a SIGKILLed daemon can pick the job back up."""

    id: str
    spec: JobSpec
    key: str
    state: str = "queued"
    submitted_unix: float = 0.0
    started_unix: float | None = None
    finished_unix: float | None = None
    #: Failed executions so far (drives retry-with-backoff).
    attempts: int = 0
    #: Times the job was resumed after a drain or daemon crash.
    resumes: int = 0
    error: str | None = None
    #: ``PartialResult.as_dict()`` when a deadline degraded the job.
    partial: dict[str, object] | None = field(default=None)

    def to_dict(self) -> dict[str, object]:
        return {
            "id": self.id,
            "spec": self.spec.to_dict(),
            "key": self.key,
            "state": self.state,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "attempts": self.attempts,
            "resumes": self.resumes,
            "error": self.error,
            "partial": self.partial,
        }

    @classmethod
    def from_dict(cls, payload: object) -> "JobRecord":
        if not isinstance(payload, dict):
            raise WireError("job record must be a JSON object")
        try:
            spec = JobSpec.from_dict(payload["spec"])
            record = cls(
                id=str(payload["id"]),
                spec=spec,
                key=str(payload["key"]),
                state=str(payload["state"]),
                submitted_unix=float(payload["submitted_unix"]),
                attempts=int(payload.get("attempts", 0)),
                resumes=int(payload.get("resumes", 0)),
            )
        except KeyError as error:
            raise WireError(f"job record missing field {error}") from None
        record.started_unix = payload.get("started_unix")
        record.finished_unix = payload.get("finished_unix")
        record.error = payload.get("error")
        record.partial = payload.get("partial")
        _require(
            record.state in JOB_STATES,
            f"state must be one of {JOB_STATES}, got {record.state!r}",
        )
        return record
