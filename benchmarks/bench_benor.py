"""Bench E7 — Ben-Or randomized consensus.

Regenerates the E7 table and micro-benchmarks one N=4 run with a crash.
"""

from repro.experiments.exp_benor import benor_trial


def test_e7_table(benchmark, run_and_render):
    result = run_and_render(benchmark, "E7")
    for row in result.rows:
        assert row["terminated"] == row["trials"]
        assert row["agreement"] == row["trials"]


def test_single_benor_run(benchmark):
    def run():
        return benor_trial(4, 1, seed=11, crash=True)

    result, rounds = benchmark(run)
    assert result.decided
    assert rounds >= 1
