"""Unit tests for run traces."""

from repro.analysis.trace import trace_run
from repro.core.events import NULL, Event, Schedule


class TestTraceRun:
    def test_steps_align_with_schedule(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        schedule = Schedule([Event("p1", NULL), Event("p2", NULL)])
        trace = trace_run(arbiter3, initial, schedule)
        assert len(trace.steps) == 2
        assert trace.steps[0].event == Event("p1", NULL)
        assert trace.initial == initial

    def test_final_matches_apply_schedule(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        schedule = Schedule([Event("p1", NULL), Event("p2", NULL)])
        trace = trace_run(arbiter3, initial, schedule)
        assert trace.final == arbiter3.apply_schedule(initial, schedule)

    def test_empty_schedule(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        trace = trace_run(arbiter3, initial, Schedule())
        assert trace.final == initial
        assert trace.decisions == {}
        assert trace.first_decision_step is None

    def test_decisions_annotated_once(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        schedule = Schedule(
            [
                Event("p1", NULL),
                Event("p0", ("claim", "p1", 0)),
                Event("p1", ("verdict", 0)),
            ]
        )
        trace = trace_run(arbiter3, initial, schedule)
        assert trace.decisions == {"p0": 0, "p1": 0}
        assert trace.first_decision_step == 1
        # Each decision reported exactly once.
        announced = [
            name
            for step in trace.steps
            for name, _ in step.new_decisions
        ]
        assert sorted(announced) == ["p0", "p1"]

    def test_describe_mentions_decisions(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        schedule = Schedule(
            [Event("p1", NULL), Event("p0", ("claim", "p1", 0))]
        )
        text = trace_run(arbiter3, initial, schedule).describe()
        assert "p0 decides 0" in text

    def test_describe_truncation(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        schedule = Schedule([Event("p1", NULL)] * 10)
        text = trace_run(arbiter3, initial, schedule).describe(limit=3)
        assert "7 more steps" in text

    def test_nondeciding_run_reported(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        text = trace_run(
            arbiter3, initial, Schedule([Event("p1", NULL)])
        ).describe()
        assert "nobody ever decided" in text
