"""Graded message adversaries over the FaultPlan clause algebra.

Aspnes' "Randomized Protocols for Asynchronous Consensus" orders
adversaries by what they may *inspect* before choosing the schedule,
and Gafni/Losa's "Time is not a Healer" shows that this information
order — not clocks — is what moves the impossibility boundary.  The
three grades here realize that hierarchy for the phased partial-
synchrony executor:

* :class:`ObliviousAdversary` — sees only envelope metadata (sender,
  receiver, round, phase); drops are seeded coin flips.
* :class:`ContentAwareAdversary` — additionally reads message
  payloads and spends its loss budget on the most consequential ones
  (decisions before proposals before reports).
* :class:`AdaptiveAdversary` — full information: reads payloads *and*
  process states, and picks the drops that best prevent any receiver
  from assembling a decisive set — the adversary of the FLP proof
  itself, which is why the GST = ∞ cell under this grade never
  terminates.

All three are driven by :class:`repro.faults.FaultPlan` omission and
partition clauses, so Monte-Carlo sweeps, single-run injection, and
exhaustive exploration share one fault vocabulary: budgets bound how
many copies may be lost, probabilities gate each loss, and every drop
is recorded in :class:`repro.faults.FaultCounters` plus a
:class:`repro.faults.FaultAction` ledger for audit.

A ``per_receiver_cap`` enforces the classic "waits for ``n - f``
messages" envelope: no receiver loses more than the cap's worth of
distinct senders in one phase, so a protocol that tolerates ``f``
silent peers keeps its guarantees under any grade.
"""

from __future__ import annotations

import random
from typing import AbstractSet, Hashable, Sequence

from repro.core.messages import Message
from repro.core.seeding import stable_rng, stable_seed
from repro.faults.plan import FaultAction, FaultCounters, FaultPlan, Omission
from repro.synchrony.partial import AdversaryView, Envelope, PhaseAdversary

__all__ = [
    "ADVERSARY_GRADES",
    "GradedAdversary",
    "ObliviousAdversary",
    "ContentAwareAdversary",
    "AdaptiveAdversary",
    "make_adversary",
]

#: Grade names in increasing information order.
ADVERSARY_GRADES = ("oblivious", "content", "adaptive")

#: How damaging a payload kind is, for the inspecting grades.  Kinds are
#: the first element of tuple payloads used by the phased protocols
#: (rotating coordinator: est/prop/ack/decide; Ben-Or: R/P).
_IMPORTANCE = {
    "decide": 5,
    "prop": 4,
    "P": 3,
    "est": 2,
    "R": 2,
    "ack": 1,
}


def _payload_kind(payload: Hashable) -> str:
    if (
        isinstance(payload, tuple)
        and payload
        and isinstance(payload[0], str)
    ):
        return payload[0]
    return ""


def _payload_value(payload: Hashable) -> Hashable:
    """The consensus value a payload carries, or ``None``."""
    if isinstance(payload, tuple) and len(payload) >= 2:
        kind = _payload_kind(payload)
        if kind in ("decide", "prop", "P", "est", "R"):
            return payload[1]
    return None


class GradedAdversary(PhaseAdversary):
    """Base class: clause bookkeeping shared by all grades.

    Subclasses implement :meth:`_ranked`, which orders the phase's
    envelopes by how much the grade *wants* to drop them (most wanted
    first); the base class then walks that order spending omission
    budgets, drawing per-clause probabilities, and honoring the
    per-receiver cap.  Partition clauses (keyed on round number) force
    drops outside any budget, mirroring the exploration engine's
    partition-freeze semantics.
    """

    GRADE = "abstract"

    def __init__(
        self,
        plan: FaultPlan | None = None,
        *,
        seed: int = 0,
        per_receiver_cap: int | None = None,
    ):
        if plan is None:
            plan = FaultPlan([Omission(budget=None, probability=1.0)])
        if per_receiver_cap is not None and per_receiver_cap < 0:
            raise ValueError(
                f"per_receiver_cap must be >= 0, got {per_receiver_cap}"
            )
        self.plan = plan
        self.seed = seed
        self.per_receiver_cap = per_receiver_cap
        self.counters = FaultCounters()
        self.actions: list[FaultAction] = []
        self._budgets: list[int | None] = []
        self._run_seed = 0
        self.begin_run(seed)

    # -- PhaseAdversary ----------------------------------------------------

    def begin_run(self, run_seed: int) -> None:
        """Reset budgets, counters, and the audit ledger for a new run."""
        self._run_seed = run_seed
        self._budgets = [c.budget for c in self.plan.omissions]
        self.counters = FaultCounters()
        self.actions = []

    def filter_phase(
        self, envelopes: Sequence[Envelope], view: AdversaryView
    ) -> AbstractSet[tuple[str, str]]:
        dropped: set[tuple[str, str]] = set()
        per_receiver: dict[str, int] = {}

        # Partition clauses force drops, outside budgets and the cap:
        # a severed link loses the copy no matter what the protocol
        # tolerates — that is the point of a partition.
        for envelope in envelopes:
            for clause in self.plan.partitions:
                if clause.active_at(view.round_number) and clause.separates(
                    envelope.sender, envelope.receiver
                ):
                    edge = (envelope.sender, envelope.receiver)
                    if edge not in dropped:
                        dropped.add(edge)
                        self.counters.partition_blocks += 1
                        self._record(
                            "partition-freeze", envelope, view
                        )
                    break

        for envelope in self._ranked(envelopes, view):
            edge = (envelope.sender, envelope.receiver)
            if edge in dropped:
                continue
            cap = self.per_receiver_cap
            if cap is not None and per_receiver.get(envelope.receiver, 0) >= cap:
                continue
            clause_index = self._matching_clause(envelope)
            if clause_index is None:
                continue
            if not self._wants(envelope, view, clause_index):
                continue
            budget = self._budgets[clause_index]
            if budget is not None:
                self._budgets[clause_index] = budget - 1
            dropped.add(edge)
            per_receiver[envelope.receiver] = (
                per_receiver.get(envelope.receiver, 0) + 1
            )
            self.counters.omission_drops += 1
            self._record("omission-drop", envelope, view)

        return dropped

    # -- grade hooks -------------------------------------------------------

    def _ranked(
        self, envelopes: Sequence[Envelope], view: AdversaryView
    ) -> list[Envelope]:
        """Envelopes in the order the grade spends its budget on them."""
        raise NotImplementedError

    def _wants(
        self, envelope: Envelope, view: AdversaryView, clause_index: int
    ) -> bool:
        """Whether to actually drop a budget-eligible envelope."""
        return self._draw(envelope, view, clause_index)

    # -- shared machinery --------------------------------------------------

    def _matching_clause(self, envelope: Envelope) -> int | None:
        """First omission clause matching this copy with budget left."""
        for index, clause in enumerate(self.plan.omissions):
            if (
                clause.destination is not None
                and clause.destination != envelope.receiver
            ):
                continue
            if clause.sender is not None and clause.sender != envelope.sender:
                continue
            budget = self._budgets[index]
            if budget is not None and budget <= 0:
                continue
            return index
        return None

    def _draw(
        self, envelope: Envelope, view: AdversaryView, clause_index: int
    ) -> bool:
        probability = self.plan.omissions[clause_index].probability
        if probability >= 1.0:
            return True
        if probability <= 0.0:
            return False
        rng = stable_rng(
            "spectrum-adversary",
            self.GRADE,
            self._run_seed,
            envelope.sender,
            envelope.receiver,
            view.round_number,
            view.phase,
        )
        return rng.random() < probability

    def _record(
        self, kind: str, envelope: Envelope, view: AdversaryView
    ) -> None:
        self.actions.append(
            FaultAction(
                step=view.round_number,
                kind=kind,
                process=envelope.receiver,
                message=Message(
                    envelope.receiver, (envelope.sender, envelope.payload)
                ),
                detail=(
                    f"{self.GRADE} r{view.round_number}p{view.phase} "
                    f"{envelope.sender}->{envelope.receiver}"
                ),
            )
        )

    @staticmethod
    def _stable_order(envelopes: Sequence[Envelope]) -> list[Envelope]:
        return sorted(envelopes, key=lambda e: (e.receiver, e.sender))


class ObliviousAdversary(GradedAdversary):
    """Weakest grade: sees metadata only; every drop is a seeded coin.

    The budget is spent in a fixed (receiver, sender) order so runs are
    reproducible, and each eligible copy is lost with its clause's
    probability — exactly the behavior the ad-hoc ``random_drops`` rule
    used to give, now expressed in the shared fault vocabulary.
    """

    GRADE = "oblivious"

    def _ranked(self, envelopes, view):
        return self._stable_order(envelopes)


class ContentAwareAdversary(GradedAdversary):
    """Reads payloads; spends the budget on the most damaging ones.

    Decisions are silenced before proposals, proposals before reports,
    and value-free payloads (a Ben-Or ``("P", None)``) are not worth a
    budget unit at all.  It cannot see process states, so it cannot
    tell *which* value to starve — that is the adaptive grade's edge.
    """

    GRADE = "content"

    def _ranked(self, envelopes, view):
        def score(envelope: Envelope) -> int:
            kind = _payload_kind(envelope.payload)
            importance = _IMPORTANCE.get(kind, 0)
            if (
                kind in ("P", "prop", "est", "R", "decide")
                and _payload_value(envelope.payload) is None
            ):
                importance = 0
            return importance

        ordered = self._stable_order(envelopes)
        ordered.sort(key=score, reverse=True)
        return ordered

    def _wants(self, envelope, view, clause_index):
        kind = _payload_kind(envelope.payload)
        if _IMPORTANCE.get(kind, 0) == 0 or (
            kind in ("P", "prop", "est", "R", "decide")
            and _payload_value(envelope.payload) is None
        ):
            # Never waste budget on a payload that moves nothing.
            return False
        return self._draw(envelope, view, clause_index)


class AdaptiveAdversary(GradedAdversary):
    """Full information: payloads, states, and decisions.

    Deterministic (a full-information adversary needs no coin): per
    receiver, it drops the copies whose loss best prevents a decisive
    set from assembling — decision gossip first, then proposals, then
    the reports carrying the value currently *leading* at that receiver
    (starving the leader is what keeps a majority from forming, which
    is how the FLP adversary maintains bivalence forever).
    """

    GRADE = "adaptive"

    def _ranked(self, envelopes, view):
        leading: dict[str, Hashable] = {}
        tallies: dict[str, dict[Hashable, int]] = {}
        for envelope in envelopes:
            value = _payload_value(envelope.payload)
            if value is None:
                continue
            counts = tallies.setdefault(envelope.receiver, {})
            counts[value] = counts.get(value, 0) + 1
        for receiver, counts in tallies.items():
            leading[receiver] = max(
                counts.items(), key=lambda item: (item[1], repr(item[0]))
            )[0]

        def score(envelope: Envelope) -> tuple[int, int]:
            kind = _payload_kind(envelope.payload)
            importance = _IMPORTANCE.get(kind, 0)
            value = _payload_value(envelope.payload)
            if kind in ("P", "prop", "est", "R", "decide") and value is None:
                importance = 0
            is_leading = int(
                value is not None
                and leading.get(envelope.receiver) == value
            )
            return (importance, is_leading)

        ordered = self._stable_order(envelopes)
        ordered.sort(key=score, reverse=True)
        return ordered

    def _wants(self, envelope, view, clause_index):
        kind = _payload_kind(envelope.payload)
        importance = _IMPORTANCE.get(kind, 0)
        if importance == 0 or (
            kind in ("P", "prop", "est", "R", "decide")
            and _payload_value(envelope.payload) is None
        ):
            return False
        # Full information means no coin: the clause probability only
        # scales how often this adversary is *allowed* to act.
        return self._draw(envelope, view, clause_index)


_GRADES = {
    cls.GRADE: cls
    for cls in (ObliviousAdversary, ContentAwareAdversary, AdaptiveAdversary)
}


def make_adversary(
    grade: str,
    *,
    plan: FaultPlan | None = None,
    seed: int = 0,
    per_receiver_cap: int | None = None,
    drop_probability: float | None = None,
) -> GradedAdversary:
    """Build a graded adversary by name.

    With no explicit *plan*, an unbounded any-link omission clause is
    used (probability *drop_probability*, default 1.0) — the grade and
    the cap then fully determine behavior.
    """
    if grade not in _GRADES:
        raise ValueError(
            f"unknown adversary grade {grade!r}; "
            f"expected one of {ADVERSARY_GRADES}"
        )
    if plan is None:
        probability = 1.0 if drop_probability is None else drop_probability
        plan = FaultPlan([Omission(budget=None, probability=probability)])
    elif drop_probability is not None:
        raise ValueError("pass either plan or drop_probability, not both")
    return _GRADES[grade](
        plan, seed=seed, per_receiver_cap=per_receiver_cap
    )
