"""Shared plumbing for the consensus protocol zoo.

Every protocol in the zoo follows the paper's conventions: binary input
register, write-once output register, message values from a small fixed
universe.  :class:`ConsensusProcess` adds the bookkeeping all of them
share — the full roster of process names, "everyone but me", and a
factory that assembles a full :class:`~repro.core.protocol.Protocol` from
a process class.

Zoo protocols meant for *exact* valency analysis are written to keep the
reachable configuration graph finite for small N: each process sends a
bounded number of messages over its lifetime, and a null delivery in a
state with nothing to do is a no-op (so it self-loops in the graph
instead of minting fresh states).
"""

from __future__ import annotations

from typing import Sequence, Type

from repro.core.process import Process, ProcessState, Transition
from repro.core.protocol import Protocol

__all__ = ["ConsensusProcess", "make_protocol", "default_names"]


def default_names(n: int) -> tuple[str, ...]:
    """Canonical process names ``p0 .. p{n-1}``."""
    if n < 2:
        raise ValueError(f"need at least 2 processes, got {n}")
    return tuple(f"p{i}" for i in range(n))


class ConsensusProcess(Process):
    """A zoo process: knows the full roster and its own position in it.

    Parameters
    ----------
    name:
        This process's name.
    peers:
        Names of *all* processes, including this one, in canonical order.
        (Knowing N and the roster is standard: the paper's processes are
        distinct automata wired into a fixed system.)
    """

    def __init__(self, name: str, peers: Sequence[str]):
        super().__init__(name)
        if name not in peers:
            raise ValueError(f"{name!r} is not in the roster {list(peers)!r}")
        self.peers = tuple(peers)
        self.others = tuple(p for p in self.peers if p != name)
        self.index = self.peers.index(name)

    @property
    def n(self) -> int:
        """N, the number of processes in the system."""
        return len(self.peers)

    @property
    def majority(self) -> int:
        """L = ⌈(N+1)/2⌉ = ⌊N/2⌋ + 1, the strict-majority threshold used
        by Section 4's protocol."""
        return len(self.peers) // 2 + 1

    def noop(self, state: ProcessState) -> Transition:
        """A transition that changes nothing (used for null deliveries and
        unexpected messages so the configuration graph stays small)."""
        return Transition(state, ())


def make_protocol(
    process_class: Type[ConsensusProcess],
    n: int,
    **kwargs,
) -> Protocol:
    """Instantiate *process_class* for each of ``n`` canonical names and
    wire them into a :class:`Protocol`.

    Extra keyword arguments are forwarded to every process constructor —
    protocol-level parameters like quorum sizes or coordinator choice.
    """
    names = default_names(n)
    return Protocol([process_class(name, names, **kwargs) for name in names])
