#!/usr/bin/env python3
"""The conclusion's escape hatches, side by side.

FLP's closing paragraph: the result "point[s] up the need for more
refined models ... and for less stringent requirements" — and cites the
lines of work that followed.  This example runs all three escapes on
the same inputs and prints one comparison table:

* **synchrony** (FloodSet) — full timing assumptions, decides in f+1
  rounds, always;
* **randomization** (Ben-Or) — no timing assumptions, termination with
  probability 1;
* **partial synchrony** (rotating coordinator under GST) — safety
  always, termination after the network stabilizes;
* and, for contrast, the **asynchronous deterministic** regime where
  the FLP adversary wins.

Run:  python examples/escape_hatches.py
"""

from repro import FLPAdversary, make_protocol
from repro.analysis.stats import format_table
from repro.experiments.exp_benor import benor_trial
from repro.protocols import FloodSetProcess, ParityArbiterProcess
from repro.synchrony import (
    RotatingCoordinatorProcess,
    SyncCrashPlan,
    coordinator_blackout,
    run_partial_sync,
    run_rounds,
)

NAMES = tuple(f"p{i}" for i in range(5))
INPUTS = dict(zip(NAMES, [1, 0, 1, 0, 1]))


def synchronous_row() -> dict:
    f = 2
    processes = [FloodSetProcess(n, NAMES, f=f) for n in NAMES]
    plan = SyncCrashPlan({"p1": (1, frozenset({"p0"}))})
    result = run_rounds(processes, INPUTS, plan)
    return {
        "model": "synchronous (FloodSet)",
        "assumption": "lock-step rounds",
        "decided": result.all_live_decided,
        "agreement": result.agreement_holds,
        "cost": f"{result.rounds_executed} rounds (= f+1)",
    }


def randomized_row() -> dict:
    decided = 0
    steps = []
    trials = 10
    for seed in range(trials):
        result, _rounds = benor_trial(5, 2, seed=seed, crash=True)
        if result.decided:
            decided += 1
            steps.append(result.steps)
    return {
        "model": "async randomized (Ben-Or)",
        "assumption": "private coins",
        "decided": f"{decided}/{trials} (prob. 1)",
        "agreement": True,
        "cost": f"~{sum(steps) // max(len(steps), 1)} steps/run",
    }


def partial_sync_row() -> dict:
    rule = coordinator_blackout(lambda r: NAMES[(r - 1) % 5])
    processes = [RotatingCoordinatorProcess(n, NAMES, f=2) for n in NAMES]
    result = run_partial_sync(
        processes, INPUTS, gst=8, drop_rule=rule, max_rounds=30
    )
    return {
        "model": "partial synchrony (DLS)",
        "assumption": "eventual GST",
        "decided": result.all_live_decided,
        "agreement": result.agreement_holds,
        "cost": (
            f"round {max(result.decision_rounds.values())} (GST=8)"
        ),
    }


def asynchronous_row() -> dict:
    # N=3 here: the adversary needs exhaustive valency analysis, whose
    # reachable graph grows combinatorially with N.  The impossibility
    # it demonstrates holds for every N >= 2.
    protocol = make_protocol(ParityArbiterProcess, 3)
    adversary = FLPAdversary(protocol)
    certificate = adversary.build_run(stages=20)
    assert certificate.verify(protocol)
    return {
        "model": "async deterministic (FLP)",
        "assumption": "none — and that's the problem",
        "decided": f"never ({certificate.length}-event prefix shown)",
        "agreement": True,
        "cost": "∞ under the adversary",
    }


def main() -> None:
    rows = [
        synchronous_row(),
        randomized_row(),
        partial_sync_row(),
        asynchronous_row(),
    ]
    print("Same task, four computation models:\n")
    print(format_table(rows))
    print(
        "\nEach escape hatch buys termination by adding exactly one "
        "assumption FLP's model lacks; remove it and the adversary "
        "returns."
    )


if __name__ == "__main__":
    main()
