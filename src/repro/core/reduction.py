"""Lemma-1 partial-order reduction and the process-symmetry quotient.

The exploration engine's cost is interleaving blowup: Lemma 1 of the
paper says schedules over disjoint process sets commute, so most of the
n! orderings of cross-process deliveries reach configurations the graph
has already seen — or will see — by another route.  This module turns
that observation into two opt-in reductions for the packed engine:

**Ample sets** (:class:`AmpleReducer`).  At a frontier node ``C`` the
reducer may record only an *ample subset* of the enabled events — all
events of one chosen process ``p`` — deferring the other processes'
events to ``C``'s descendants, where they remain enabled (in this model
a step by ``p`` can never disable another process's event: deliveries
consume per-destination messages and null steps are always enabled).
The clause-by-clause correspondence with Lemma 1 and with the classical
ample-set conditions is spelled out in ``MODEL.md`` ("Reduction
soundness"); operationally the reducer enforces:

* **non-emptiness** — a reduced node keeps every event of the chosen
  process, nulls included, so no enabled behaviour of ``p`` is lost and
  the reduced node is expanded iff the full node would be;
* **invisibility** — reduction is refused at any node that carries a
  decision or has a successor that gains one (pruning there could hide
  a decision value from the valency classifier);
* **commutation** — on a deterministic sample of reduced nodes the
  Lemma-1 diamond is replayed concretely: for kept event ``a`` and
  pruned event ``b``, ``b(a(C)) == a(b(C))`` on packed tuples.  A
  violation (impossible for conforming protocols, cheap insurance
  against custom step semantics) disables the reducer for the rest of
  the run and is counted in ``GraphStats.replay_violations``.

The invisibility clause is checkable locally; the deferral itself is
heuristic for protocols where a deferred step can send *new* mail to
the chosen process (see MODEL.md for the honest discussion), which is
why verdict identity against the unreduced graph is additionally pinned
by the zoo-wide property tests and the ``bench_por`` CI gate.

**Symmetry quotient** (:class:`SymmetryQuotient`).  For protocols whose
automata declare ``symmetric = True``, configurations are canonicalized
under process-name permutation before interning.  Canonicalization runs
a nauty-style *partition-refinement* canonical labeling directly on the
packed int tuple: the partition is seeded with per-process local
invariants (a name-scrubbed digest of the process's state and of the
multiset of messages buffered for it), refined to equitability with a
Weisfeiler–Lehman pass over name-scrubbed pairwise relations, and ties
are broken by individualizing the smallest non-singleton cell with
automorphism-discovery pruning.  In the common case the seed colors are
already discrete and canonicalization is a single sort plus one image
construction — polynomial (near-linear) instead of the factorial sweep
the quotient used to pay per configuration.  The brute n! sweep
survives only as a cross-check oracle (``symmetry_algorithm="brute"``,
CLI ``--symmetry-brute``) for small rosters, and its permutation
tables are built lazily on first use.

The quotient is *replayable*: :meth:`~SymmetryQuotient
.canonicalize_with_perm` reports the renaming it chose, the engine
records that renaming per edge in the flat store's perm side table, and
witness extraction composes the recorded renamings back out to recover
a concrete, auditor-checkable schedule from any quotient path (see
:func:`repro.core.valency.ValencyAnalyzer.bivalence_witness`).

The declaration is *validated* — a transition-level automorphism check
replays ``π(e(C)) == π(e)(π(C))`` over a bounded sample before the
quotient is trusted; equivariance is checked for a generating set of
S_n (adjacent transpositions plus one n-cycle), which suffices because
equivariant renamings compose.  A protocol that declares symmetry but
fails the check falls back to the identity quotient with a warning,
and a protocol that never declared it is rejected with
:class:`~repro.core.errors.SymmetryError`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from hashlib import blake2b
from itertools import permutations
from typing import TYPE_CHECKING, Hashable

from repro.core.configuration import Configuration
from repro.core.errors import FLPError, SymmetryError
from repro.core.events import Event
from repro.core.messages import Message, MessageBuffer
from repro.core.process import ProcessState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.exploration import GraphStats
    from repro.core.packing import PackedCodec
    from repro.core.protocol import Protocol

__all__ = [
    "ReductionPolicy",
    "AmpleReducer",
    "SymmetryQuotient",
    "declares_symmetry",
    "validate_symmetry",
    "symmetry_generator_mappings",
    "rename_value",
    "rename_configuration",
    "perm_compose",
    "perm_invert",
]

#: Valid canonicalization back-ends for the symmetry quotient.
SYMMETRY_ALGORITHMS = ("refine", "brute")


@dataclass(frozen=True)
class ReductionPolicy:
    """What reductions to apply, and how paranoid to be about them.

    Attributes
    ----------
    por:
        Enable the Lemma-1 ample-set reducer.
    symmetry:
        Enable the process-permutation quotient (requires the protocol's
        automata to declare ``symmetric = True``).
    symmetry_algorithm:
        ``"refine"`` (default) canonicalizes by partition refinement —
        polynomial in practice, no roster cap.  ``"brute"`` keeps the
        historical lexicographic-minimum-over-all-n!-renamings sweep as
        a cross-check oracle for small rosters.
    replay_every:
        Replay the commutation diamond at the first reduced node and
        every *replay_every*-th one after it.  Deterministic (a node
        counter, not a clock), so serial, parallel, and resumed runs
        sample identically.
    replay_pairs:
        Kept×pruned event pairs verified per sampled node.
    symmetry_max_processes:
        The *brute* oracle enumerates all ``n!`` renamings; above this
        roster size it falls back (with a warning) instead of
        exploding.  The refine algorithm ignores the cap.
    """

    por: bool = False
    symmetry: bool = False
    symmetry_algorithm: str = "refine"
    replay_every: int = 64
    replay_pairs: int = 4
    symmetry_max_processes: int = 5

    def __post_init__(self) -> None:
        if self.symmetry_algorithm not in SYMMETRY_ALGORITHMS:
            raise ValueError(
                "symmetry_algorithm must be one of "
                f"{SYMMETRY_ALGORITHMS}, got {self.symmetry_algorithm!r}"
            )

    @property
    def enabled(self) -> bool:
        return self.por or self.symmetry

    def describe(self) -> dict[str, object]:
        """The checkpoint-header form: just the graph-shaping switches.

        Sampling cadence does not change which nodes exist, only which
        diamonds get double-checked, so it is not part of compatibility.
        The canonicalization algorithm *is* stamped when the quotient is
        on: refine and brute may pick different orbit representatives,
        so their graphs must never be mixed across a resume.
        """
        stamp: dict[str, object] = {"por": self.por, "symmetry": self.symmetry}
        if self.symmetry:
            stamp["symmetry_algorithm"] = self.symmetry_algorithm
        return stamp


# ---------------------------------------------------------------------------
# Renaming (shared by the quotient and its validator)
# ---------------------------------------------------------------------------


def rename_value(value: Hashable, mapping: dict[str, str]) -> Hashable:
    """Rewrite process names inside a protocol value.

    Descends through tuples and frozensets (the containers protocols use
    for hashable state) and maps any string equal to a process name to
    its image.  Everything else passes through untouched.  Protocols
    whose *non-name* string values collide with process names would be
    mis-renamed — the transition-level automorphism check catches that
    (the renamed transition no longer matches) and the quotient falls
    back.
    """
    if isinstance(value, str):
        return mapping.get(value, value)
    if isinstance(value, tuple):
        return tuple(rename_value(item, mapping) for item in value)
    if isinstance(value, frozenset):
        return frozenset(rename_value(item, mapping) for item in value)
    return value


def _rename_state(state: ProcessState, mapping: dict[str, str]) -> ProcessState:
    """*state* with process names rewritten inside its data field.

    Input and output registers are name-free by the model, so renaming
    preserves decision values by construction.
    """
    return ProcessState(
        state.input, state.output, rename_value(state.data, mapping)
    )


def _rename_buffer(
    buffer: MessageBuffer, mapping: dict[str, str]
) -> MessageBuffer:
    counts: dict[Message, int] = {}
    for message, count in buffer.items():
        renamed = Message(
            mapping.get(message.destination, message.destination),
            rename_value(message.value, mapping),
        )
        counts[renamed] = counts.get(renamed, 0) + count
    return MessageBuffer(counts)


def rename_configuration(
    configuration: Configuration, mapping: dict[str, str]
) -> Configuration:
    """The image ``π(C)``: process ``π(p)`` holds ``p``'s renamed state."""
    return Configuration(
        {
            mapping[name]: _rename_state(state, mapping)
            for name, state in configuration.states()
        },
        _rename_buffer(configuration.buffer, mapping),
    )


# ---------------------------------------------------------------------------
# Position permutations (the replayable form of a renaming)
# ---------------------------------------------------------------------------
#
# A renaming is stored as a tuple ``perm`` over codec positions:
# ``perm[i] = j`` means the process at position ``i`` is renamed to the
# process name at position ``j``.  ``perm_compose(a, b)`` is "apply
# ``b``, then ``a``" — the function composition ``a ∘ b`` — so that
# ``rename(rename(C, b), a) == rename(C, perm_compose(a, b))``.


def perm_compose(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    """The composite renaming ``a ∘ b`` (apply *b* first, then *a*)."""
    return tuple(a[j] for j in b)


def perm_invert(perm: tuple[int, ...]) -> tuple[int, ...]:
    """The inverse renaming: ``perm_compose(perm, inverse) == identity``."""
    inverse = [0] * len(perm)
    for i, j in enumerate(perm):
        inverse[j] = i
    return tuple(inverse)


def declares_symmetry(protocol: "Protocol") -> bool:
    """Whether every automaton in *protocol* declares ``symmetric = True``."""
    return all(
        getattr(protocol.process(name), "symmetric", False)
        for name in protocol.process_names
    )


def symmetry_generator_mappings(names: list[str]) -> list[dict[str, str]]:
    """Renamings generating S_n: adjacent transpositions + one n-cycle.

    Checking transition equivariance on a generating set suffices for
    the whole group: if stepping commutes with renamings π and σ it
    commutes with π∘σ, and every permutation is a product of these
    generators.
    """
    mappings: list[dict[str, str]] = []
    n = len(names)
    for i in range(n - 1):
        image = list(names)
        image[i], image[i + 1] = image[i + 1], image[i]
        mappings.append(dict(zip(names, image)))
    if n > 2:
        mappings.append(dict(zip(names, names[1:] + names[:1])))
    return mappings


def validate_symmetry(
    protocol: "Protocol", sample_limit: int = 200
) -> list[str]:
    """Transition-level automorphism check for a declared symmetry.

    Replays ``π(e(C)) == π(e)(π(C))`` for a *generating set* of
    renamings (adjacent transpositions plus one n-cycle — see
    :func:`symmetry_generator_mappings`; equivariance is closed under
    composition, so the generators carry the whole of S_n) over a
    breadth-first sample of at most *sample_limit* configurations drawn
    from every initial configuration.  Returns a list of human-readable
    problems — empty iff the sample found the declaration consistent.
    """
    names = list(protocol.process_names)
    mappings = symmetry_generator_mappings(names)
    problems: list[str] = []
    seen: set[Configuration] = set()
    queue: list[Configuration] = list(protocol.initial_configurations())
    for configuration in queue:
        seen.add(configuration)
    cursor = 0
    while cursor < len(queue) and len(seen) <= sample_limit:
        configuration = queue[cursor]
        cursor += 1
        for event in protocol.enabled_events(configuration):
            successor = protocol.apply_event(configuration, event)
            if successor not in seen and len(seen) < sample_limit:
                seen.add(successor)
                queue.append(successor)
            for mapping in mappings:
                image = rename_configuration(configuration, mapping)
                image_event = Event(
                    mapping[event.process],
                    rename_value(event.value, mapping),
                )
                via_rename = rename_configuration(successor, mapping)
                via_step = protocol.apply_event(image, image_event)
                if via_rename != via_step:
                    problems.append(
                        "automorphism check failed: "
                        f"renaming {mapping!r} does not commute with "
                        f"{event!r} (the automata are not "
                        "permutation-equivariant)"
                    )
                    return problems
    return problems


# ---------------------------------------------------------------------------
# The ample-set reducer
# ---------------------------------------------------------------------------


class AmpleReducer:
    """Per-node ample-subset filter for the packed engine's edge lists.

    Called by the engine inside the (node-ordered) merge, so serial,
    parallel, and resumed explorations reduce identically.  The filter
    is a pure function of the node, its full edge list, and the
    deterministic sample counter — all of which the checkpoint captures.
    """

    def __init__(
        self,
        codec: "PackedCodec",
        policy: ReductionPolicy,
        stats: "GraphStats",
    ):
        self._codec = codec
        self._policy = policy
        self._stats = stats
        #: False after a replay violation: the rest of the run expands
        #: fully (the honest response to a protocol whose steps do not
        #: commute the way the model promises).
        self.active = True
        #: Reduced nodes seen, driving the deterministic replay sample.
        self.reduced_nodes = 0

    def filter(
        self,
        packed: tuple[int, ...],
        edges: list[tuple[Event, tuple[int, ...]]],
    ) -> list[tuple[Event, tuple[int, ...]]]:
        """The edges to record for *packed*: ample subset or all of them."""
        if not self.active or len(edges) <= 1:
            return edges
        codec = self._codec
        stats = self._stats
        # Invisibility: a decided node, or any successor that gains a
        # decision, pins the node to full expansion — pruning here could
        # hide a decision value from the valency classifier.
        if codec.has_decision(packed):
            return edges
        position_of = codec.position_of
        candidate: int | None = None
        for event, successor in edges:
            if codec.has_decision(successor):
                stats.ample_fallbacks += 1
                return edges
            if not event.is_null_delivery:
                position = position_of(event.process)
                if candidate is None or position < candidate:
                    candidate = position
        if candidate is None:
            # Null-only phase: every process has exactly its null step,
            # there is no interleaving to collapse.
            return edges
        ample = [
            (event, successor)
            for event, successor in edges
            if position_of(event.process) == candidate
        ]
        if len(ample) == len(edges):
            return edges
        self.reduced_nodes += 1
        if (
            self.reduced_nodes == 1
            or self.reduced_nodes % self._policy.replay_every == 0
        ):
            pruned = [
                (event, successor)
                for event, successor in edges
                if position_of(event.process) != candidate
            ]
            if not self._diamonds_commute(ample, pruned):
                stats.replay_violations += 1
                stats.ample_fallbacks += 1
                self.active = False
                return edges
        stats.por_pruned += len(edges) - len(ample)
        return ample

    def _diamonds_commute(self, ample, pruned) -> bool:
        """Replay Lemma-1 diamonds between kept and pruned events.

        Every pair steps *different* processes by construction, so the
        lemma asserts the two orders meet at one configuration; checking
        it concretely on packed tuples guards against step semantics
        that break the model's commutation promise.
        """
        apply_packed = self._codec.apply_packed
        stats = self._stats
        budget = self._policy.replay_pairs
        checked = 0
        for kept_event, kept_successor in ample:
            for pruned_event, pruned_successor in pruned:
                if checked >= budget:
                    return True
                checked += 1
                stats.replay_checks += 1
                meet_via_kept = apply_packed(kept_successor, pruned_event)
                meet_via_pruned = apply_packed(pruned_successor, kept_event)
                if meet_via_kept != meet_via_pruned:
                    return False
        return True

    # -- checkpointing ------------------------------------------------------

    def snapshot_state(self) -> dict[str, object]:
        """Picklable sample-position state (the codec snapshots itself)."""
        return {
            "active": self.active,
            "reduced_nodes": self.reduced_nodes,
        }

    def restore_state(self, state: dict[str, object]) -> None:
        self.active = bool(state["active"])
        self.reduced_nodes = int(state["reduced_nodes"])


# ---------------------------------------------------------------------------
# The symmetry quotient
# ---------------------------------------------------------------------------

#: Scrub tokens.  ``\x00`` cannot appear in a UTF-8 process name's
#: first byte position without being an explicit NUL — the prefix keeps
#: tokens disjoint from ordinary serialized strings.
_TOKEN_SELF = b"\x00S"
_TOKEN_FOCUS = b"\x00F"
_TOKEN_OTHER = b"\x00O"

#: A "self" that matches no process name: scrubbing with this sentinel
#: yields the focus-only serialization shared by every non-embedded
#: observer (process names are non-empty printable identifiers).
_NO_NAME = "\x00"
_NO_NAMES: frozenset[str] = frozenset()


def _digest(data: bytes) -> int:
    """64-bit deterministic digest (never the builtin ``hash``)."""
    return int.from_bytes(blake2b(data, digest_size=8).digest(), "big")


_MASK64 = 0xFFFFFFFFFFFFFFFF
_MASK63 = 0x7FFFFFFFFFFFFFFF


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a deterministic avalanche over 64 bits.

    The refinement loop combines already-uniform blake2b digests, so a
    cheap arithmetic mixer is enough there — hashing bytes again per WL
    row tripled the canonicalization cost for no extra distinguishing
    power.  Like the digests it mixes, collisions are possible in
    principle, but they cannot make the quotient unsound: a canonical
    form is always ``rename(packed, perm)`` — a genuine member of the
    argument's orbit — so a collision can at worst make two members of
    one orbit elect different representatives (a finer quotient, never
    an identification of distinct orbits).
    """
    x &= _MASK64
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & _MASK64
    return x ^ (x >> 31)


class SymmetryQuotient:
    """Canonicalize packed configurations under process-name permutation.

    Two interchangeable back-ends produce a canonical orbit member and
    the renaming that reaches it:

    * ``"refine"`` (default) — partition-refinement canonical labeling.
      Per-process colors are seeded from name-scrubbed digests of the
      process's state and its buffered mail (memoized per state id /
      buffer id, so the per-configuration cost is a handful of dict
      probes).  When the seed colors are already discrete — the common
      case — the canonical form is one sort plus one image
      construction.  Otherwise colors are refined to equitability with
      a WL pass over scrubbed pairwise relations and remaining ties are
      broken by individualize-and-refine branching with
      automorphism-discovery pruning; the canonical form is the
      lexicographically smallest leaf image, a well-defined function of
      the orbit because the branching explores equivariantly chosen
      cells exhaustively (up to discovered automorphisms, which by
      definition do not change images).
    * ``"brute"`` — the historical oracle: lexicographic minimum over
      all n! renamings.  Tables are built lazily, on first use.

    Both are canonical functions (constant on orbits), but they may
    pick *different* representatives, so graphs built under one must
    never resume under the other (the checkpoint header stamps the
    algorithm).  All derived tables are pure functions of the codec's
    interning tables and the packed tuples themselves — no builtin
    string hashing, no first-seen-order interning — so canonical forms
    are identical across processes, ``PYTHONHASHSEED`` values, and
    checkpoint/resume boundaries.

    Construct via :meth:`build`, which enforces the declaration and the
    automorphism validation.
    """

    def __init__(
        self,
        codec: "PackedCodec",
        names: list[str],
        algorithm: str = "refine",
    ):
        if algorithm not in SYMMETRY_ALGORITHMS:
            raise ValueError(f"unknown symmetry algorithm {algorithm!r}")
        self._codec = codec
        #: Process names in codec-position order: position ``i`` of a
        #: packed tuple is ``names[i]``'s state slot.
        self._names = sorted(names, key=codec.position_of)
        self._name_set = frozenset(self._names)
        self._n = len(self._names)
        self.algorithm = algorithm
        self.identity: tuple[int, ...] = tuple(range(self._n))
        #: packed -> (canonical, perm) with canonical == rename(packed, perm).
        self._orbit: dict[
            tuple[int, ...], tuple[tuple[int, ...], tuple[int, ...]]
        ] = {}
        # Perm interning: mapping dicts and per-perm image memos keyed
        # by a dense perm id.  Ids are memo bookkeeping only — they
        # never influence canonical forms, so first-use order is safe.
        self._perm_ids: dict[tuple[int, ...], int] = {}
        self._perm_list: list[tuple[int, ...]] = []
        self._perm_mappings: list[dict[str, str]] = []
        self._perm_state_images: list[dict[int, int]] = []
        self._perm_buffer_images: list[dict[int, int]] = []
        #: Message-level rename memo per perm id, used by the refinement
        #: path only.  Buffers are fresh nearly every canonicalization,
        #: but their *messages* repeat across thousands of buffers, so
        #: refine's one-or-two leaf images per miss become dict probes.
        #: The brute oracle deliberately bypasses it: it exists to
        #: cross-check orbits *and* to measure the replaced PR-5
        #: algorithm as bench_por's n!-enumeration baseline, so its
        #: image path stays the seed's full per-(perm, buffer) rename.
        self._perm_message_images: list[dict[Message, Message]] = []
        self._memoize_message_images = algorithm == "refine"
        # Refinement memos: seed color digests per (position, state id)
        # and per buffer id; pairwise relation digests for the WL pass;
        # scrubbed serializations per (value, roles) — protocol values
        # (message payloads, report sets) repeat across thousands of
        # configurations, so the serializer is memo-dominated.
        self._state_profiles: list[dict[int, int]] = [
            {} for _ in range(self._n)
        ]
        self._buffer_profiles: dict[int, tuple[int, ...]] = {}
        self._pair_state: dict[tuple[int, int, int], int] = {}
        self._pair_buffer: dict[tuple[int, int, int], int] = {}
        self._sig_memo: dict[tuple, bytes] = {}
        # Per-(message, count) precomputations: buffers are fresh nearly
        # every canonicalization, but their *messages* repeat across
        # thousands of buffers, so both the per-position mail profile
        # and the pairwise mail relations reduce to dict probes.
        self._position_of: dict[str, int] = {
            name: i for i, name in enumerate(self._names)
        }
        self._message_profile_entries: dict[
            tuple[Message, int], tuple[int | None, int]
        ] = {}
        self._message_pair_rows: dict[
            tuple[Message, int],
            tuple[int | None, int, int, dict[int, tuple[int, int]]],
        ] = {}
        self._embedded_memo: dict[Hashable, frozenset[str]] = {}
        #: Lazily built list of all non-identity perms (brute only).
        self._brute_perms: list[tuple[int, ...]] | None = None
        # Observability (read by the engine and bench_por).
        self.canonical_calls = 0
        self.canonical_misses = 0
        self.canonical_seconds = 0.0
        self.leaf_images = 0
        self.refine_branches = 0

    @property
    def names(self) -> list[str]:
        """Process names in codec-position order."""
        return list(self._names)

    @classmethod
    def build(
        cls,
        protocol: "Protocol",
        codec: "PackedCodec",
        policy: ReductionPolicy,
    ) -> "tuple[SymmetryQuotient | None, str | None]":
        """``(quotient, fallback_reason)`` for *protocol*.

        Raises :class:`SymmetryError` when the protocol never declared
        symmetry (an operator error: the flag asserts something about
        the protocol that its author did not).  A *declared* symmetry
        that fails validation, or a roster too large for the brute
        oracle, is a soft failure: ``(None, reason)`` so the engine can
        warn and run unreduced.
        """
        names = list(protocol.process_names)
        if not declares_symmetry(protocol):
            raise SymmetryError(
                "the symmetry quotient needs every process automaton to "
                "declare `symmetric = True`; "
                f"{type(protocol.process(names[0])).__name__} does not — "
                "refusing to canonicalize an asymmetric protocol"
            )
        if (
            policy.symmetry_algorithm == "brute"
            and len(names) > policy.symmetry_max_processes
        ):
            return None, (
                f"roster of {len(names)} processes needs "
                f"{len(names)}! renamings per configuration under the "
                "brute oracle; running without the quotient "
                "(drop --symmetry-brute to use partition refinement)"
            )
        problems = validate_symmetry(protocol)
        if problems:
            return None, problems[0]
        return cls(codec, names, policy.symmetry_algorithm), None

    # -- canonical forms ----------------------------------------------------

    def canonicalize(self, packed: tuple[int, ...]) -> tuple[int, ...]:
        """The orbit representative of *packed* (memoized)."""
        return self.canonicalize_with_perm(packed)[0]

    def canonicalize_with_perm(
        self, packed: tuple[int, ...]
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """``(canonical, perm)`` with ``canonical == rename(packed, perm)``.

        The perm is what the edge side table records: it is exactly the
        renaming a witness extractor must invert to map a canonical
        path step back onto the concrete run it stands for.
        """
        self.canonical_calls += 1
        hit = self._orbit.get(packed)
        if hit is not None:
            return hit
        started = time.perf_counter()
        self.canonical_misses += 1
        if self.algorithm == "brute":
            best, best_perm = self._brute_canonical(packed)
        else:
            best, best_perm = self._refine_canonical(packed)
        if best == packed:
            # The search may have reached the representative through a
            # non-trivial automorphism; normalize so "already canonical"
            # always pairs with the identity renaming.
            best_perm = self.identity
        if best != packed and self._codec.decision_values(
            best
        ) != self._codec.decision_values(packed):
            raise FLPError(
                "symmetry canonicalization changed the decision set — "
                "renaming must never touch output registers (model bug)"
            )
        result = (best, best_perm)
        self._orbit[packed] = result
        if best != packed and best not in self._orbit:
            # Canonical functions are idempotent: f(f(C)) == f(C), so
            # the representative's own entry is free — and probed often
            # (every lookup of an already-canonical row lands here).
            self._orbit[best] = (best, self.identity)
        self.canonical_seconds += time.perf_counter() - started
        return result

    def orbit_perm_of(self, packed: tuple[int, ...]) -> tuple[int, ...]:
        """The renaming taking *packed* to its canonical representative."""
        return self.canonicalize_with_perm(packed)[1]

    # -- renaming helpers ---------------------------------------------------

    def mapping_of(self, perm: tuple[int, ...]) -> dict[str, str]:
        """The name-level mapping of a position permutation (memoized)."""
        return self._perm_mappings[self._perm_id(perm)]

    def rename_event(self, event: Event, perm: tuple[int, ...]) -> Event:
        """``π(e)``: the event renamed by *perm* (identity = unchanged)."""
        if perm == self.identity:
            return event
        mapping = self.mapping_of(perm)
        return Event(
            mapping[event.process], rename_value(event.value, mapping)
        )

    def apply_perm(
        self, packed: tuple[int, ...], perm: tuple[int, ...]
    ) -> tuple[int, ...]:
        """``rename(packed, perm)`` through the codec's interning tables."""
        if perm == self.identity:
            return packed
        return self._image(packed, self._perm_id(perm))

    # -- internals: perm interning and images -------------------------------

    def _perm_id(self, perm: tuple[int, ...]) -> int:
        pid = self._perm_ids.get(perm)
        if pid is None:
            pid = len(self._perm_list)
            self._perm_ids[perm] = pid
            self._perm_list.append(perm)
            names = self._names
            self._perm_mappings.append(
                {names[i]: names[perm[i]] for i in range(self._n)}
            )
            self._perm_state_images.append({})
            self._perm_buffer_images.append({})
            self._perm_message_images.append({})
        return pid

    def _image(self, packed: tuple[int, ...], pid: int) -> tuple[int, ...]:
        """The packed image of *packed* under the interned perm *pid*."""
        self.leaf_images += 1
        perm = self._perm_list[pid]
        states = self._perm_state_images[pid]
        slots = [0] * len(packed)
        for i in range(self._n):
            sid = packed[i]
            image = states.get(sid)
            if image is None:
                image = self._image_state(sid, pid)
            slots[perm[i]] = image
        bid = packed[-1]
        image = self._perm_buffer_images[pid].get(bid)
        if image is None:
            image = self._image_buffer(bid, pid)
        slots[-1] = image
        return tuple(slots)

    def _image_state(self, state_id: int, pid: int) -> int:
        renamed = _rename_state(
            self._codec.state_at(state_id), self._perm_mappings[pid]
        )
        image = self._codec.intern_state(renamed)
        self._perm_state_images[pid][state_id] = image
        return image

    def _image_buffer(self, buffer_id: int, pid: int) -> int:
        mapping = self._perm_mappings[pid]
        if not self._memoize_message_images:
            renamed = _rename_buffer(
                self._codec.buffer_at(buffer_id), mapping
            )
            image = self._codec.intern_buffer(renamed)
            self._perm_buffer_images[pid][buffer_id] = image
            return image
        message_images = self._perm_message_images[pid]
        counts: dict[Message, int] = {}
        for message, count in self._codec.buffer_at(buffer_id).items():
            renamed_message = message_images.get(message)
            if renamed_message is None:
                renamed_message = Message(
                    mapping.get(message.destination, message.destination),
                    rename_value(message.value, mapping),
                )
                message_images[message] = renamed_message
            counts[renamed_message] = counts.get(renamed_message, 0) + count
        image = self._codec.intern_buffer(MessageBuffer._trusted(counts))
        self._perm_buffer_images[pid][buffer_id] = image
        return image

    # -- internals: the brute oracle ----------------------------------------

    def _brute_canonical(
        self, packed: tuple[int, ...]
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        if self._brute_perms is None:
            identity = self.identity
            self._brute_perms = [
                perm
                for perm in permutations(range(self._n))
                if perm != identity
            ]
        best = packed
        best_perm = self.identity
        for perm in self._brute_perms:
            candidate = self._image(packed, self._perm_id(perm))
            if candidate < best:
                best = candidate
                best_perm = perm
        return best, best_perm

    # -- internals: partition refinement ------------------------------------

    def _sig(
        self,
        value: Hashable,
        self_name: str,
        focus_name: str | None = None,
    ) -> bytes:
        """Renaming-equivariant serialization of a protocol value.

        *self_name* scrubs to SELF, *focus_name* (pair relations) to
        FOCUS, every other process name to OTHER — so two values that
        differ only by a renaming consistent with those roles serialize
        identically.  Frozensets serialize order-independently by
        sorting member serializations (``repr`` order would follow
        ``PYTHONHASHSEED`` for strings, which must never influence
        canonical forms).  Containers are memoized per (value, roles):
        message payloads and report sets repeat across thousands of
        configurations, so serialization is dict-probe-dominated.
        """
        if isinstance(value, str):
            if value == self_name:
                return _TOKEN_SELF
            if value == focus_name:
                return _TOKEN_FOCUS
            if value in self._name_set:
                return _TOKEN_OTHER
            return b"s" + value.encode("utf-8", "surrogatepass")
        if isinstance(value, bool):
            return b"b1" if value else b"b0"
        if isinstance(value, int):
            return b"i%d" % value
        if isinstance(value, tuple):
            key = (value, self_name, focus_name)
            cached = self._sig_memo.get(key)
            if cached is None:
                cached = (
                    b"("
                    + b",".join(
                        self._sig(item, self_name, focus_name)
                        for item in value
                    )
                    + b")"
                )
                self._sig_memo[key] = cached
            return cached
        if isinstance(value, frozenset):
            key = (value, self_name, focus_name)
            cached = self._sig_memo.get(key)
            if cached is None:
                cached = (
                    b"{"
                    + b",".join(
                        sorted(
                            self._sig(item, self_name, focus_name)
                            for item in value
                        )
                    )
                    + b"}"
                )
                self._sig_memo[key] = cached
            return cached
        if value is None:
            return b"n"
        return b"r" + repr(value).encode("utf-8", "surrogatepass")

    def _state_profile(self, position: int, state_id: int) -> int:
        """Seed color contribution of holding *state_id* at *position*."""
        state = self._codec.state_at(state_id)
        name = self._names[position]
        data = (
            self._sig(state.input, name)
            + b"|"
            + self._sig(state.output, name)
            + b"|"
            + self._sig(state.data, name)
        )
        digest = _digest(data)
        self._state_profiles[position][state_id] = digest
        return digest

    def _embedded_names(self, value: Hashable) -> frozenset[str]:
        """Process names occurring anywhere inside *value* (memoized).

        The pair-relation scrub of a value against focus ``names[k]``
        can only differ from the focus-free scrub when ``names[k]``
        actually occurs in the value — so knowing the embedded names
        lets the buffer scan serialize each message O(1) times instead
        of once per pair."""
        if isinstance(value, str):
            if value in self._name_set:
                return frozenset((value,))
            return _NO_NAMES
        if isinstance(value, (tuple, frozenset)):
            cached = self._embedded_memo.get(value)
            if cached is None:
                found: set[str] = set()
                for item in value:
                    found.update(self._embedded_names(item))
                cached = frozenset(found) if found else _NO_NAMES
                self._embedded_memo[value] = cached
            return cached
        return _NO_NAMES

    def _buffer_profile(self, buffer_id: int) -> tuple[int, ...]:
        """Per-position digests of the mail buffered for each process.

        Each ``(message, count)`` contributes a memoized 64-bit entry
        digest; a position's profile is the masked *sum* of its entries
        — an order-independent multiset combine, so no per-buffer
        sorting or re-hashing (see :func:`_mix64` on collisions).
        """
        buffer = self._codec.buffer_at(buffer_id)
        sums = [0] * self._n
        entries = self._message_profile_entries
        for message, count in buffer.items():
            key = (message, count)
            entry = entries.get(key)
            if entry is None:
                position = self._position_of.get(message.destination)
                entry = (
                    position,
                    0
                    if position is None
                    else _digest(
                        self._sig(message.value, message.destination)
                        + b"#%d" % count
                    ),
                )
                entries[key] = entry
            position, data = entry
            if position is None:  # pragma: no cover - foreign destination
                continue
            sums[position] += data
        profile = tuple(total & _MASK64 for total in sums)
        self._buffer_profiles[buffer_id] = profile
        return profile

    def _initial_colors(self, packed: tuple[int, ...]) -> list[int]:
        bid = packed[-1]
        buffer_profile = self._buffer_profiles.get(bid)
        if buffer_profile is None:
            buffer_profile = self._buffer_profile(bid)
        profiles = self._state_profiles
        colors = []
        for i in range(self._n):
            sid = packed[i]
            state_digest = profiles[i].get(sid)
            if state_digest is None:
                state_digest = self._state_profile(i, sid)
            # Deterministic arithmetic mix — cheap, equivariant, and a
            # pure function of the two digests.
            colors.append(
                (state_digest * 0x9E3779B97F4A7C15 + buffer_profile[i])
                & 0x7FFFFFFFFFFFFFFF
            )
        return colors

    def _perm_from_colors(self, colors: list[int]) -> tuple[int, ...]:
        """The discrete partition's renaming: color rank = new position."""
        order = sorted(range(self._n), key=colors.__getitem__)
        perm = [0] * self._n
        for rank, position in enumerate(order):
            perm[position] = rank
        return tuple(perm)

    # The WL pass relates position *i* to position *j* through two
    # scrubbed digests.  State part: *i*'s data with ``names[i]`` →
    # SELF, ``names[j]`` → FOCUS, other names → OTHER (captures "my
    # state mentions *that* process").  Buffer part: the mail addressed
    # to either of the two, with the same scrub.  Both are equivariant:
    # renaming the configuration and the pair together leaves the
    # digests fixed.  The probes live inline in :meth:`_refine`; these
    # helpers are the memo-miss slow paths.

    def _pair_state_digest(self, sid: int, i: int, j: int) -> int:
        state = self._codec.state_at(sid)
        digest = _digest(
            self._sig(state.data, self._names[i], self._names[j])
        )
        self._pair_state[(sid, i, j)] = digest
        return digest

    def _message_pair_row(
        self, message: Message, count: int
    ) -> tuple[int | None, int, int, dict[int, tuple[int, int]]]:
        """``(dest, S-default, F-default, specials)`` for one message.

        A message to position ``d`` contributes a SELF-scrubbed entry to
        every pair ``(d, k)`` and a FOCUS-scrubbed entry to every pair
        ``(k, d)``.  Those entries can only depend on ``k`` when
        ``names[k]`` occurs *inside* the payload, so one default pair of
        entry digests plus a ``specials`` override per embedded name
        covers all ``2(n-1)`` cells — and the whole row is memoized per
        ``(message, count)``, which repeat across thousands of buffers.
        """
        names = self._names
        sig = self._sig
        d = self._position_of.get(message.destination)
        if d is None:  # pragma: no cover - foreign destination
            row = (None, 0, 0, {})
            self._message_pair_rows[(message, count)] = row
            return row
        value = message.value
        suffix = b"#%d" % count
        name_d = names[d]
        s_default = _digest(b"S>" + sig(value, name_d) + suffix)
        f_default = _digest(b"F>" + sig(value, _NO_NAME, name_d) + suffix)
        specials: dict[int, tuple[int, int]] = {}
        for name in self._embedded_names(value):
            k = self._position_of[name]
            if k == d:
                continue
            specials[k] = (
                _digest(b"S>" + sig(value, name_d, name) + suffix),
                _digest(b"F>" + sig(value, name, name_d) + suffix),
            )
        row = (d, s_default, f_default, specials)
        self._message_pair_rows[(message, count)] = row
        return row

    def _fill_pair_buffer(self, buffer_id: int) -> None:
        """All ``(i, j)`` buffer-relation digests of one buffer, in a
        single scan (buffers are fresh nearly every canonicalization;
        20 independent scans per configuration at n=5 dominated the WL
        pass before this).  A cell's digest is the masked sum of its
        memoized per-message entry digests — order-independent, so no
        sorting and no per-cell re-hash."""
        n = self._n
        rows = self._message_pair_rows
        cells = [0] * (n * n)
        for message, count in self._codec.buffer_at(buffer_id).items():
            row = rows.get((message, count))
            if row is None:
                row = self._message_pair_row(message, count)
            d, s_default, f_default, specials = row
            if d is None:  # pragma: no cover - foreign destination
                continue
            base = d * n
            for k in range(n):
                if k == d:
                    continue
                if specials:
                    special = specials.get(k)
                    if special is not None:
                        s_entry, f_entry = special
                    else:
                        s_entry, f_entry = s_default, f_default
                else:
                    s_entry, f_entry = s_default, f_default
                # Mail to i=d, seen by the (d, k) pair: d is SELF.
                cells[base + k] += s_entry
                # Mail to j=d, seen by the (k, d) pair: d is FOCUS.
                cells[k * n + d] += f_entry
        table = self._pair_buffer
        for i in range(n):
            base = i * n
            for k in range(n):
                if i != k:
                    table[(buffer_id, i, k)] = cells[base + k] & _MASK64

    def _refine(
        self, packed: tuple[int, ...], colors: list[int]
    ) -> list[int]:
        """WL refinement of *colors* to equitability (or discreteness).

        Each pass remixes a position's color with the multiset of
        (neighbor color, pair relation) rows, combined as a masked sum
        of row mixes (order-independent, so no sorting).  The pass is
        repeated while it strictly increases the number of color
        classes, so it terminates in at most n passes; all inputs are
        equivariant digests, so the refined coloring is too.
        """
        n = self._n
        count = len(set(colors))
        mix = _mix64
        # Inlined pair-relation probes: this doubly-nested loop runs on
        # every non-fast-path miss, and the function-call overhead of
        # going through _pair_relation per (i, j) was measurable.
        pair_state = self._pair_state
        pair_buffer = self._pair_buffer
        bid = packed[-1]
        while count < n:
            refined = []
            for i in range(n):
                acc = 0
                sid = packed[i]
                for j in range(n):
                    if j == i:
                        continue
                    state_digest = pair_state.get((sid, i, j))
                    if state_digest is None:
                        state_digest = self._pair_state_digest(sid, i, j)
                    buffer_digest = pair_buffer.get((bid, i, j))
                    if buffer_digest is None:
                        self._fill_pair_buffer(bid)
                        buffer_digest = pair_buffer[(bid, i, j)]
                    acc += mix(
                        colors[j] * 0x9E3779B97F4A7C15
                        + state_digest * 0xC2B2AE3D27D4EB4F
                        + buffer_digest
                    )
                refined.append(
                    mix(colors[i] * 0xFF51AFD7ED558CCD + acc) & _MASK63
                )
            refined_count = len(set(refined))
            if refined_count <= count:
                return colors
            colors = refined
            count = refined_count
        return colors

    def _refine_canonical(
        self, packed: tuple[int, ...]
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        n = self._n
        colors = self._initial_colors(packed)
        if len(set(colors)) == n:
            # Fast path: seed invariants already tell the processes
            # apart — one sort, one image.
            perm = self._perm_from_colors(colors)
            if perm == self.identity:
                return packed, perm
            return self._image(packed, self._perm_id(perm)), perm
        colors = self._refine(packed, colors)
        if len(set(colors)) == n:
            perm = self._perm_from_colors(colors)
            if perm == self.identity:
                return packed, perm
            return self._image(packed, self._perm_id(perm)), perm
        # Individualize-and-refine with automorphism pruning.
        self.refine_branches += 1
        best: list = [None, None]
        automorphisms: list[tuple[int, ...]] = []

        def search(colors: list[int], path: tuple[int, ...]) -> None:
            # *colors* arrive refined (by the caller or the child
            # individualization below) — no duplicate WL pass here.
            cells: dict[int, list[int]] = {}
            for position, color in enumerate(colors):
                cells.setdefault(color, []).append(position)
            branch: list[int] | None = None
            for color in sorted(cells):
                members = cells[color]
                if len(members) > 1 and (
                    branch is None or len(members) < len(branch)
                ):
                    branch = members
            if branch is None:
                perm = self._perm_from_colors(colors)
                image = self._image(packed, self._perm_id(perm))
                if best[0] is None or image < best[0]:
                    best[0], best[1] = image, perm
                elif image == best[0] and perm != best[1]:
                    # Two leaf renamings with equal images compose to
                    # an automorphism of *packed* — the pruning fuel.
                    automorphisms.append(
                        perm_compose(perm_invert(best[1]), perm)
                    )
                return
            explored: list[int] = []
            for position in branch:
                if explored and self._pruned_by_automorphism(
                    position, explored, path, automorphisms
                ):
                    continue
                explored.append(position)
                child = list(colors)
                individualized = _mix64(
                    colors[position] + 0xA24BAED4963EE407 * (len(path) + 1)
                )
                while individualized in child:
                    individualized = _mix64(individualized + 1)
                child[position] = individualized
                search(self._refine(packed, child), path + (position,))

        search(colors, ())
        return best[0], best[1]

    @staticmethod
    def _pruned_by_automorphism(
        position: int,
        explored: list[int],
        path: tuple[int, ...],
        automorphisms: list[tuple[int, ...]],
    ) -> bool:
        """McKay pruning: skip a branch cell member whose orbit (under
        discovered automorphisms fixing the individualized path) already
        contains an explored member — its subtree yields the same
        images."""
        applicable = [
            perm
            for perm in automorphisms
            if all(perm[fixed] == fixed for fixed in path)
        ]
        if not applicable:
            return False
        orbit = {position}
        frontier = [position]
        while frontier:
            member = frontier.pop()
            for perm in applicable:
                image = perm[member]
                if image not in orbit:
                    orbit.add(image)
                    frontier.append(image)
        return any(member in orbit for member in explored)
