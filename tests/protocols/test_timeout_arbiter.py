"""Tests for the timeout-escalation arbiter (the anti-pattern exhibit)."""

import pytest

from repro.core.correctness import check_partial_correctness
from repro.core.events import NULL, Event
from repro.core.simulation import StopCondition, simulate
from repro.protocols import TimeoutArbiterProcess, make_protocol
from repro.schedulers import CrashPlan, RoundRobinScheduler


@pytest.fixture(scope="module")
def protocol():
    return make_protocol(TimeoutArbiterProcess, 4, timeout=2)


class TestParameters:
    def test_needs_four_processes(self):
        with pytest.raises(ValueError, match="N >= 4"):
            make_protocol(TimeoutArbiterProcess, 3)

    def test_timeout_validated(self):
        with pytest.raises(ValueError, match="timeout"):
            make_protocol(TimeoutArbiterProcess, 4, timeout=0)

    def test_distinct_referees(self):
        with pytest.raises(ValueError, match="differ"):
            make_protocol(
                TimeoutArbiterProcess, 4, arbiter="p0", backup="p0"
            )

    def test_roles(self, protocol):
        assert protocol.process("p0").role == "arbiter"
        assert protocol.process("p1").role == "backup"
        assert protocol.process("p2").role == "proposer"


class TestHappyPath:
    def test_fair_scheduling_decides_and_agrees(self, protocol):
        result = simulate(
            protocol,
            protocol.initial_configuration([0, 0, 0, 1]),
            RoundRobinScheduler(),
            max_steps=300,
            stop=StopCondition.ALL_DECIDED,
        )
        assert result.decided
        assert result.agreement_holds

    def test_backup_takes_over_when_arbiter_dead(self, protocol):
        """The availability 'win' that motivates the anti-pattern."""
        result = simulate(
            protocol,
            protocol.initial_configuration([0, 0, 1, 1]),
            RoundRobinScheduler(crash_plan=CrashPlan({"p0": 0})),
            max_steps=600,
            stop=StopCondition.ALL_DECIDED,
        )
        # Everyone except the dead arbiter decides via the backup.
        assert set(result.decisions) == {"p1", "p2", "p3"}
        assert result.agreement_holds


class TestEscalationMechanics:
    def test_ticks_accumulate_on_null_steps(self, protocol):
        config = protocol.initial_configuration([0, 0, 0, 1])
        config = protocol.apply_event(config, Event("p2", NULL))
        assert config.state_of("p2").data == ("claimed", 1, False)

    def test_escalation_fires_at_timeout(self, protocol):
        config = protocol.initial_configuration([0, 0, 0, 1])
        for _ in range(3):
            config = protocol.apply_event(config, Event("p2", NULL))
        phase, ticks, escalated = config.state_of("p2").data
        assert escalated
        assert ticks == 2
        backup_mail = config.buffer.messages_for("p1")
        assert any(m.value[0] == "claim" for m in backup_mail)

    def test_escalation_fires_once(self, protocol):
        config = protocol.initial_configuration([0, 0, 0, 1])
        for _ in range(6):
            config = protocol.apply_event(config, Event("p2", NULL))
        claims = [
            m
            for m in config.buffer.messages_for("p1")
            if m.value[0] == "claim"
        ]
        assert len(claims) == 1


class TestTheViolation:
    def test_split_brain_schedule_exists(self, protocol):
        """Drive the exact split: p2 (input 0) claims to the arbiter;
        p3 (input 1) times out and escalates; the two referees commit
        to opposite values."""
        config = protocol.initial_configuration([0, 0, 0, 1])
        schedule = [
            Event("p2", NULL),  # p2 claims 0 to arbiter
            Event("p3", NULL),  # p3 claims 1 to arbiter
            Event("p3", NULL),  # tick
            Event("p3", NULL),  # tick -> escalate claim 1 to backup
            Event("p0", ("claim", "p2", 0)),  # arbiter decides 0
            Event("p1", ("claim", "p3", 1)),  # backup decides 1 (!)
        ]
        for event in schedule:
            config = protocol.apply_event(config, event)
        assert config.decision_values() == frozenset({0, 1})

    def test_exhaustive_check_finds_disagreement(self, protocol):
        report = check_partial_correctness(protocol)
        assert not report.agreement_ok
        assert report.disagreement_witness is not None
        assert len(
            report.disagreement_witness.decision_values()
        ) == 2

    def test_plain_arbiter_has_no_such_flaw(self):
        from repro.protocols import ArbiterProcess

        plain = make_protocol(ArbiterProcess, 4)
        assert check_partial_correctness(plain).agreement_ok
