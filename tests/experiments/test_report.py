"""Tests for the EXPERIMENTS.md generator."""

from repro.experiments.harness import ExperimentResult
from repro.experiments.report import _SECTIONS, render_markdown


def sample_result(exp_id="E1"):
    return ExperimentResult(
        exp_id=exp_id,
        title="sample",
        rows=({"metric": 1, "value": 2.5},),
        notes=("a note",),
    )


class TestRenderMarkdown:
    def test_header_present(self):
        text = render_markdown([sample_result()])
        assert text.startswith("# EXPERIMENTS")
        assert "every claim reproduces" in text

    def test_sections_in_order(self):
        text = render_markdown(
            [sample_result("E1"), sample_result("E4")]
        )
        assert text.index("## E1") < text.index("## E4")

    def test_commentary_included_for_known_ids(self):
        text = render_markdown([sample_result("E4")])
        assert "Paper claim (Theorem 1)" in text

    def test_tables_fenced(self):
        text = render_markdown([sample_result()])
        assert text.count("```") % 2 == 0
        assert "metric" in text

    def test_notes_quoted(self):
        text = render_markdown([sample_result()])
        assert "> a note" in text

    def test_every_experiment_has_commentary(self):
        from repro.experiments.harness import available_experiments

        for exp_id in available_experiments():
            assert exp_id in _SECTIONS, (
                f"{exp_id} lacks an EXPERIMENTS.md commentary block"
            )

    def test_commentaries_quote_the_paper_where_claimed(self):
        for exp_id, text in _SECTIONS.items():
            if "Paper claim" in text:
                assert '"' in text, exp_id


class TestMarkdownCli:
    def test_markdown_flag(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["E8", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# EXPERIMENTS")
        assert "## E8" in out
