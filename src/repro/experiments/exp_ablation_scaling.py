"""A3 — ablation: state explosion vs. N (why the adversary stays small).

Exact valency analysis is the price of a *certified* adversary: the
reachable configuration graph grows combinatorially with N, and the
staged construction re-explores an event-filtered graph every stage.
This ablation quantifies the growth — reachable configurations, full
valency-classification time, and per-stage adversary time — for
N ∈ {3, 4} (N = 5 order-sensitive instances exceed a laptop budget,
which is exactly the design rationale for running the impossibility
demonstrations at small N; the theorem itself holds for all N ≥ 2).
"""

from __future__ import annotations

import time

from repro.adversary.flp import FLPAdversary
from repro.core.exploration import explore
from repro.core.valency import Valency, ValencyAnalyzer
from repro.experiments.harness import ExperimentResult, experiment
from repro.protocols import (
    ArbiterProcess,
    ParityArbiterProcess,
    WaitForAllProcess,
    make_protocol,
)

__all__ = ["run"]

_FAMILIES = {
    "arbiter": ArbiterProcess,
    "parity-arbiter": ParityArbiterProcess,
    "wait-for-all": WaitForAllProcess,
}


@experiment("A3", "Ablation: state explosion vs. N")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    sizes = (3,) if quick else (3, 4)
    stages = 6 if quick else 12
    rows = []
    for family, cls in _FAMILIES.items():
        for n in sizes:
            protocol = make_protocol(cls, n)
            # Largest reachable graph over all initial configurations.
            biggest = 0
            started = time.perf_counter()
            analyzer = ValencyAnalyzer(protocol)
            bivalent = 0
            total = 0
            for initial in protocol.initial_configurations():
                graph = explore(protocol, initial)
                biggest = max(biggest, len(graph))
                for configuration in graph.configurations:
                    total += 1
                    if (
                        analyzer.valency(configuration)
                        is Valency.BIVALENT
                    ):
                        bivalent += 1
            classify_seconds = time.perf_counter() - started

            started = time.perf_counter()
            adversary = FLPAdversary(protocol, analyzer=analyzer)
            certificate = adversary.build_run(stages=stages)
            attack_seconds = time.perf_counter() - started

            rows.append(
                {
                    "protocol": family,
                    "N": n,
                    "max_graph": biggest,
                    "bivalent_frac": bivalent / max(total, 1),
                    "classify_s": classify_seconds,
                    "attack_s": attack_seconds,
                    "mode": certificate.mode.value,
                }
            )
    return ExperimentResult(
        exp_id="A3",
        title="Ablation: state explosion vs. N",
        rows=tuple(rows),
        notes=(
            "max_graph grows combinatorially with N (the interleaving "
            "explosion), and adversary cost follows it; the theorem "
            "loses nothing at small N — 'even a single faulty process' "
            "already bites at N = 3",
            "bivalent_frac is the adversary's playground: the share of "
            "accessible configurations from which both outcomes remain "
            "possible",
        ),
        seed=seed,
        quick=quick,
    )
