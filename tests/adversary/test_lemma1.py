"""Tests for the executable Lemma 1 (commutativity) checker.

Includes the hypothesis property test that is this reproduction's
strongest check of the step semantics: for random reachable
configurations and random disjoint applicable schedule pairs, the
Figure-1 diamond must always close.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary.lemmas import (
    commutativity_diamond,
    random_disjoint_schedules,
)
from repro.core.events import NULL, Event, Schedule
from repro.protocols import (
    ArbiterProcess,
    ParityArbiterProcess,
    TwoPhaseCommitProcess,
    WaitForAllProcess,
    make_protocol,
)

PROTOCOL_FACTORIES = {
    "arbiter": lambda: make_protocol(ArbiterProcess, 3),
    "parity": lambda: make_protocol(ParityArbiterProcess, 3),
    "wait-for-all": lambda: make_protocol(WaitForAllProcess, 3),
    "2pc": lambda: make_protocol(TwoPhaseCommitProcess, 3),
}
_CACHE = {}


def protocol_named(name):
    if name not in _CACHE:
        _CACHE[name] = PROTOCOL_FACTORIES[name]()
    return _CACHE[name]


class TestDiamond:
    def test_empty_schedules_commute_trivially(self, arbiter3):
        config = arbiter3.initial_configuration([0, 0, 1])
        witness = commutativity_diamond(
            arbiter3, config, Schedule(), Schedule()
        )
        assert witness.meet == config
        assert witness.verify(arbiter3)

    def test_null_steps_commute(self, arbiter3):
        config = arbiter3.initial_configuration([0, 0, 1])
        witness = commutativity_diamond(
            arbiter3,
            config,
            Schedule([Event("p1", NULL)]),
            Schedule([Event("p2", NULL)]),
        )
        assert witness.verify(arbiter3)
        # Both proposers claimed, in either order: same configuration.
        assert len(witness.meet.buffer) == 2

    def test_overlapping_schedules_rejected(self, arbiter3):
        config = arbiter3.initial_configuration([0, 0, 1])
        with pytest.raises(ValueError, match="disjoint"):
            commutativity_diamond(
                arbiter3,
                config,
                Schedule([Event("p1", NULL)]),
                Schedule([Event("p1", NULL)]),
            )

    def test_witness_rejects_tampering(self, arbiter3):
        config = arbiter3.initial_configuration([0, 0, 1])
        witness = commutativity_diamond(
            arbiter3,
            config,
            Schedule([Event("p1", NULL)]),
            Schedule([Event("p2", NULL)]),
        )
        from dataclasses import replace

        forged = replace(witness, meet=witness.configuration)
        assert not forged.verify(arbiter3)


class TestRandomDisjointSchedules:
    def test_generated_schedules_are_disjoint_and_applicable(self, arbiter3):
        rng = random.Random(0)
        config = arbiter3.initial_configuration([0, 1, 1])
        for _ in range(30):
            sigma1, sigma2 = random_disjoint_schedules(arbiter3, config, rng)
            assert sigma1.is_disjoint_from(sigma2)
            arbiter3.apply_schedule(config, sigma1)  # must not raise
            arbiter3.apply_schedule(config, sigma2)


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(sorted(PROTOCOL_FACTORIES)),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_lemma1_property(name, seed):
    """Lemma 1, property-based: every random diamond closes."""
    protocol = protocol_named(name)
    rng = random.Random(seed)
    inputs = [rng.randint(0, 1) for _ in protocol.process_names]
    config = protocol.initial_configuration(inputs)
    for _ in range(rng.randint(0, 8)):
        events = protocol.enabled_events(config)
        config = protocol.apply_event(config, rng.choice(events))
    sigma1, sigma2 = random_disjoint_schedules(protocol, config, rng)
    witness = commutativity_diamond(protocol, config, sigma1, sigma2)
    assert witness.verify(protocol)
