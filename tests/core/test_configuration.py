"""Unit tests for configurations."""

import pytest

from repro.core.configuration import Configuration
from repro.core.errors import UnknownProcess
from repro.core.messages import Message, MessageBuffer
from repro.core.process import ProcessState
from repro.core.values import UNDECIDED


def make_config(outputs=(UNDECIDED, UNDECIDED), buffer=None):
    states = {
        f"p{i}": ProcessState(0, output, ())
        for i, output in enumerate(outputs)
    }
    return Configuration(states, buffer or MessageBuffer.empty())


class TestConstruction:
    def test_requires_at_least_one_process(self):
        with pytest.raises(ValueError):
            Configuration({}, MessageBuffer.empty())

    def test_process_names_sorted(self):
        config = make_config((UNDECIDED, UNDECIDED, UNDECIDED))
        assert config.process_names == ("p0", "p1", "p2")

    def test_state_of_unknown_process(self):
        with pytest.raises(UnknownProcess):
            make_config().state_of("p99")

    def test_len_and_contains(self):
        config = make_config()
        assert len(config) == 2
        assert "p0" in config
        assert "p9" not in config


class TestDecisionStructure:
    def test_no_decisions_initially(self):
        config = make_config()
        assert config.decision_values() == frozenset()
        assert not config.has_decision
        assert config.decided_processes() == ()

    def test_single_decision(self):
        config = make_config((1, UNDECIDED))
        assert config.decision_values() == frozenset({1})
        assert config.has_decision
        assert config.decided_processes() == ("p0",)

    def test_conflicting_decisions_both_reported(self):
        # Such configurations violate partial correctness but must be
        # representable so the checker can point at them.
        config = make_config((0, 1))
        assert config.decision_values() == frozenset({0, 1})


class TestFunctionalUpdates:
    def test_with_state_replaces_one_process(self):
        config = make_config()
        updated = config.with_state("p0", ProcessState(0, 1, ()))
        assert updated.state_of("p0").output == 1
        assert config.state_of("p0").output is UNDECIDED  # original intact

    def test_with_state_unknown_process(self):
        with pytest.raises(UnknownProcess):
            make_config().with_state("p9", ProcessState(0, UNDECIDED, ()))

    def test_with_buffer(self):
        buffer = MessageBuffer.of([Message("p0", "x")])
        updated = make_config().with_buffer(buffer)
        assert updated.buffer == buffer

    def test_replace_changes_state_and_buffer_atomically(self):
        buffer = MessageBuffer.of([Message("p1", "y")])
        updated = make_config().replace(
            "p1", ProcessState(0, 0, ("d",)), buffer
        )
        assert updated.state_of("p1").data == ("d",)
        assert updated.buffer == buffer
        assert updated.state_of("p0") == make_config().state_of("p0")


class TestEqualityAndHash:
    def test_structural_equality(self):
        assert make_config() == make_config()
        assert hash(make_config()) == hash(make_config())

    def test_buffer_contents_matter(self):
        a = make_config(buffer=MessageBuffer.of([Message("p0", "x")]))
        assert a != make_config()

    def test_state_differences_matter(self):
        assert make_config((1, UNDECIDED)) != make_config((0, UNDECIDED))

    def test_usable_in_sets(self):
        assert len({make_config(), make_config()}) == 1


class TestRendering:
    def test_repr_is_compact(self):
        text = repr(make_config((1, UNDECIDED)))
        assert "p0" in text and "y=1" in text and "y=b" in text

    def test_describe_is_multiline(self):
        assert len(make_config().describe().splitlines()) >= 3
