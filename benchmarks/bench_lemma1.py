"""Bench E1 — Lemma 1 / Figure 1 (commutativity diamonds).

Regenerates the E1 table and micro-benchmarks one diamond closure.
"""

import random

from repro.adversary.lemmas import (
    commutativity_diamond,
    random_disjoint_schedules,
)
from repro.protocols import ArbiterProcess, make_protocol


def test_e1_table(benchmark, run_and_render):
    result = run_and_render(benchmark, "E1")
    for row in result.rows:
        assert row["failures"] == 0
        assert row["diamonds_closed"] == row["trials"]


def test_single_diamond_closure(benchmark):
    protocol = make_protocol(ArbiterProcess, 3)
    rng = random.Random(7)
    config = protocol.initial_configuration([0, 1, 1])
    sigma1, sigma2 = random_disjoint_schedules(protocol, config, rng)

    def close():
        return commutativity_diamond(protocol, config, sigma1, sigma2)

    witness = benchmark(close)
    assert witness.verify(protocol)
