"""FaultPlan construction, validation, and the clause algebra."""

import pickle

import pytest

from repro.core.errors import FaultModelError, ModelError
from repro.faults import (
    Crash,
    CrashRecovery,
    Delay,
    Duplication,
    FaultPlan,
    Omission,
    Partition,
    PlanCrashView,
)
from repro.schedulers import CrashPlan
from repro.schedulers.crash import initially_dead_plans, random_crash_plan

NAMES = ("p0", "p1", "p2")


class TestValidation:
    def test_empty_plan_is_falsy_and_fine(self):
        plan = FaultPlan.none()
        assert not plan
        assert plan.describe() == "none"

    def test_non_clause_rejected(self):
        with pytest.raises(FaultModelError):
            FaultPlan(["p0 dies"])

    def test_negative_crash_step(self):
        with pytest.raises(FaultModelError):
            FaultPlan([Crash("p0", -1)])

    def test_recovery_must_follow_crash(self):
        with pytest.raises(FaultModelError):
            FaultPlan([CrashRecovery("p0", at_step=5, recover_at=5)])

    def test_contradictory_dead_and_recovering(self):
        with pytest.raises(FaultModelError, match="contradictory"):
            FaultPlan([Crash("p0", 0), CrashRecovery("p0", 2, 9)])

    def test_double_crash_claim(self):
        with pytest.raises(FaultModelError, match="contradictory"):
            FaultPlan([Crash("p0", 0), Crash("p0", 5)])

    def test_negative_omission_budget(self):
        with pytest.raises(FaultModelError):
            FaultPlan([Omission(destination="p0", budget=-1)])

    def test_probability_out_of_range(self):
        with pytest.raises(FaultModelError):
            FaultPlan([Omission(destination="p0", probability=1.5)])

    def test_partition_needs_two_groups(self):
        with pytest.raises(FaultModelError):
            FaultPlan([Partition((frozenset({"p0"}),))])

    def test_partition_groups_may_not_overlap(self):
        with pytest.raises(FaultModelError, match="overlap"):
            FaultPlan(
                [
                    Partition(
                        (frozenset({"p0", "p1"}), frozenset({"p1", "p2"}))
                    )
                ]
            )

    def test_partition_must_heal_after_start(self):
        with pytest.raises(FaultModelError):
            FaultPlan(
                [
                    Partition(
                        (frozenset({"p0"}), frozenset({"p1"})),
                        start=5,
                        heal_at=5,
                    )
                ]
            )

    def test_two_delay_clauses_per_process_rejected(self):
        with pytest.raises(FaultModelError):
            FaultPlan([Delay("p0", 0, 5), Delay("p0", 10, None)])

    def test_validate_for_unknown_process(self):
        plan = FaultPlan([Crash("ghost", 0)])
        with pytest.raises(FaultModelError, match="unknown"):
            plan.validate_for(NAMES)

    def test_fault_model_error_is_model_and_value_error(self):
        # Backwards compatibility: pre-existing except ValueError guards
        # must keep catching malformed plans.
        assert issubclass(FaultModelError, ModelError)
        assert issubclass(FaultModelError, ValueError)
        with pytest.raises(ValueError):
            CrashPlan({"p0": -3})
        with pytest.raises(FaultModelError):
            initially_dead_plans(NAMES, num_dead=5)
        import random

        with pytest.raises(FaultModelError):
            random_crash_plan(NAMES, 9, 10, random.Random(0))


class TestAlgebra:
    def test_from_and_to_crash_plan_round_trip(self):
        legacy = CrashPlan({"p0": 0, "p2": 7})
        plan = FaultPlan.from_crash_plan(legacy)
        back = plan.simple_crash_plan()
        assert back is not None
        assert back.crash_times == legacy.crash_times

    def test_simple_crash_plan_none_when_windows_present(self):
        assert FaultPlan([CrashRecovery("p0", 2, 9)]).simple_crash_plan() \
            is None
        assert FaultPlan([Delay("p0", 0, 5)]).simple_crash_plan() is None

    def test_merged_with_crashes_revalidates(self):
        plan = FaultPlan([CrashRecovery("p0", 2, 9)])
        with pytest.raises(FaultModelError, match="contradictory"):
            plan.merged_with_crashes({"p0": 4})

    def test_equality_and_hash(self):
        a = FaultPlan([Crash("p0", 0)])
        b = FaultPlan([Crash("p0", 0)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != FaultPlan([Crash("p0", 1)])

    def test_pickles(self):
        plan = FaultPlan(
            [Crash("p0", 3), Omission(destination="p1", budget=None)]
        )
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_describe_mentions_every_clause(self):
        plan = FaultPlan(
            [
                Crash("p1", 6),
                Omission(destination="p0", budget=2),
                Partition((frozenset({"p0"}), frozenset({"p1", "p2"}))),
            ]
        )
        text = plan.describe()
        assert "crash(p1@6)" in text
        assert "omit(*->p0x2)" in text
        assert "split(" in text


class TestLiveness:
    def test_may_step_crash_window(self):
        plan = FaultPlan([Crash("p0", 5)])
        assert plan.may_step("p0", 4)
        assert not plan.may_step("p0", 5)
        assert plan.may_step("p1", 99)

    def test_may_step_recovery_window(self):
        plan = FaultPlan([CrashRecovery("p0", 3, 8)])
        assert plan.may_step("p0", 2)
        assert not plan.may_step("p0", 3)
        assert not plan.may_step("p0", 7)
        assert plan.may_step("p0", 8)

    def test_faulty_processes_and_fault_point(self):
        plan = FaultPlan([Crash("p0", 5), Delay("p1", 3, None)])
        assert plan.faulty_processes == frozenset({"p0", "p1"})
        assert plan.fault_point() == 5
        assert FaultPlan.none().fault_point() is None
        # Bounded delay and recovery victims are nonfaulty.
        ok = FaultPlan([Delay("p0", 0, 9), CrashRecovery("p1", 1, 4)])
        assert ok.faulty_processes == frozenset()

    def test_plan_crash_view_mirrors_plan(self):
        plan = FaultPlan([Crash("p0", 5), CrashRecovery("p1", 2, 8)])
        view = PlanCrashView(plan)
        assert view.faulty == frozenset({"p0"})
        assert not view.is_live("p0", 5)
        assert not view.is_live("p1", 4)
        assert view.is_live("p1", 8)
        assert view.survivors(NAMES) == ("p1", "p2")

    def test_blocks_link_follows_partition_window(self):
        plan = FaultPlan(
            [
                Partition(
                    (frozenset({"p0"}), frozenset({"p1", "p2"})),
                    start=2,
                    heal_at=10,
                )
            ]
        )
        assert not plan.blocks_link("p0", "p1", 1)
        assert plan.blocks_link("p0", "p1", 2)
        assert not plan.blocks_link("p0", "p1", 10)
        assert not plan.blocks_link("p1", "p2", 5)
        assert not plan.blocks_link(None, "p1", 5)
        assert not plan.severs_link_forever("p0", "p1")


class TestStaticFragment:
    def test_initially_dead_and_severed(self):
        plan = FaultPlan(
            [
                Crash("p0", 0),
                Omission(destination="p1", budget=None),
                Partition((frozenset({"p1"}), frozenset({"p2"}))),
            ]
        )
        dead, lossy, severed = plan.static_fragment(NAMES)
        assert dead == frozenset({"p0"})
        assert lossy == frozenset({"p1"})
        assert severed == {("p1", "p2"), ("p2", "p1")}

    def test_mid_run_crash_rejected(self):
        with pytest.raises(FaultModelError, match="time-dependent"):
            FaultPlan([Crash("p0", 3)]).static_fragment(NAMES)

    def test_bounded_omission_rejected(self):
        with pytest.raises(FaultModelError):
            FaultPlan([Omission(destination="p0", budget=2)]) \
                .static_fragment(NAMES)

    def test_healing_partition_rejected(self):
        with pytest.raises(FaultModelError):
            FaultPlan(
                [
                    Partition(
                        (frozenset({"p0"}), frozenset({"p1"})), heal_at=9
                    )
                ]
            ).static_fragment(NAMES)

    def test_needs_buffer_engine(self):
        assert not FaultPlan([Crash("p0", 3)]).needs_buffer_engine
        assert FaultPlan([Omission(destination="p0")]).needs_buffer_engine
        assert FaultPlan([CrashRecovery("p0", 1, 5)]).needs_buffer_engine
