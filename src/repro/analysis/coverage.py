"""Scheduler coverage: how much of the state space does testing see?

Experiment A4's punchline is that the timeout protocol "looks fine"
under schedulers that decide quickly: its disagreeing configurations
are reachable but rarely *reached*.  This module quantifies that
blind spot: run a scheduler from one initial configuration across many
seeds, collect the set of configurations visited, and compare against
the exhaustively known reachable set.

The resulting number — visited / reachable — is the honest answer to
"how much did my test suite actually exercise?", and its typically tiny
value for random testing is the empirical case for the exhaustive
machinery this library is built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.configuration import Configuration
from repro.core.exploration import explore
from repro.core.protocol import Protocol
from repro.core.simulation import StopCondition, simulate

__all__ = ["CoverageReport", "measure_coverage"]


@dataclass(frozen=True)
class CoverageReport:
    """Visited-vs-reachable accounting for one scheduler family."""

    reachable: int
    visited: int
    runs: int
    decided_runs: int
    #: Reachable configurations carrying a decision that were visited.
    decision_configs_reachable: int
    decision_configs_visited: int

    @property
    def fraction(self) -> float:
        """Share of the reachable set any run ever touched."""
        if self.reachable == 0:
            return 0.0
        return self.visited / self.reachable

    @property
    def decision_fraction(self) -> float:
        """Share of *deciding* configurations touched — the corner
        where safety violations hide."""
        if self.decision_configs_reachable == 0:
            return 0.0
        return (
            self.decision_configs_visited
            / self.decision_configs_reachable
        )

    def summary(self) -> str:
        return (
            f"{self.visited}/{self.reachable} configurations visited "
            f"({self.fraction:.1%}) over {self.runs} runs; "
            f"decision configurations: "
            f"{self.decision_configs_visited}/"
            f"{self.decision_configs_reachable} "
            f"({self.decision_fraction:.1%})"
        )


def measure_coverage(
    protocol: Protocol,
    initial: Configuration,
    scheduler_factory: Callable[[int], object],
    runs: int = 50,
    max_steps: int = 400,
    max_configurations: int = 200_000,
) -> CoverageReport:
    """Measure state-space coverage of a scheduler family.

    Parameters
    ----------
    scheduler_factory:
        ``seed -> scheduler``; one fresh scheduler per run.
    runs:
        Number of seeded runs to union over.
    """
    graph = explore(
        protocol, initial, max_configurations=max_configurations
    )
    reachable = set(graph.configurations)
    deciding_reachable = {
        configuration
        for configuration in reachable
        if configuration.has_decision
    }

    visited: set[Configuration] = {initial}
    decided_runs = 0
    for seed in range(runs):
        result = simulate(
            protocol,
            initial,
            scheduler_factory(seed),
            max_steps=max_steps,
            stop=StopCondition.ALL_DECIDED,
        )
        current = initial
        for event in result.schedule:
            current = protocol.apply_event(current, event)
            visited.add(current)
        if result.decided:
            decided_runs += 1

    # Visited configurations outside the explored graph can only occur
    # when exploration was budget-bounded; clamp to the known set so the
    # fraction stays a fraction.
    visited &= reachable

    return CoverageReport(
        reachable=len(reachable),
        visited=len(visited),
        runs=runs,
        decided_runs=decided_runs,
        decision_configs_reachable=len(deciding_reachable),
        decision_configs_visited=len(visited & deciding_reachable),
    )
