"""E3 — Lemma 3 / Figures 2-3: bivalent successors under forced events.

From sampled bivalent configurations C and every applicable event e,
search 𝒞 for a member whose e-successor is bivalent.  Three outcomes are
possible against real (non-totally-correct) protocols:

* **found/immediate** — e(C) itself is bivalent (σ = ∅);
* **found/deferred** — a nonempty avoiding schedule was needed;
* **case-2 failure** — every configuration in e(𝒞) is univalent, and the
  checker recovers the paper's Figure-2/3 pivot structure, certifying
  that silencing e's process stalls the protocol.

The paper proves a totally correct protocol would *always* land in
"found"; the failures we observe are therefore exactly the protocol's
windows of vulnerability, localized to a process.
"""

from __future__ import annotations

from repro.adversary.lemmas import find_bivalent_successor
from repro.core.valency import Valency, ValencyAnalyzer
from repro.core.exploration import explore
from repro.experiments.harness import ExperimentResult, experiment
from repro.experiments.zoo import bivalent_zoo
from repro.adversary.certificates import Lemma3Case

__all__ = ["run"]


@experiment("E3", "Lemma 3 (Figures 2-3): bivalent successors")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    sample_limit = 40 if quick else 200
    rows = []
    for label, protocol in bivalent_zoo(quick):
        analyzer = ValencyAnalyzer(protocol)
        # Collect bivalent configurations from every initial hypercube
        # corner, breadth-first, up to the sample budget.
        bivalent_configurations = []
        for initial in protocol.initial_configurations():
            graph = explore(protocol, initial)
            for configuration in graph.configurations:
                if analyzer.valency(configuration) is Valency.BIVALENT:
                    bivalent_configurations.append(configuration)
        # Deduplicate while preserving order, then trim.
        seen = set()
        sampled = []
        for configuration in bivalent_configurations:
            if configuration not in seen:
                seen.add(configuration)
                sampled.append(configuration)
            if len(sampled) >= sample_limit:
                break

        searches = found_immediate = found_deferred = failures = 0
        total_depth = 0
        total_examined = 0
        for configuration in sampled:
            for event in protocol.enabled_events(configuration):
                searches += 1
                outcome = find_bivalent_successor(
                    protocol, analyzer, configuration, event
                )
                total_examined += outcome.configurations_examined
                if outcome.certificate is not None:
                    if outcome.certificate.case is Lemma3Case.IMMEDIATE:
                        found_immediate += 1
                    else:
                        found_deferred += 1
                    total_depth += outcome.certificate.search_depth
                elif outcome.failure is not None:
                    failures += 1
        rows.append(
            {
                "protocol": label,
                "bivalent_configs": len(sampled),
                "searches": searches,
                "immediate": found_immediate,
                "deferred": found_deferred,
                "case2_failures": failures,
                "avg_sigma_len": (
                    total_depth / max(found_immediate + found_deferred, 1)
                ),
                "avg_examined": total_examined / max(searches, 1),
            }
        )
    return ExperimentResult(
        exp_id="E3",
        title="Lemma 3 (Figures 2-3): bivalent successors",
        rows=tuple(rows),
        notes=(
            "immediate + deferred = stages the adversary can extend; "
            "case2_failures localize the protocol's vulnerability to "
            "one process (Figure 3's argument), handing the adversary "
            "its single fault",
            "a totally correct protocol would show case2_failures == 0 "
            "for every event — Theorem 1 says no such protocol exists",
        ),
        seed=seed,
        quick=quick,
    )
