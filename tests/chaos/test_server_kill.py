"""Acceptance pin: SIGKILL the daemon mid-job, restart, byte-identical.

This is the PR's headline robustness claim, exercised against real
subprocesses: a daemon killed with ``SIGKILL`` (no drain, no warning)
while a 50k-node budget-capped exploration of ``benor``/3 is in
flight must, after restart on the same spool, resume the job from its
checkpoint and answer with a ``result`` block — census fingerprint
included — identical to an uninterrupted cold run.
"""

import json

from repro.core.resilience import run_chaos_suite
from repro.serve.chaos import run_server_kill
from repro import registry


class TestServerKill:
    def test_sigkill_mid_job_resumes_byte_identical(self, tmp_path):
        outcome = run_server_kill(
            "benor",
            n=3,
            budget=50_000,
            checkpoint_every_s=0.2,
            work_dir=str(tmp_path),
        )
        assert outcome.recovered, outcome.detail
        assert outcome.fingerprint_match, outcome.detail
        # The kill must land mid-flight (after at least one checkpoint,
        # before completion) for the resume path to be the thing under
        # test; 50k nodes of benor take seconds, so this is stable.
        assert outcome.stats["mid_flight"], outcome.detail
        assert outcome.stats["resumes"] >= 1

    def test_suite_entry_point_skips_without_protocol_name(self):
        protocol = registry.info("parity-arbiter").build(3)
        outcomes = run_chaos_suite(
            protocol,
            scenarios=("server-kill",),
            max_configurations=2_000,
        )
        assert len(outcomes) == 1
        assert outcomes[0].ok
        assert "skipped" in outcomes[0].detail

    def test_suite_entry_point_runs_with_protocol_name(self, tmp_path):
        protocol = registry.info("parity-arbiter").build(3)
        outcomes = run_chaos_suite(
            protocol,
            scenarios=("server-kill",),
            max_configurations=2_000,
            work_dir=str(tmp_path),
            protocol_name="parity-arbiter",
        )
        assert len(outcomes) == 1
        assert outcomes[0].ok, outcomes[0].detail
        # parity-arbiter at this budget finishes in milliseconds; the
        # kill may land before or after completion, but the recovered
        # answer must match the cold run either way.
        assert outcomes[0].fingerprint_match
