"""Persistent completed-result cache.

One file per :func:`repro.serve.wire.cache_key`, holding the *exact
bytes* of the result payload.  Serving stored bytes (rather than
re-serializing a parsed object) is what makes a cache hit — and every
follower of a single-flight group — byte-identical to the first
response, which the single-flight tests pin.

Only *complete* results are stored: a deadline-truncated partial answer
is honest for the client that hit the deadline, but it must never be
served to a later client with more patience (the job manager enforces
this before calling :meth:`ResultCache.put`).
"""

from __future__ import annotations

from pathlib import Path

from repro.serve.spool import atomic_write_bytes

__all__ = ["ResultCache"]


class ResultCache:
    """Directory-backed bytes cache with atomic writes."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"cache key must be a hex digest, got {key!r}")
        return self.directory / f"{key}.json"

    def get(self, key: str) -> bytes | None:
        try:
            return self._path(key).read_bytes()
        except OSError:
            return None

    def put(self, key: str, payload: bytes) -> None:
        atomic_write_bytes(self._path(key), payload)

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))
