"""Smoke tests: every shipped example runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 3
    assert any(path.name == "quickstart.py" for path in EXAMPLES)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_cleanly(script, tmp_path):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
        cwd=tmp_path,  # examples must not depend on the repo cwd
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate something"
