"""E7 — conclusion / references [2] and [20]: randomized consensus.

Two panels:

**Termination panel** (Ben-Or, reference [2]): under a seeded random
scheduler with one mid-run crash, across many random tapes, the
protocol terminates in every trial (empirical frequency → 1) with
agreement and validity intact — "termination with probability 1", the
conclusion's escape from determinism.

**Coin panel** (Ben-Or vs. Rabin's common coin, reference [20]): on the
adversarial input split (half zeros, half ones — no initial majority),
private coins must *happen* to agree before progress is made, so the
round count grows with N; a shared coin gives every stuck round an
independent constant probability of unanimity, so rounds stay O(1) in
N.  Who wins and the growth-vs-flat shape is the reproduction target.
"""

from __future__ import annotations

import random

from repro.analysis.stats import mean, quantile
from repro.core.simulation import StopCondition, simulate
from repro.experiments.harness import ExperimentResult, experiment
from repro.protocols import BenOrProcess, CommonCoinProcess, make_protocol
from repro.schedulers import CrashPlan, RandomScheduler

__all__ = ["run", "benor_trial", "coin_trial"]


def benor_trial(
    n: int, f: int, seed: int, crash: bool, max_steps: int = 6000
):
    """One Ben-Or run; returns the SimulationResult and the max round
    reached by any decided process."""
    protocol = make_protocol(BenOrProcess, n, f=f, seed=seed)
    rng = random.Random(seed)
    inputs = [rng.randint(0, 1) for _ in range(n)]
    plan = CrashPlan.none()
    if crash and f > 0:
        victim = f"p{rng.randrange(n)}"
        plan = CrashPlan({victim: rng.randint(0, 30)})
    scheduler = RandomScheduler(
        seed=seed + 1, null_probability=0.2, crash_plan=plan
    )
    initial = protocol.initial_configuration(inputs)
    result = simulate(
        protocol,
        initial,
        scheduler,
        max_steps=max_steps,
        stop=StopCondition.ALL_DECIDED,
    )
    rounds = [
        result.final_configuration.state_of(name).data[1]
        for name in protocol.process_names
    ]
    return result, max(rounds)


def coin_trial(cls, n: int, seed: int, max_steps: int = 20_000):
    """One run on the adversarial split input (half 0s, half 1s), fault
    free, under a noisy random scheduler; returns (result, max round)."""
    protocol = make_protocol(cls, n, f=(n - 1) // 2, seed=seed)
    inputs = [i % 2 for i in range(n)]
    scheduler = RandomScheduler(seed=seed + 7, null_probability=0.3)
    result = simulate(
        protocol,
        protocol.initial_configuration(inputs),
        scheduler,
        max_steps=max_steps,
        stop=StopCondition.ALL_DECIDED,
    )
    rounds = [
        result.final_configuration.state_of(name).data[1]
        for name in protocol.process_names
    ]
    return result, max(rounds)


@experiment("E7", "Conclusion [2]/[20]: randomized consensus terminates")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    trials = 20 if quick else 100
    settings = [(3, 1), (4, 1)] if quick else [(3, 1), (4, 1), (5, 2), (7, 3)]
    rows = []
    for n, f in settings:
        for crash in (False, True):
            decided = agreed = 0
            rounds: list[int] = []
            steps: list[int] = []
            for trial in range(trials):
                result, max_round = benor_trial(
                    n, f, seed * 10_000 + trial, crash
                )
                if result.decided:
                    decided += 1
                    rounds.append(max_round)
                    steps.append(result.steps)
                if result.agreement_holds:
                    agreed += 1
            rows.append(
                {
                    "panel": "termination",
                    "coin": "private",
                    "N": n,
                    "crash": crash,
                    "trials": trials,
                    "terminated": decided,
                    "agreement": agreed,
                    "mean_rounds": mean(rounds) if rounds else 0.0,
                    "p90_rounds": quantile(rounds, 0.9) if rounds else 0.0,
                }
            )

    # Coin panel: private vs. shared coins on the adversarial split.
    coin_sizes = (4, 6) if quick else (4, 6, 8)
    coin_trials = 15 if quick else 60
    for n in coin_sizes:
        for label, cls in (
            ("private", BenOrProcess),
            ("shared", CommonCoinProcess),
        ):
            decided = agreed = 0
            rounds = []
            for trial in range(coin_trials):
                result, max_round = coin_trial(
                    cls, n, seed * 20_000 + trial
                )
                if result.decided:
                    decided += 1
                    rounds.append(max_round)
                if result.agreement_holds:
                    agreed += 1
            rows.append(
                {
                    "panel": "coin",
                    "coin": label,
                    "N": n,
                    "crash": False,
                    "trials": coin_trials,
                    "terminated": decided,
                    "agreement": agreed,
                    "mean_rounds": mean(rounds) if rounds else 0.0,
                    "p90_rounds": quantile(rounds, 0.9) if rounds else 0.0,
                }
            )

    return ExperimentResult(
        exp_id="E7",
        title="Conclusion [2]/[20]: randomized consensus terminates",
        rows=tuple(rows),
        notes=(
            "expected: terminated == trials on every row (probability-1 "
            "termination shows up as 100% over finite samples against a "
            "non-tape-reading scheduler); agreement == trials always "
            "(safety is deterministic)",
            "rounds grow with N and with a crash present, but the "
            "distribution stays light-tailed — the coin breaks symmetry "
            "quickly",
            "coin panel (split inputs, no faults): private-coin rounds "
            "grow with N while shared-coin rounds stay flat — Rabin's "
            "common coin [20] buys O(1) expected rounds",
        ),
        seed=seed,
        quick=quick,
    )
