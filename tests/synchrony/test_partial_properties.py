"""Property tests for the partial-synchrony protocol's safety.

The quorum-intersection argument promises agreement under *any* drop
rule, any GST, and any ≤ f crash pattern.  That is a universally
quantified claim, so it gets hypothesis treatment: random message loss,
random stabilization times, random crashes — agreement must never
break, and whenever GST lands with enough live rounds left, everyone
decides.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.synchrony.partial import (
    RotatingCoordinatorProcess,
    coordinator_blackout,
    random_drops,
    run_partial_sync,
)


def build(names, f):
    return [RotatingCoordinatorProcess(n, names, f=f) for n in names]


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_agreement_under_arbitrary_loss_and_crashes(seed):
    rng = random.Random(seed)
    n = rng.choice([3, 5, 7])
    f = (n - 1) // 2
    names = tuple(f"p{i}" for i in range(n))
    inputs = {name: rng.randint(0, 1) for name in names}
    gst = rng.choice([1, 4, 9, 10**9])
    rule = random_drops(seed=seed, deliver_probability=rng.random())
    crash_rounds = {
        victim: rng.randint(1, 10)
        for victim in rng.sample(list(names), rng.randint(0, f))
    }
    result = run_partial_sync(
        build(names, f),
        inputs,
        gst=gst,
        drop_rule=rule,
        crash_rounds=crash_rounds,
        max_rounds=20,
    )
    assert result.agreement_holds
    assert result.decision_values <= set(inputs.values())


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_liveness_after_gst(seed):
    """With GST early enough and ≤ f crashes, every live process
    decides within f + 1 stabilized rounds."""
    rng = random.Random(seed)
    n = 5
    f = 2
    names = tuple(f"p{i}" for i in range(n))
    inputs = {name: rng.randint(0, 1) for name in names}
    gst = rng.randint(1, 6)
    rule = coordinator_blackout(lambda r: names[(r - 1) % n])
    crash_rounds = {
        victim: rng.randint(1, 4)
        for victim in rng.sample(list(names), rng.randint(0, f))
    }
    result = run_partial_sync(
        build(names, f),
        inputs,
        gst=gst,
        drop_rule=rule,
        crash_rounds=crash_rounds,
        max_rounds=gst + n + 2,
    )
    assert result.all_live_decided
    assert result.agreement_holds
    assert max(result.decision_rounds.values()) <= gst + f + 1


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_unanimity_is_stable(seed):
    """Validity sharpened: with unanimous inputs, the decision equals
    that input under every loss pattern."""
    rng = random.Random(seed)
    value = rng.randint(0, 1)
    names = tuple(f"p{i}" for i in range(5))
    result = run_partial_sync(
        build(names, 2),
        {name: value for name in names},
        gst=rng.randint(1, 8),
        drop_rule=random_drops(seed=seed, deliver_probability=0.5),
        max_rounds=25,
    )
    assert result.decision_values <= {value}
