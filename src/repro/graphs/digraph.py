"""Directed graphs for Section 4: ancestors, closure, initial cliques.

The initially-dead-processes protocol (Theorem 2) has the processes build
a directed graph ``G`` (an edge ``i -> j`` iff ``j`` received a stage-1
message from ``i``), take its transitive closure ``G+``, and locate the
unique *initial clique* — "a clique with no incoming edges" — using the
paper's characterization: "a node k is in an initial clique iff k is
itself an ancestor of every node j that is an ancestor of k."

This module implements exactly that vocabulary, from scratch (the test
suite cross-validates it against networkx).  Graphs are small — one node
per process — so simple set-based algorithms are the right tool.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable

__all__ = ["Digraph"]


class Digraph:
    """A finite directed graph over hashable node labels."""

    def __init__(
        self,
        nodes: Iterable[Hashable] = (),
        edges: Iterable[tuple[Hashable, Hashable]] = (),
    ):
        self._succ: dict[Hashable, set[Hashable]] = {}
        self._pred: dict[Hashable, set[Hashable]] = {}
        for node in nodes:
            self.add_node(node)
        for source, target in edges:
            self.add_edge(source, target)

    # -- construction ---------------------------------------------------------

    def add_node(self, node: Hashable) -> None:
        """Add *node* (idempotent)."""
        self._succ.setdefault(node, set())
        self._pred.setdefault(node, set())

    def add_edge(self, source: Hashable, target: Hashable) -> None:
        """Add the edge ``source -> target``, creating nodes as needed."""
        self.add_node(source)
        self.add_node(target)
        self._succ[source].add(target)
        self._pred[target].add(source)

    # -- basic queries -----------------------------------------------------------

    @property
    def nodes(self) -> frozenset[Hashable]:
        return frozenset(self._succ)

    def edges(self) -> frozenset[tuple[Hashable, Hashable]]:
        return frozenset(
            (source, target)
            for source, targets in self._succ.items()
            for target in targets
        )

    def has_edge(self, source: Hashable, target: Hashable) -> bool:
        return target in self._succ.get(source, ())

    def successors(self, node: Hashable) -> frozenset[Hashable]:
        return frozenset(self._succ.get(node, ()))

    def predecessors(self, node: Hashable) -> frozenset[Hashable]:
        return frozenset(self._pred.get(node, ()))

    def in_degree(self, node: Hashable) -> int:
        return len(self._pred.get(node, ()))

    def __contains__(self, node: Hashable) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    # -- reachability ---------------------------------------------------------------

    def ancestors(self, node: Hashable) -> frozenset[Hashable]:
        """Nodes with a path of length ≥ 1 *into* ``node``.

        ``node`` itself is an ancestor of itself iff it lies on a cycle —
        the convention the paper's initial-clique test relies on.
        """
        return self._reach(node, self._pred)

    def descendants(self, node: Hashable) -> frozenset[Hashable]:
        """Nodes reachable from ``node`` by a path of length ≥ 1."""
        return self._reach(node, self._succ)

    def _reach(
        self, node: Hashable, adjacency: dict[Hashable, set[Hashable]]
    ) -> frozenset[Hashable]:
        if node not in self._succ:
            raise KeyError(node)
        seen: set[Hashable] = set()
        queue: deque[Hashable] = deque(adjacency[node])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(adjacency[current] - seen)
        return frozenset(seen)

    def transitive_closure(self) -> "Digraph":
        """``G+``: an edge ``i -> j`` iff G has a path ``i -> ... -> j``
        of length ≥ 1."""
        closure = Digraph(nodes=self.nodes)
        for node in self._succ:
            for descendant in self.descendants(node):
                closure.add_edge(node, descendant)
        return closure

    # -- Section 4 vocabulary -----------------------------------------------------------

    def in_initial_clique(self, node: Hashable) -> bool:
        """The paper's test: ``k`` is in an initial clique iff ``k`` is an
        ancestor of every node ``j`` that is an ancestor of ``k``."""
        ancestors_of_node = self.ancestors(node)
        return all(
            node in self.ancestors(j) for j in ancestors_of_node
        )

    def initial_clique(self) -> frozenset[Hashable]:
        """All nodes passing :meth:`in_initial_clique`.

        For the graphs Section 4 produces (every node has in-degree ≥
        L-1 in ``G``, hence ≥ L-1 predecessors in ``G+``), this set is a
        single clique with no incoming edges and cardinality ≥ L; for an
        arbitrary graph it is the union of the source strongly connected
        components, restricted to those that are sources.
        """
        return frozenset(
            node for node in self._succ if self.in_initial_clique(node)
        )

    def is_clique(self, nodes: Iterable[Hashable]) -> bool:
        """Whether every ordered pair of distinct *nodes* is an edge."""
        members = list(nodes)
        return all(
            self.has_edge(a, b)
            for a in members
            for b in members
            if a != b
        )

    def subgraph(self, nodes: Iterable[Hashable]) -> "Digraph":
        """The induced subgraph on *nodes*."""
        keep = set(nodes)
        sub = Digraph(nodes=keep & self.nodes)
        for source in keep:
            for target in self._succ.get(source, ()):
                if target in keep:
                    sub.add_edge(source, target)
        return sub

    def __repr__(self) -> str:
        return (
            f"Digraph(nodes={len(self._succ)}, "
            f"edges={sum(len(t) for t in self._succ.values())})"
        )
