"""Scripted scheduling: replay an exact event sequence, then hand off.

Reproducibility workhorse: replay a schedule captured from a
certificate, a bundle, or a failing simulation, and optionally continue
with a live scheduler afterwards ("play these 40 adversarial steps,
then let round-robin try to recover").  The examples and the
timeout-trap analysis are exactly this pattern; promoting it to the
library saves every user from re-writing the same ten lines.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.configuration import Configuration
from repro.core.events import Event, Schedule
from repro.core.protocol import Protocol
from repro.schedulers.base import CrashPlan, Scheduler

__all__ = ["ScriptedScheduler"]


class ScriptedScheduler(Scheduler):
    """Plays back a fixed event sequence, then delegates or stops.

    Parameters
    ----------
    script:
        Events to emit, in order.  Events that are not applicable when
        their turn comes raise at application time (the simulator
        applies them verbatim) — a scripted replay that diverges from
        the state it was recorded against *should* fail loudly.
    then:
        Optional scheduler that takes over once the script is
        exhausted; ``None`` ends the run there.
    """

    def __init__(
        self,
        script: Schedule | Iterable[Event],
        then: Scheduler | None = None,
    ):
        super().__init__(
            then.crash_plan if then is not None else CrashPlan.none()
        )
        self._script = tuple(script)
        self._then = then
        self._cursor = 0

    @property
    def remaining(self) -> int:
        """Scripted events not yet emitted."""
        return max(len(self._script) - self._cursor, 0)

    def next_event(
        self,
        protocol: Protocol,
        configuration: Configuration,
        step_index: int,
    ) -> Event | None:
        if self._cursor < len(self._script):
            event = self._script[self._cursor]
            self._cursor += 1
            return event
        if self._then is not None:
            return self._then.next_event(
                protocol, configuration, step_index
            )
        return None

    def live_processes(self, protocol: Protocol) -> tuple[str, ...]:
        if self._then is not None:
            return self._then.live_processes(protocol)
        return protocol.process_names

    def reset(self) -> None:
        self._cursor = 0
        if self._then is not None:
            self._then.reset()
