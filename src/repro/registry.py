"""Named protocol registry, for the CLI and for user convenience.

Maps short names ("arbiter", "2pc", ...) to factories so protocols can
be constructed from strings: ``build("arbiter", n=3)``.  The registry
also records each protocol's character — whether it is safe, whether it
is order-sensitive, whether exact valency analysis is feasible — which
the CLI uses to pick sensible defaults and refuse nonsensical requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.protocol import Protocol
from repro.protocols import (
    AlwaysZeroProcess,
    ArbiterProcess,
    BenOrProcess,
    CommonCoinProcess,
    InitiallyDeadProcess,
    InputEchoProcess,
    ParityArbiterProcess,
    QuorumVoteProcess,
    ThreePhaseCommitProcess,
    TimeoutArbiterProcess,
    TwoPhaseCommitProcess,
    WaitForAllProcess,
    make_protocol,
)

__all__ = ["ProtocolInfo", "REGISTRY", "build", "names", "info"]


@dataclass(frozen=True)
class ProtocolInfo:
    """Catalog entry for one named protocol."""

    name: str
    factory: Callable[..., Protocol]
    description: str
    #: Partially correct (agreement + both values reachable)?
    safe: bool
    #: Has bivalent initial configurations (order-sensitive decisions)?
    order_sensitive: bool
    #: Finite reachable graph for small N (exact valency feasible)?
    analyzable: bool
    #: Default number of processes.
    default_n: int = 3

    def build(self, n: int | None = None, **kwargs) -> Protocol:
        return self.factory(n if n is not None else self.default_n, **kwargs)


def _entry(name, cls, description, safe, order_sensitive, analyzable,
           default_n=3):
    return ProtocolInfo(
        name=name,
        factory=lambda n, **kw: make_protocol(cls, n, **kw),
        description=description,
        safe=safe,
        order_sensitive=order_sensitive,
        analyzable=analyzable,
        default_n=default_n,
    )


REGISTRY: dict[str, ProtocolInfo] = {
    entry.name: entry
    for entry in (
        _entry(
            "arbiter",
            ArbiterProcess,
            "proposers race claims to a referee; first claim wins",
            safe=True,
            order_sensitive=True,
            analyzable=True,
        ),
        _entry(
            "parity-arbiter",
            ParityArbiterProcess,
            "arbiter with parity-stamped claims; eternally stallable "
            "bivalent region",
            safe=True,
            order_sensitive=True,
            analyzable=True,
        ),
        _entry(
            "wait-for-all",
            WaitForAllProcess,
            "broadcast votes, wait for all N, majority decides",
            safe=True,
            order_sensitive=False,
            analyzable=True,
        ),
        _entry(
            "quorum-vote",
            QuorumVoteProcess,
            "decide on the first majority quorum of votes (UNSAFE)",
            safe=False,
            order_sensitive=True,
            analyzable=True,
        ),
        _entry(
            "2pc",
            TwoPhaseCommitProcess,
            "two-phase commit: vote, then coordinator decides AND",
            safe=True,
            order_sensitive=False,
            analyzable=True,
        ),
        _entry(
            "3pc",
            ThreePhaseCommitProcess,
            "three-phase commit: prepare round between vote and commit",
            safe=True,
            order_sensitive=False,
            analyzable=True,
        ),
        _entry(
            "initially-dead",
            InitiallyDeadProcess,
            "Theorem 2: two-stage graph protocol, majority alive",
            safe=True,
            order_sensitive=True,
            analyzable=False,
            default_n=5,
        ),
        _entry(
            "benor",
            BenOrProcess,
            "Ben-Or randomized consensus (terminates w.p. 1)",
            safe=True,
            order_sensitive=True,
            analyzable=False,
            default_n=4,
        ),
        _entry(
            "common-coin",
            CommonCoinProcess,
            "Rabin-style shared-coin consensus (O(1) expected rounds)",
            safe=True,
            order_sensitive=True,
            analyzable=False,
            default_n=4,
        ),
        _entry(
            "timeout-arbiter",
            TimeoutArbiterProcess,
            "arbiter + self-clocked backup escalation (UNSAFE: the "
            "timeout converts blocking into disagreement)",
            safe=False,
            order_sensitive=True,
            analyzable=True,
            default_n=4,
        ),
        _entry(
            "always-zero",
            AlwaysZeroProcess,
            "degenerate: decides 0 unconditionally (fails condition 2)",
            safe=False,
            order_sensitive=False,
            analyzable=True,
        ),
        _entry(
            "input-echo",
            InputEchoProcess,
            "degenerate: decides own input (fails agreement)",
            safe=False,
            order_sensitive=False,
            analyzable=True,
            default_n=2,
        ),
    )
}


def names() -> list[str]:
    """All registered protocol names, sorted."""
    return sorted(REGISTRY)


def info(name: str) -> ProtocolInfo:
    """Catalog entry for *name*.

    Raises
    ------
    KeyError
        With the list of valid names, if unknown.
    """
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; available: {names()}"
        ) from None


def build(name: str, n: int | None = None, **kwargs) -> Protocol:
    """Construct a registered protocol by name."""
    return info(name).build(n, **kwargs)
