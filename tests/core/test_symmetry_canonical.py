"""Canonical-labeling properties of the partition-refinement quotient.

The quotient's contract has three independent layers, each pinned here:

* **Canonical labeling** — ``canonical(C) == canonical(π·C)`` for every
  renaming π (the function is constant on orbits), the result is itself
  a member of the orbit, and the map is idempotent.  The refine and
  brute algorithms may elect *different* representatives, so they are
  never compared form-for-form — only their orbit *partitions* must
  agree.
* **Replayability** — a witness read off a quotient graph un-quotients
  into concrete schedules that replay through plain protocol semantics
  and pass the Section-2 admissibility audit, under ``--symmetry``,
  ``--por --symmetry``, and the brute oracle alike.
* **Composition** — POR×symmetry preserves the census of the unreduced
  graph, and the composed pipeline is deterministic: serial, parallel
  and checkpoint-resumed runs produce byte-identical fingerprints.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.errors import SymmetryError
from repro.core.exploration import GlobalConfigurationGraph
from repro.core.reduction import (
    ReductionPolicy,
    SymmetryQuotient,
    validate_symmetry,
)
from repro.core.valency import ValencyAnalyzer
from repro.experiments.zoo import symmetric_zoo
from repro.faults import FaultPlan, audit_run
from repro.protocols import (
    ArbiterProcess,
    QuorumVoteProcess,
    make_protocol,
)

SYM = ReductionPolicy(symmetry=True)
BOTH = ReductionPolicy(por=True, symmetry=True)
BRUTE = ReductionPolicy(symmetry=True, symmetry_algorithm="brute")

#: Unreduced exploration depth for building raw configuration pools.
#: Deep enough to reach non-trivial buffers, shallow enough that the
#: unreduced n=3 graphs stay tiny.
_POOL_DEPTH = 4
_POOL_CAP = 1500

_pools: dict[str, tuple] = {}


def _pool(label):
    """``(quotient, brute_quotient, packed_pool)`` for a zoo member.

    The pool is drawn from an *unreduced* exploration so it contains
    raw configurations, not just orbit representatives.
    """
    cached = _pools.get(label)
    if cached is not None:
        return cached
    instance = next(
        inst for inst in symmetric_zoo(quick=True) if inst.label == label
    )
    graph = GlobalConfigurationGraph(instance.protocol)
    for initial in instance.protocol.initial_configurations():
        graph.explore(
            initial,
            max_levels=_POOL_DEPTH,
            max_configurations=_POOL_CAP,
        )
    pool = [graph.packed_at(node) for node in range(len(graph))]
    quotient, problem = SymmetryQuotient.build(
        instance.protocol, graph.codec, SYM
    )
    assert problem is None, problem
    brute, problem = SymmetryQuotient.build(
        instance.protocol, graph.codec, BRUTE
    )
    assert problem is None, problem
    result = (quotient, brute, pool)
    _pools[label] = result
    return result


_LABELS = [inst.label for inst in symmetric_zoo(quick=True)]


class TestCanonicalLabeling:
    @pytest.mark.parametrize("label", _LABELS)
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_canonical_constant_on_orbits(self, label, data):
        quotient, _, pool = _pool(label)
        packed = data.draw(st.sampled_from(pool))
        n = len(quotient.names)
        perm = tuple(data.draw(st.permutations(range(n))))
        renamed = quotient.apply_perm(packed, perm)
        canonical, rho = quotient.canonicalize_with_perm(packed)
        canonical_renamed, rho_renamed = quotient.canonicalize_with_perm(
            renamed
        )
        # Constant on the orbit, and each result is a genuine image of
        # its own argument under the returned renaming.
        assert canonical == canonical_renamed
        assert quotient.apply_perm(packed, rho) == canonical
        assert quotient.apply_perm(renamed, rho_renamed) == canonical
        # Idempotent: the representative is its own representative.
        again, identity = quotient.canonicalize_with_perm(canonical)
        assert again == canonical
        assert identity == quotient.identity

    @pytest.mark.parametrize("label", _LABELS)
    def test_refine_and_brute_agree_on_orbit_partition(self, label):
        # The two algorithms may elect different representatives, so
        # compare the partitions they induce, never the forms.
        quotient, brute, pool = _pool(label)
        by_refine: dict[tuple, set] = {}
        by_brute: dict[tuple, set] = {}
        for index, packed in enumerate(pool):
            by_refine.setdefault(
                quotient.canonicalize(packed), set()
            ).add(index)
            by_brute.setdefault(brute.canonicalize(packed), set()).add(
                index
            )
        refine_partition = {frozenset(s) for s in by_refine.values()}
        brute_partition = {frozenset(s) for s in by_brute.values()}
        assert refine_partition == brute_partition

    @pytest.mark.parametrize("label", _LABELS)
    def test_zoo_members_pass_generator_validation(self, label):
        instance = next(
            inst
            for inst in symmetric_zoo(quick=True)
            if inst.label == label
        )
        assert validate_symmetry(instance.protocol) == []


class TestReplayableWitnesses:
    @pytest.mark.parametrize(
        "policy",
        [SYM, BOTH, BRUTE],
        ids=["symmetry", "por+symmetry", "symmetry-brute"],
    )
    def test_witness_round_trip_replays_and_audits(self, policy):
        # quorum-vote/3 is symmetric, order-sensitive, and broken
        # enough to have bivalent initials — the interesting case for
        # un-quotienting: the canonical path's renamings must compose
        # back into schedules that replay from the *asked* initial.
        protocol = make_protocol(QuorumVoteProcess, 3)
        analyzer = ValencyAnalyzer(protocol, reduction=policy)
        try:
            analyzer.classify_initials()
            initial = protocol.initial_configuration([0, 1, 0])
            witness = analyzer.bivalence_witness(initial)
            assert witness is not None
            assert witness.verify(protocol)
            for schedule in (witness.to_zero, witness.to_one):
                verdict = audit_run(
                    protocol, initial, schedule, FaultPlan.none()
                )
                assert verdict.admissible, verdict.notes
        finally:
            analyzer.close()


class TestComposedReduction:
    @pytest.mark.parametrize(
        "label", ["wait-for-all/3", "quorum-vote/3"]
    )
    def test_composed_census_matches_unreduced(self, label):
        instance = next(
            inst
            for inst in symmetric_zoo(quick=True)
            if inst.label == label
        )
        protocol = instance.protocol

        def census(reduction):
            analyzer = ValencyAnalyzer(protocol, reduction=reduction)
            try:
                return (
                    analyzer.classify_initials(),
                    len(analyzer.graph),
                )
            finally:
                analyzer.close()

        full, full_nodes = census(None)
        composed, composed_nodes = census(BOTH)
        assert composed == full
        assert composed_nodes < full_nodes

    def test_benor_round_symmetry_census_bounded(self):
        # Ben-Or's state space is infinite (round numbers grow), so the
        # identity check is depth-bounded and symmetry-only: the
        # quotient maps BFS levels 1:1 through renamings, so decisions
        # reachable within the horizon must coincide level for level.
        instance = next(
            inst
            for inst in symmetric_zoo(quick=True)
            if inst.label == "benor/3"
        )
        protocol = instance.protocol
        root = protocol.initial_configuration([0, 1, 1])

        def decisions(reduction):
            graph = GlobalConfigurationGraph(protocol, reduction=reduction)
            result = graph.explore(
                root, max_levels=instance.depth_horizon
            )
            reached = set()
            for node in result.nodes:
                reached |= graph.codec.decision_values(
                    graph.packed_at(node)
                )
            return reached, len(result.nodes)

        full, full_nodes = decisions(None)
        reduced, reduced_nodes = decisions(SYM)
        assert reduced == full
        assert reduced_nodes < full_nodes

    def test_asymmetric_protocol_refused_composed(self):
        protocol = make_protocol(ArbiterProcess, 3)
        with pytest.raises(SymmetryError, match="symmetric = True"):
            GlobalConfigurationGraph(protocol, reduction=BOTH)

    def test_serial_parallel_resumed_fingerprints_agree(self, tmp_path):
        instance = next(
            inst
            for inst in symmetric_zoo(quick=True)
            if inst.label == "quorum-vote/3"
        )
        protocol = instance.protocol
        root = protocol.initial_configuration([0, 1, 0])

        serial = GlobalConfigurationGraph(protocol, reduction=BOTH)
        serial.explore(root)
        fingerprint = serial.fingerprint()

        parallel = GlobalConfigurationGraph(
            protocol, workers=4, min_batch_per_worker=1, reduction=BOTH
        )
        parallel.explore(root)
        assert parallel.fingerprint() == fingerprint

        partial = GlobalConfigurationGraph(protocol, reduction=BOTH)
        partial.explore(root, max_configurations=40)
        path = str(tmp_path / "composed.ckpt")
        save_checkpoint(partial, path)
        resumed = load_checkpoint(path, protocol)
        resumed.explore(root)
        assert resumed.fingerprint() == fingerprint


class TestScaledZoo:
    @pytest.mark.parametrize(
        "label",
        [
            inst.label
            for inst in symmetric_zoo(quick=False)
            if inst.bench_only_unreduced
        ],
    )
    def test_n5_members_explore_reduced_within_horizon(self, label):
        instance = next(
            inst
            for inst in symmetric_zoo(quick=False)
            if inst.label == label
        )
        # bench_only_unreduced means exactly that: tier-1 never runs
        # these unreduced — the composed reduction is what makes the
        # horizon affordable on one core.
        mixed = next(
            initial
            for initial in instance.protocol.initial_configurations()
            if len(set(instance.protocol.input_vector(initial))) > 1
        )
        graph = GlobalConfigurationGraph(
            instance.protocol, reduction=BOTH
        )
        result = graph.explore(
            mixed,
            max_levels=instance.depth_horizon,
            max_configurations=200_000,
        )
        assert result.nodes
        assert graph._quotient is not None
        assert graph.stats.sym_fallbacks == 0
        assert graph.stats.sym_canonical_misses > 0
