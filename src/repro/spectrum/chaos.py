"""Sweep-kill chaos: SIGKILL a Monte-Carlo sweep mid-grid, resume, compare.

The sweep runtime's recovery claim mirrors the exploration engine's: a
sweep killed with no warning resumes from its per-cell checkpoint and
finishes with an aggregate fingerprint byte-identical to an
uninterrupted run.  This harness proves it with a real subprocess:

1. compute a clean reference fingerprint in-process (no checkpoint);
2. launch ``python -m repro spectrum`` as a subprocess with a
   checkpoint path and a per-cell throttle that widens the kill window;
3. poll the checkpoint until at least one cell has landed, then
   ``SIGKILL`` the subprocess;
4. rerun the identical command — it must *resume* (skip the completed
   cells) and write a result whose fingerprint equals the reference.

Exposed through ``repro chaos --scenarios sweep-kill`` and pinned by
``tests/spectrum/test_sweep_chaos.py``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.resilience import ChaosOutcome
from repro.spectrum.montecarlo import SweepRunner, smoke_grid

__all__ = ["run_sweep_kill"]


def _spectrum_command(
    checkpoint: Path, out_json: Path, base_seed: int, throttle_s: float
) -> list[str]:
    return [
        sys.executable,
        "-m",
        "repro",
        "spectrum",
        "--preset",
        "smoke",
        "--seed",
        str(base_seed),
        "--checkpoint",
        str(checkpoint),
        "--json",
        str(out_json),
        "--throttle-s",
        str(throttle_s),
    ]


def _completed_cells(checkpoint: Path) -> int:
    try:
        with open(checkpoint, encoding="utf-8") as handle:
            return len(json.load(handle).get("completed", {}))
    except (OSError, json.JSONDecodeError):
        return 0


def run_sweep_kill(
    *,
    base_seed: int = 0,
    work_dir: str | None = None,
    throttle_s: float = 0.4,
    timeout_s: float = 120.0,
) -> ChaosOutcome:
    """SIGKILL a smoke-grid sweep subprocess mid-grid; the rerun must
    resume from the checkpoint and match the clean fingerprint."""
    reference = SweepRunner(
        smoke_grid(), base_seed=base_seed
    ).run().fingerprint()

    own_dir = None
    if work_dir is None:
        own_dir = tempfile.TemporaryDirectory(prefix="flpkit-sweep-kill-")
        work_dir = own_dir.name
    checkpoint = Path(work_dir) / "sweep.ckpt"
    out_json = Path(work_dir) / "sweep.json"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    command = _spectrum_command(checkpoint, out_json, base_seed, throttle_s)

    try:
        first = subprocess.Popen(
            command,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,
        )
        # Kill only once the sweep is demonstrably mid-grid: at least
        # one cell checkpointed, none of them the last (the throttle
        # guarantees a wide window between cells).
        deadline = time.monotonic() + timeout_s
        mid_grid = False
        while time.monotonic() < deadline:
            if first.poll() is not None:
                break  # finished before we could kill; still comparable
            if _completed_cells(checkpoint) >= 1:
                mid_grid = True
                break
            time.sleep(0.02)
        if first.poll() is None:
            os.kill(first.pid, signal.SIGKILL)
        first.wait()

        killed_at = _completed_cells(checkpoint)
        second = subprocess.run(
            command,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            timeout=timeout_s,
        )
        if second.returncode != 0:
            return ChaosOutcome(
                scenario="sweep-kill",
                recovered=False,
                fingerprint_match=False,
                detail=f"resumed sweep exited {second.returncode}",
            )
        with open(out_json, encoding="utf-8") as handle:
            result = json.load(handle)
        match = result["fingerprint"] == reference
        resumed = result["resumed_cells"]
        return ChaosOutcome(
            scenario="sweep-kill",
            recovered=result["completed_cells"] == result["total_cells"],
            fingerprint_match=match,
            detail=(
                f"mid_grid={mid_grid} killed_at_cell={killed_at} "
                f"resumed_cells={resumed} fingerprint_match={match}"
            ),
            stats={
                "mid_grid": mid_grid,
                "killed_at_cell": killed_at,
                "resumed_cells": resumed,
            },
        )
    finally:
        if own_dir is not None:
            own_dir.cleanup()
