"""Tests for scheduler state-space coverage measurement."""

import pytest

from repro.analysis.coverage import measure_coverage
from repro.protocols import TimeoutArbiterProcess, make_protocol
from repro.schedulers import RandomScheduler, RoundRobinScheduler


class TestCoverage:
    def test_round_robin_is_a_single_path(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        report = measure_coverage(
            arbiter3,
            initial,
            lambda seed: RoundRobinScheduler(),
            runs=5,
        )
        # Deterministic scheduler: all runs identical, tiny coverage.
        assert 0 < report.fraction < 1
        assert report.decided_runs == 5

    def test_random_covers_more_than_round_robin(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        deterministic = measure_coverage(
            arbiter3, initial, lambda seed: RoundRobinScheduler(), runs=5
        )
        randomized = measure_coverage(
            arbiter3,
            initial,
            lambda seed: RandomScheduler(seed=seed, null_probability=0.3),
            runs=40,
        )
        assert randomized.visited > deterministic.visited

    def test_fractions_bounded(self, arbiter3):
        initial = arbiter3.initial_configuration([1, 1, 0])
        report = measure_coverage(
            arbiter3,
            initial,
            lambda seed: RandomScheduler(seed=seed),
            runs=10,
        )
        assert 0.0 <= report.fraction <= 1.0
        assert 0.0 <= report.decision_fraction <= 1.0
        assert report.visited <= report.reachable

    def test_summary_format(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 1, 0])
        report = measure_coverage(
            arbiter3, initial, lambda seed: RoundRobinScheduler(), runs=2
        )
        assert "configurations visited" in report.summary()
        assert "%" in report.summary()

    def test_timeout_arbiter_blind_spot(self):
        """The A4 story, quantified: plenty of runs, tiny coverage of
        the state space where the split-brain configurations live."""
        protocol = make_protocol(TimeoutArbiterProcess, 4, timeout=2)
        initial = protocol.initial_configuration([0, 0, 0, 1])
        report = measure_coverage(
            protocol,
            initial,
            lambda seed: RandomScheduler(seed=seed, null_probability=0.3),
            runs=30,
        )
        assert report.decided_runs == 30  # testing looks healthy...
        assert report.fraction < 0.5  # ...but most states were never seen
