"""Two-phase commit, modeled as binary consensus.

The paper's introduction motivates consensus with the *transaction
commit problem*: "all the data manager processes that have participated
in the processing of a particular transaction [must] agree on whether to
install the transaction's results in the database or to discard them."

The consensus mapping is the standard one: a process's input register is
its vote (1 = "my part of the transaction succeeded, commit", 0 =
"abort"), and the decision value is the global outcome (1 = commit,
0 = abort), which must be 1 iff every vote is 1.

The protocol is classic centralized 2PC:

* every participant sends its vote to the coordinator (the coordinator's
  own input counts as its vote);
* a participant voting 0 *unilaterally aborts* — deciding 0 immediately
  is safe because the coordinator can then never commit;
* the coordinator, once it has all N votes, decides ``AND`` of the votes
  and broadcasts the outcome;
* participants decide the broadcast outcome.

2PC is partially correct, and its decision is a function of the inputs
alone — every initial configuration is univalent.  Theorem 1 therefore
defeats it through the fault-mode construction, and the *window of
vulnerability* of the introduction is concrete and demonstrable here: a
participant that voted 1 and then sees the coordinator go silent can
neither commit (it does not know the other votes) nor abort (the
coordinator may have committed) — experiment E6 measures exactly this.

Message universe: ``("vote", sender, v)`` and ``("outcome", v)``.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.process import ProcessState, Transition
from repro.protocols.base import ConsensusProcess

__all__ = ["TwoPhaseCommitProcess"]

COMMIT = 1
ABORT = 0


class TwoPhaseCommitProcess(ConsensusProcess):
    """One node of centralized two-phase commit.

    Parameters
    ----------
    coordinator:
        Name of the coordinating process; defaults to the first in the
        roster.
    unilateral_abort:
        Whether a participant voting 0 decides 0 immediately (real 2PC
        behaviour, default) or waits for the coordinator's outcome.
    """

    def __init__(
        self,
        name: str,
        peers,
        coordinator: str | None = None,
        unilateral_abort: bool = True,
    ):
        super().__init__(name, peers)
        self.coordinator = (
            coordinator if coordinator is not None else self.peers[0]
        )
        if self.coordinator not in self.peers:
            raise ValueError(f"coordinator {self.coordinator!r} not in roster")
        self.unilateral_abort = unilateral_abort

    @property
    def is_coordinator(self) -> bool:
        return self.name == self.coordinator

    def initial_data(self, input_value: int) -> Hashable:
        if self.is_coordinator:
            # Votes collected so far; own vote is cast on the first step.
            return ("collecting", frozenset())
        return ("fresh",)

    def step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        if self.is_coordinator:
            return self._coordinator_step(state, message_value)
        return self._participant_step(state, message_value)

    # -- coordinator ---------------------------------------------------------

    def _coordinator_step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        if state.decided:
            return self.noop(state)
        phase, votes = state.data
        # The coordinator's first action is casting its own vote.
        votes = votes | {(self.name, state.input)}
        if (
            isinstance(message_value, tuple)
            and message_value
            and message_value[0] == "vote"
        ):
            _, sender, vote = message_value
            votes = votes | {(sender, vote)}
        new_state = state.with_data((phase, votes))
        if len(votes) == self.n:
            outcome = (
                COMMIT
                if all(vote == 1 for _, vote in votes)
                else ABORT
            )
            decided = new_state.with_data(("done", votes)).with_decision(
                outcome
            )
            return Transition(
                decided, self.broadcast(self.others, ("outcome", outcome))
            )
        return Transition(new_state, ())

    # -- participant ----------------------------------------------------------

    def _participant_step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        data = state.data
        sends: tuple = ()
        if data == ("fresh",):
            # First step: send the vote to the coordinator.
            sends = (
                self.send_to(
                    self.coordinator, ("vote", self.name, state.input)
                ),
            )
            data = ("voted",)
        new_state = state.with_data(data)
        if not new_state.decided:
            if self.unilateral_abort and new_state.input == 0:
                # A no-voter knows the outcome: abort, unilaterally.
                new_state = new_state.with_decision(ABORT)
            elif (
                isinstance(message_value, tuple)
                and message_value
                and message_value[0] == "outcome"
            ):
                new_state = new_state.with_decision(message_value[1])
        return Transition(new_state, sends)
