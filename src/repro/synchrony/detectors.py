"""Unreliable failure detectors: the post-FLP formulation of the boundary.

Chandra and Toueg later recast "how much synchrony does consensus need?"
as axioms on a *failure detector* oracle each process may query.  Two
classes matter here:

* **P** (perfect): strong completeness — every crashed process is
  eventually suspected by every live process — and strong accuracy — no
  process is suspected before it crashes.
* **◇S** (eventually strong): strong completeness, plus *eventual weak*
  accuracy — there is a time after which *some* live process is never
  suspected by anyone.  ◇S is the weakest detector that makes consensus
  solvable with a majority of correct processes; it is the
  failure-detector face of the GST model in
  :mod:`repro.synchrony.partial`.

Detectors here are oracles over a known crash schedule (the simulator
knows the ground truth; the *processes* only see suspicion sets).  The
module provides the two oracles, property checkers that verify the
axioms over a run horizon, and a detector-guided consensus built from
the rotating-coordinator protocol: a process acks a round's proposal
only if it does not currently suspect the coordinator, and the round is
wasted whenever the coordinator is suspected — so termination tracks
exactly the detector's accuracy, which is the Chandra-Toueg statement
in miniature.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Mapping, Sequence

from repro.core.seeding import stable_rng
from repro.synchrony.partial import RotatingCoordinatorProcess

__all__ = [
    "FailureDetector",
    "PerfectDetector",
    "EventuallyStrongDetector",
    "check_strong_completeness",
    "check_strong_accuracy",
    "check_eventual_weak_accuracy",
    "DetectorGuidedProcess",
]


class FailureDetector(ABC):
    """An oracle answering "whom does *observer* suspect at *time*?".

    Time is measured in rounds (matching the phased runtimes).  The
    detector knows the ground-truth crash schedule — unrealistic for a
    real system, exactly right for a simulator whose job is to *grant*
    a protocol the axioms and observe what follows.
    """

    def __init__(
        self,
        processes: Sequence[str],
        crash_rounds: Mapping[str, int] | None = None,
    ):
        self.processes = tuple(processes)
        self.crash_rounds = dict(crash_rounds or {})

    def crashed_by(self, time: int) -> frozenset[str]:
        """Processes that have crashed strictly before *time*."""
        return frozenset(
            name
            for name, crash in self.crash_rounds.items()
            if crash <= time
        )

    @abstractmethod
    def suspects(self, observer: str, time: int) -> frozenset[str]:
        """The suspicion set output to *observer* at *time*."""


class PerfectDetector(FailureDetector):
    """P: suspects exactly the processes that have actually crashed."""

    def suspects(self, observer: str, time: int) -> frozenset[str]:
        return self.crashed_by(time) - {observer}


class EventuallyStrongDetector(FailureDetector):
    """◇S: noisy before ``stabilization_time``, trustworthy after.

    Before stabilization, each (observer, suspect, time) triple is an
    independent seeded coin flip — wrong suspicions of live processes
    abound.  From ``stabilization_time`` on, the output equals the
    crashed set: strong completeness and (more than) eventual weak
    accuracy hold.
    """

    def __init__(
        self,
        processes: Sequence[str],
        crash_rounds: Mapping[str, int] | None = None,
        stabilization_time: int = 8,
        seed: int = 0,
        noise: float = 0.4,
    ):
        super().__init__(processes, crash_rounds)
        self.stabilization_time = stabilization_time
        self.seed = seed
        if not 0.0 <= noise <= 1.0:
            raise ValueError(f"noise must be in [0, 1], got {noise}")
        self.noise = noise

    def suspects(self, observer: str, time: int) -> frozenset[str]:
        crashed = self.crashed_by(time)
        if time >= self.stabilization_time:
            return crashed - {observer}
        suspected = set(crashed)
        for name in self.processes:
            if name == observer:
                continue
            rng = stable_rng("evstrong-noise", self.seed, observer, name, time)
            if rng.random() < self.noise:
                suspected.add(name)
        return frozenset(suspected - {observer})


# ---------------------------------------------------------------------------
# Axiom checkers
# ---------------------------------------------------------------------------


def check_strong_completeness(
    detector: FailureDetector, horizon: int
) -> bool:
    """Eventually, every crashed process is suspected by every live one.

    Checked at the horizon: at time ``horizon`` every crashed process
    must be in every live observer's suspicion set.
    """
    crashed = detector.crashed_by(horizon)
    live = [p for p in detector.processes if p not in crashed]
    return all(
        crashed <= detector.suspects(observer, horizon)
        for observer in live
    )


def check_strong_accuracy(
    detector: FailureDetector, horizon: int
) -> bool:
    """No process is suspected before it crashes (P's signature axiom)."""
    for time in range(horizon + 1):
        crashed = detector.crashed_by(time)
        for observer in detector.processes:
            if observer in crashed:
                continue
            if not detector.suspects(observer, time) <= crashed:
                return False
    return True


def check_eventual_weak_accuracy(
    detector: FailureDetector, horizon: int
) -> int | None:
    """◇S's signature axiom: some live process is, from some time on,
    suspected by nobody.

    Returns the earliest such stabilization time within the horizon, or
    ``None`` if the axiom fails on this horizon.
    """
    crashed = detector.crashed_by(horizon)
    live = [p for p in detector.processes if p not in crashed]
    for start in range(horizon + 1):
        for candidate in live:
            trusted_throughout = all(
                candidate not in detector.suspects(observer, time)
                for time in range(start, horizon + 1)
                for observer in live
                if observer != candidate
            )
            if trusted_throughout:
                return start
    return None


# ---------------------------------------------------------------------------
# Detector-guided consensus
# ---------------------------------------------------------------------------


class DetectorGuidedProcess(RotatingCoordinatorProcess):
    """Rotating-coordinator consensus gated by a failure detector.

    Identical to :class:`RotatingCoordinatorProcess` except a process
    contributes to a round (estimate + ack) only while it does *not*
    suspect that round's coordinator.  With ◇S the pre-stabilization
    noise wastes rounds; after stabilization, the first trusted live
    coordinator drives a decision — the Chandra-Toueg termination
    argument, measured empirically in experiment E9's detector panel.
    """

    def __init__(self, name: str, peers, f: int, detector: FailureDetector):
        super().__init__(name, peers, f)
        self.detector = detector

    def _trusts_coordinator(self, round_number: int) -> bool:
        coordinator = self.coordinator_of(round_number)
        if coordinator == self.name:
            return True
        return coordinator not in self.detector.suspects(
            self.name, round_number
        )

    def outgoing(
        self, state: Hashable, round_number: int, phase: int
    ) -> Mapping[str, Hashable]:
        decided = state[2]
        if (
            phase in (0, 2)
            and decided is None
            and not self._trusts_coordinator(round_number)
        ):
            return {}  # Boycott rounds with a suspected coordinator.
        return super().outgoing(state, round_number, phase)
