"""E8 — the abstract's contrast: synchronous consensus is solvable.

Two panels:

**Crash panel** — FloodSet over the round-synchronous executor, with up
to f crash faults injected at adversarial times, including mid-round
partial broadcasts (the worst case for information flow).  Expected
shape: agreement and validity hold in every trial, and every live
process decides in exactly f + 1 rounds.

**Byzantine panel** — the abstract names "the Byzantine Generals
problem" specifically, so we also run the Berman–Garay phase-king
algorithm against up to f *equivocating* Byzantine processes (each
receiver told something different, fake king claims, garbage,
strategic silence).  Expected shape: all honest processes agree and
honor unanimous honest inputs, deciding in exactly 2(f + 1) rounds,
for N > 4f.

Timing assumptions buy what asynchrony cannot — even against liars.
"""

from __future__ import annotations

import random

from repro.experiments.harness import ExperimentResult, experiment
from repro.protocols import ByzantineProcess, FloodSetProcess, PhaseKingProcess
from repro.synchrony import SyncCrashPlan, run_rounds

__all__ = ["run", "random_sync_crash_plan", "phase_king_trial"]


def random_sync_crash_plan(
    names: tuple[str, ...], max_faulty: int, max_round: int, rng: random.Random
) -> SyncCrashPlan:
    """Kill up to *max_faulty* processes at random rounds, each with a
    random subset of receivers for its final, partial broadcast."""
    count = rng.randint(0, max_faulty)
    victims = rng.sample(list(names), count)
    plan: dict[str, tuple[int, frozenset[str]]] = {}
    for victim in victims:
        round_number = rng.randint(1, max_round)
        others = [name for name in names if name != victim]
        receivers = frozenset(
            rng.sample(others, rng.randint(0, len(others)))
        )
        plan[victim] = (round_number, receivers)
    return SyncCrashPlan(plan)


def phase_king_trial(
    n: int, f: int, byzantine: set[str], inputs: dict[str, int], seed: int
):
    """One phase-king run with the given Byzantine set; returns the
    SyncResult (decisions include only honest processes — Byzantine
    ones never decide)."""
    names = tuple(f"p{i}" for i in range(n))
    processes = []
    for name in names:
        if name in byzantine:
            processes.append(
                ByzantineProcess(name, names, seed=seed)
            )
        else:
            processes.append(PhaseKingProcess(name, names, f=f))
    return run_rounds(processes, inputs, max_rounds=2 * (f + 1))


@experiment("E8", "Abstract contrast: synchronous consensus (FloodSet)")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    trials = 25 if quick else 150
    settings = [(4, 1), (5, 2)] if quick else [(4, 1), (5, 2), (7, 3), (9, 4)]
    rng = random.Random(seed)
    rows = []
    for n, f in settings:
        names = tuple(f"p{i}" for i in range(n))
        agreement = validity = decided_all = exact_rounds = 0
        for _ in range(trials):
            processes = [FloodSetProcess(name, names, f=f) for name in names]
            inputs = {name: rng.randint(0, 1) for name in names}
            plan = random_sync_crash_plan(names, f, f + 1, rng)
            result = run_rounds(processes, inputs, plan, max_rounds=f + 2)
            if result.agreement_holds:
                agreement += 1
            decisions = set(result.decisions.values())
            if decisions <= set(inputs.values()):
                validity += 1
            if result.all_live_decided:
                decided_all += 1
            if result.decision_rounds and all(
                round_number == f + 1
                for round_number in result.decision_rounds.values()
            ):
                exact_rounds += 1
        rows.append(
            {
                "panel": "crash (FloodSet)",
                "N": n,
                "f": f,
                "trials": trials,
                "agreement": agreement,
                "validity": validity,
                "all_live_decided": decided_all,
                "exact_rounds": exact_rounds,
            }
        )

    byz_settings = [(5, 1), (9, 2)] if quick else [(5, 1), (9, 2), (13, 3)]
    for n, f in byz_settings:
        names = tuple(f"p{i}" for i in range(n))
        agreement = validity = decided_all = exact_rounds = 0
        for trial in range(trials):
            byzantine = set(rng.sample(list(names), rng.randint(0, f)))
            inputs = {name: rng.randint(0, 1) for name in names}
            result = phase_king_trial(
                n, f, byzantine, inputs, seed=seed * 1000 + trial
            )
            honest = [name for name in names if name not in byzantine]
            decisions = {
                name: value
                for name, value in result.decisions.items()
                if name in honest
            }
            if len(set(decisions.values())) <= 1:
                agreement += 1
            honest_inputs = {inputs[name] for name in honest}
            if len(honest_inputs) > 1 or set(
                decisions.values()
            ) <= honest_inputs:
                validity += 1
            if all(name in decisions for name in honest):
                decided_all += 1
            if decisions and all(
                result.decision_rounds[name] == 2 * (f + 1)
                for name in decisions
            ):
                exact_rounds += 1
        rows.append(
            {
                "panel": "byzantine (PhaseKing)",
                "N": n,
                "f": f,
                "trials": trials,
                "agreement": agreement,
                "validity": validity,
                "all_live_decided": decided_all,
                "exact_rounds": exact_rounds,
            }
        )

    return ExperimentResult(
        exp_id="E8",
        title="Abstract contrast: synchronous consensus (FloodSet)",
        rows=tuple(rows),
        notes=(
            "expected: every column equals trials on every row — "
            "lock-step rounds beat f crash faults (FloodSet, f+1 "
            "rounds, even with adversarial mid-round partial "
            "broadcasts) AND f equivocating Byzantine processes "
            "(PhaseKing, 2(f+1) rounds, N > 4f)",
            "this is 'solutions are known for the synchronous case, "
            "the Byzantine Generals problem' of the abstract, "
            "quantified — synchrony suffices even against liars, while "
            "asynchrony fails against mere silence",
        ),
        seed=seed,
        quick=quick,
    )
