"""Round-synchronous execution: the model where consensus IS solvable.

The paper's abstract contrasts the asynchronous impossibility with the
synchronous case: "By way of contrast, solutions are known for the
synchronous case, the Byzantine Generals problem."  This module supplies
the synchronous substrate for that contrast: computation proceeds in
lock-step rounds; in each round every live process broadcasts a message,
all messages are delivered within the round, and every process updates
its state on the full batch.

Crash faults are adversarially *mid-round*: a process crashing in round
``r`` gets its final broadcast delivered to an arbitrary subset of the
other processes — the classic wrinkle that makes f+1 rounds necessary.

This executor deliberately does not reuse the asynchronous core: the
whole point is that it is a *different model*, with the timing
assumptions FLP removes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

__all__ = ["SyncProcess", "SyncCrashPlan", "SyncResult", "run_rounds"]


class SyncProcess(ABC):
    """A process of a round-synchronous protocol."""

    def __init__(self, name: str, peers: Sequence[str]):
        self.name = name
        self.peers = tuple(peers)
        self.others = tuple(p for p in self.peers if p != name)

    @property
    def n(self) -> int:
        return len(self.peers)

    @abstractmethod
    def initial_state(self, input_value: int) -> Hashable:
        """State before round 1."""

    @abstractmethod
    def outgoing(self, state: Hashable, round_number: int) -> Hashable:
        """The value broadcast to every other process this round."""

    def outgoing_to(
        self, state: Hashable, round_number: int, receiver: str
    ) -> Hashable:
        """Per-receiver message; defaults to the uniform broadcast.

        Honest processes send everyone the same value.  *Byzantine*
        processes override this hook to equivocate — telling different
        receivers different things — which is precisely the failure
        mode the Byzantine Generals problem is about (and which the
        asynchronous core model excludes: FLP's impossibility needs no
        lying, only silence).
        """
        return self.outgoing(state, round_number)

    @abstractmethod
    def update(
        self,
        state: Hashable,
        round_number: int,
        received: Mapping[str, Hashable],
    ) -> Hashable:
        """New state after receiving this round's batch (sender -> value)."""

    @abstractmethod
    def decision(self, state: Hashable, round_number: int) -> int | None:
        """The decision after this round, or ``None`` if undecided."""


class SyncCrashPlan:
    """Mid-round crash faults for the synchronous model.

    ``plan[name] = (crash_round, receivers)``: the process participates
    fully through round ``crash_round - 1``; in round ``crash_round`` its
    broadcast reaches only ``receivers`` (possibly empty), after which it
    is dead.
    """

    def __init__(
        self,
        plan: Mapping[str, tuple[int, frozenset[str]]] | None = None,
    ):
        self._plan = {
            name: (round_number, frozenset(receivers))
            for name, (round_number, receivers) in (plan or {}).items()
        }
        for name, (round_number, _) in self._plan.items():
            if round_number < 1:
                raise ValueError(
                    f"crash round for {name!r} must be >= 1"
                )

    @classmethod
    def none(cls) -> "SyncCrashPlan":
        return cls()

    @property
    def faulty(self) -> frozenset[str]:
        return frozenset(self._plan)

    def is_live_in(self, name: str, round_number: int) -> bool:
        """Fully participating in *round_number* (not yet at crash round)."""
        entry = self._plan.get(name)
        return entry is None or round_number < entry[0]

    def delivers_to(
        self, sender: str, receiver: str, round_number: int
    ) -> bool:
        """Whether *sender*'s round-*round_number* broadcast reaches
        *receiver*."""
        entry = self._plan.get(sender)
        if entry is None:
            return True
        crash_round, receivers = entry
        if round_number < crash_round:
            return True
        if round_number == crash_round:
            return receiver in receivers
        return False

    def __repr__(self) -> str:
        return f"SyncCrashPlan({self._plan!r})"


@dataclass
class SyncResult:
    """Outcome of a synchronous execution."""

    decisions: dict[str, int]
    decision_rounds: dict[str, int]
    rounds_executed: int
    live: frozenset[str]
    states: dict[str, Hashable] = field(repr=False, default_factory=dict)

    @property
    def decision_values(self) -> frozenset[int]:
        return frozenset(self.decisions.values())

    @property
    def agreement_holds(self) -> bool:
        return len(self.decision_values) <= 1

    @property
    def all_live_decided(self) -> bool:
        return all(name in self.decisions for name in self.live)


def run_rounds(
    processes: Sequence[SyncProcess],
    inputs: Mapping[str, int],
    crash_plan: SyncCrashPlan | None = None,
    max_rounds: int = 64,
) -> SyncResult:
    """Execute a synchronous protocol until all live processes decide.

    Rounds are numbered from 1.  A process that has decided keeps
    participating (synchronous protocols fix their round count anyway);
    execution stops when every live process has decided or *max_rounds*
    elapses.
    """
    plan = crash_plan or SyncCrashPlan.none()
    roster = {p.name: p for p in processes}
    states: dict[str, Hashable] = {
        name: process.initial_state(inputs[name])
        for name, process in roster.items()
    }
    decisions: dict[str, int] = {}
    decision_rounds: dict[str, int] = {}
    live = frozenset(roster) - plan.faulty

    rounds_executed = 0
    for round_number in range(1, max_rounds + 1):
        # Who sends anything at all this round?  Crashed-in-this-round
        # processes still emit (partially delivered) broadcasts.
        senders = [
            name
            for name, process in roster.items()
            if plan.is_live_in(name, round_number)
            or any(
                plan.delivers_to(name, other, round_number)
                for other in process.others
            )
        ]
        # Deliver and update only for processes still fully live.
        # Messages are resolved per (sender, receiver) pair so that
        # Byzantine senders can equivocate via outgoing_to.  All sends
        # read the round-start snapshot: within a round, everyone
        # speaks before anyone's update lands (lock-step semantics).
        round_states = dict(states)
        for name, process in roster.items():
            if not plan.is_live_in(name, round_number):
                continue
            received: dict[str, Hashable] = {}
            for sender in senders:
                if sender == name:
                    continue
                if not plan.delivers_to(sender, name, round_number):
                    continue
                value = roster[sender].outgoing_to(
                    round_states[sender], round_number, name
                )
                if value is not None:
                    received[sender] = value
            states[name] = process.update(
                round_states[name], round_number, received
            )
            if name not in decisions:
                decided = process.decision(states[name], round_number)
                if decided is not None:
                    decisions[name] = decided
                    decision_rounds[name] = round_number
        rounds_executed = round_number
        if all(name in decisions for name in live):
            break

    return SyncResult(
        decisions=decisions,
        decision_rounds=decision_rounds,
        rounds_executed=rounds_executed,
        live=live,
        states=states,
    )
