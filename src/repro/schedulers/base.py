"""Scheduler interface: the message system's nondeterminism, reified.

In the paper the message system "acts nondeterministically", choosing
which pending message a ``receive(p)`` returns (possibly the null marker)
— and the interleaving of process steps is likewise unconstrained.  A
:class:`Scheduler` makes both choices explicit: given the current
configuration, it picks the next event to apply.  Different schedulers
realize different environments — fair round-robin, uniformly random,
crash-prone, partitioned — and the FLP adversary
(:mod:`repro.adversary.flp`) is just one more scheduler, albeit one with
an agenda.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Mapping

from repro.core.configuration import Configuration
from repro.core.errors import FaultModelError
from repro.core.events import Event
from repro.core.messages import Message, MessageBuffer
from repro.core.protocol import Protocol

__all__ = ["Scheduler", "CrashPlan", "FifoTracker"]


class CrashPlan:
    """A crash-fault schedule: which processes die, and when.

    The paper's fault model is crash-stop with no detection: a faulty
    process "takes finitely many steps" and is indistinguishable from a
    slow one.  A plan maps process names to the step index at which they
    stop being scheduled (0 = initially dead).
    """

    def __init__(self, crash_times: Mapping[str, int] | None = None):
        self._crash_times = dict(crash_times or {})
        for name, step in self._crash_times.items():
            if step < 0:
                raise FaultModelError(
                    f"crash time for {name!r} must be >= 0, got {step}"
                )

    @classmethod
    def none(cls) -> "CrashPlan":
        """No crashes: every process is nonfaulty."""
        return cls()

    @classmethod
    def initially_dead(cls, names: set[str] | frozenset[str]) -> "CrashPlan":
        """Processes dead from the start (Section 4's fault model)."""
        return cls({name: 0 for name in names})

    @property
    def crash_times(self) -> dict[str, int]:
        """Copy of the ``process -> crash step`` mapping."""
        return dict(self._crash_times)

    @property
    def faulty(self) -> frozenset[str]:
        """Processes that crash at some point."""
        return frozenset(self._crash_times)

    def is_live(self, process: str, step_index: int) -> bool:
        """Whether *process* is still taking steps at *step_index*."""
        crash = self._crash_times.get(process)
        return crash is None or step_index < crash

    def live_at(
        self, names: tuple[str, ...], step_index: int
    ) -> tuple[str, ...]:
        """The subset of *names* still live at *step_index*."""
        return tuple(n for n in names if self.is_live(n, step_index))

    def survivors(self, names: tuple[str, ...]) -> tuple[str, ...]:
        """Processes that never crash."""
        return tuple(n for n in names if n not in self._crash_times)

    def __repr__(self) -> str:
        if not self._crash_times:
            return "CrashPlan.none()"
        return f"CrashPlan({self._crash_times!r})"


class FifoTracker:
    """Per-destination FIFO ordering of buffered messages.

    The configuration's buffer is an unordered multiset (it must be, for
    Lemma 1), but fair schedulers — and the paper's Theorem-1 stage
    discipline, which delivers "the earliest message ... first" — need
    send-order bookkeeping.  The tracker diffs successive buffers to
    maintain arrival queues per destination.
    """

    def __init__(self):
        self._queues: dict[str, deque[Message]] = {}
        self._last_buffer = MessageBuffer.empty()

    def observe(self, buffer: MessageBuffer) -> None:
        """Update the queues from the latest buffer contents.

        New messages (present more times than before) are enqueued in a
        deterministic order; vanished messages (delivered) are removed
        from the front-most matching position.
        """
        if buffer == self._last_buffer:
            return
        # Removals first: each delivered copy leaves its queue.
        for message, old_count in self._last_buffer.items():
            new_count = buffer.count(message)
            for _ in range(old_count - new_count):
                self._remove_one(message)
        # Then arrivals, in the buffer's deterministic ordering.
        arrivals: list[Message] = []
        for message in buffer.distinct_messages():
            delta = buffer.count(message) - self._last_buffer.count(message)
            arrivals.extend([message] * max(delta, 0))
        for message in arrivals:
            self._queues.setdefault(message.destination, deque()).append(
                message
            )
        self._last_buffer = buffer

    def earliest_for(self, process: str) -> Message | None:
        """The oldest undelivered message addressed to *process*."""
        queue = self._queues.get(process)
        if not queue:
            return None
        return queue[0]

    def pending_count(self, process: str) -> int:
        """Number of undelivered messages addressed to *process*."""
        queue = self._queues.get(process)
        return len(queue) if queue else 0

    def _remove_one(self, message: Message) -> None:
        queue = self._queues.get(message.destination)
        if not queue:  # pragma: no cover - defensive
            return
        try:
            queue.remove(message)
        except ValueError:  # pragma: no cover - defensive
            pass


class Scheduler(ABC):
    """Chooses the next event of a run, one step at a time.

    Subclasses implement :meth:`next_event`.  Returning ``None`` ends the
    simulation ("the environment stopped doing anything") — distinct from
    the protocol deciding.
    """

    #: Crash plan honoured by the scheduler (default: no crashes).
    crash_plan: CrashPlan

    def __init__(self, crash_plan: CrashPlan | None = None):
        self.crash_plan = crash_plan or CrashPlan.none()

    @abstractmethod
    def next_event(
        self,
        protocol: Protocol,
        configuration: Configuration,
        step_index: int,
    ) -> Event | None:
        """The next event to apply, or ``None`` to stop."""

    def live_processes(self, protocol: Protocol) -> tuple[str, ...]:
        """Processes that never crash under this scheduler's plan.

        Used by :func:`repro.core.simulation.simulate` to evaluate the
        ALL_DECIDED stop condition.
        """
        return self.crash_plan.survivors(protocol.process_names)

    def reset(self) -> None:
        """Clear any internal state so the scheduler can be reused."""
