"""Tests for admissibility accounting."""

from repro.adversary.certificates import AdversaryMode
from repro.adversary.flp import FLPAdversary
from repro.analysis.admissibility import analyze_admissibility
from repro.core.events import NULL, Event, Schedule
from repro.core.simulation import StopCondition, simulate
from repro.schedulers import RoundRobinScheduler


class TestBasicAccounting:
    def test_empty_prefix(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        report = analyze_admissibility(arbiter3, initial, Schedule())
        assert report.length == 0
        assert report.fault_ok
        assert report.max_delivery_lag == 0
        assert report.oldest_pending_age == 0

    def test_step_gaps_counted(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        schedule = Schedule(
            [Event("p1", NULL), Event("p1", NULL), Event("p2", NULL)]
        )
        report = analyze_admissibility(arbiter3, initial, schedule)
        # p0 never stepped: gap spans the whole 3-event prefix.
        assert report.max_step_gap["p0"] == 3
        assert report.max_step_gap["p2"] == 2

    def test_delivery_lag_measured(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        schedule = Schedule(
            [
                Event("p1", NULL),  # sends claim at index 0
                Event("p2", NULL),
                Event("p0", ("claim", "p1", 0)),  # delivered at 2
            ]
        )
        report = analyze_admissibility(arbiter3, initial, schedule)
        assert report.max_delivery_lag == 2

    def test_pending_age_at_end(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        schedule = Schedule([Event("p1", NULL), Event("p2", NULL)])
        report = analyze_admissibility(arbiter3, initial, schedule)
        # p1's claim has been pending since index 0: age 2.
        assert report.oldest_pending_age == 2

    def test_mail_to_faulty_not_debt(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        schedule = Schedule([Event("p1", NULL), Event("p2", NULL)])
        report = analyze_admissibility(
            arbiter3, initial, schedule, faulty=frozenset({"p0"})
        )
        assert report.oldest_pending_age == 0
        assert report.pending_to_faulty == 2


class TestViolations:
    def test_faulty_step_after_fault_point(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        schedule = Schedule([Event("p0", NULL)])
        report = analyze_admissibility(
            arbiter3,
            initial,
            schedule,
            faulty=frozenset({"p0"}),
            fault_point=0,
        )
        assert not report.fault_ok
        assert report.violations

    def test_faulty_step_before_fault_point_is_fine(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        schedule = Schedule([Event("p0", NULL), Event("p1", NULL)])
        report = analyze_admissibility(
            arbiter3,
            initial,
            schedule,
            faulty=frozenset({"p0"}),
            fault_point=1,
        )
        assert report.fault_ok

    def test_two_faulty_processes_rejected(self, arbiter3):
        initial = arbiter3.initial_configuration([0, 0, 1])
        report = analyze_admissibility(
            arbiter3,
            initial,
            Schedule(),
            faulty=frozenset({"p0", "p1"}),
        )
        assert not report.fault_ok


class TestConsistencyJudgement:
    def test_fair_run_is_consistent(self, wait_for_all3):
        result = simulate(
            wait_for_all3,
            wait_for_all3.initial_configuration([1, 0, 1]),
            RoundRobinScheduler(),
            max_steps=200,
            stop=StopCondition.ALL_DECIDED,
        )
        report = analyze_admissibility(
            wait_for_all3,
            wait_for_all3.initial_configuration([1, 0, 1]),
            result.schedule,
        )
        assert report.consistent_with_admissible(
            step_gap_bound=10, lag_bound=20
        )

    def test_starving_run_is_not(self, wait_for_all3):
        initial = wait_for_all3.initial_configuration([1, 0, 1])
        schedule = Schedule([Event("p0", NULL)] * 12)
        report = analyze_admissibility(wait_for_all3, initial, schedule)
        assert not report.consistent_with_admissible(
            step_gap_bound=5, lag_bound=100
        )


class TestAdversaryFairness:
    def test_staged_certificate_is_fair(
        self, parity_arbiter3, parity_arbiter3_analyzer
    ):
        adversary = FLPAdversary(
            parity_arbiter3, analyzer=parity_arbiter3_analyzer
        )
        certificate = adversary.build_run(stages=24)
        assert certificate.mode is AdversaryMode.BIVALENCE_PRESERVING
        report = analyze_admissibility(
            parity_arbiter3, certificate.initial, certificate.schedule
        )
        assert report.fault_ok
        n = len(parity_arbiter3.process_names)
        # Queue discipline bounds gaps and lags by ~2 queue rotations.
        assert report.consistent_with_admissible(
            step_gap_bound=4 * n, lag_bound=6 * n
        ), report.summary()

    def test_fault_certificate_is_fair_modulo_one_victim(
        self, arbiter3, arbiter3_analyzer
    ):
        adversary = FLPAdversary(arbiter3, analyzer=arbiter3_analyzer)
        certificate = adversary.build_run(stages=10)
        faulty = frozenset({certificate.faulty_process})
        report = analyze_admissibility(
            arbiter3,
            certificate.initial,
            certificate.schedule,
            faulty=faulty,
            fault_point=certificate.fault_point,
        )
        assert report.fault_ok
        assert report.oldest_pending_age <= len(certificate.schedule)
        # All remaining mail is addressed to the victim.
        assert report.pending_to_faulty >= 0
