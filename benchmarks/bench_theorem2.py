"""Bench E5 — Theorem 2 (initially-dead-processes protocol).

Regenerates the E5 table and micro-benchmarks one N=7 execution with a
minority dead, plus the graph machinery (transitive closure + initial
clique) on a Section-4-shaped graph.
"""

from repro.core.simulation import StopCondition, simulate
from repro.graphs.digraph import Digraph
from repro.protocols import InitiallyDeadProcess, make_protocol
from repro.schedulers import CrashPlan, RoundRobinScheduler


def test_e5_table(benchmark, run_and_render):
    result = run_and_render(benchmark, "E5")
    for row in result.rows:
        if isinstance(row["dead"], int):
            assert row["all_live_decided"] == row["trials"]


def test_theorem2_n7_minority_dead(benchmark):
    protocol = make_protocol(InitiallyDeadProcess, 7)
    initial = protocol.initial_configuration([1, 0, 1, 0, 1, 0, 1])

    def run():
        scheduler = RoundRobinScheduler(
            crash_plan=CrashPlan.initially_dead(frozenset({"p1", "p4"}))
        )
        return simulate(
            protocol,
            initial,
            scheduler,
            max_steps=4000,
            stop=StopCondition.ALL_DECIDED,
        )

    result = benchmark(run)
    assert result.decided
    assert result.agreement_holds


def test_initial_clique_on_section4_graph(benchmark):
    # A clique of 5 live processes plus 4 stragglers hanging off it.
    live = [f"L{i}" for i in range(5)]
    graph = Digraph()
    for a in live:
        for b in live:
            if a != b:
                graph.add_edge(a, b)
    for i in range(4):
        graph.add_edge(live[i], f"S{i}")
        graph.add_edge(live[(i + 1) % 5], f"S{i}")

    def clique():
        return graph.transitive_closure().initial_clique()

    assert benchmark(clique) == frozenset(live)
