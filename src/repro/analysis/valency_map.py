"""Whole-graph valency decomposition and the critical frontier.

Beyond classifying single configurations, the experiments need the full
picture of a protocol instance: how the accessible graph splits into
bivalent / 0-valent / 1-valent regions, and where the *critical steps*
are — edges from a bivalent configuration to a univalent one, i.e. the
single steps that "determine the eventual decision value" and that the
Theorem-1 adversary must forever sidestep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import Configuration
from repro.core.events import Event
from repro.core.protocol import Protocol
from repro.core.valency import Valency, ValencyAnalyzer

__all__ = ["CriticalStep", "ValencyMap", "build_valency_map"]


@dataclass(frozen=True)
class CriticalStep:
    """A single step from a bivalent to a univalent configuration."""

    source: Configuration
    event: Event
    target: Configuration
    target_valency: Valency


@dataclass(frozen=True)
class ValencyMap:
    """Valency census of the graph reachable from one root.

    Attributes
    ----------
    root:
        The configuration the census is rooted at.
    counts:
        Number of reachable configurations per valency class.
    critical_steps:
        All bivalent → univalent edges.  Their existence (for deciding
        protocols) is the observation opening the Theorem-1 endgame:
        "there must be some single step that goes from a bivalent to a
        univalent configuration."
    complete:
        Whether the underlying exploration exhausted the reachable set.
    """

    root: Configuration
    counts: dict[Valency, int]
    critical_steps: tuple[CriticalStep, ...]
    complete: bool

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def bivalent_fraction(self) -> float:
        """Share of reachable configurations that are still undetermined."""
        total = self.total
        if total == 0:
            return 0.0
        return self.counts.get(Valency.BIVALENT, 0) / total

    def summary(self) -> str:
        parts = ", ".join(
            f"{valency.value}={count}"
            for valency, count in sorted(
                self.counts.items(), key=lambda item: item[0].value
            )
            if count
        )
        return (
            f"{self.total} configurations ({parts}); "
            f"{len(self.critical_steps)} critical steps"
            + ("" if self.complete else " [bounded]")
        )


def build_valency_map(
    protocol: Protocol,
    root: Configuration,
    analyzer: ValencyAnalyzer | None = None,
    max_configurations: int = 200_000,
) -> ValencyMap:
    """Classify every configuration reachable from *root*.

    Runs entirely on the analyzer's shared
    :class:`~repro.core.exploration.GlobalConfigurationGraph`: one
    valency query grows/classifies the graph as needed, then the census
    is a pure walk of the root's forward closure — a repeated census
    over an already-explored region does no new exploration.
    """
    analyzer = analyzer or ValencyAnalyzer(
        protocol, max_configurations=max_configurations
    )
    analyzer.valency(root)  # grows + classifies the shared graph
    engine = analyzer.graph
    closure = engine.reachable_from(engine.node_id(root))

    ordered = sorted(closure.nodes)  # deterministic census order
    counts: dict[Valency, int] = {valency: 0 for valency in Valency}
    node_valency: dict[int, Valency] = {}
    for node in ordered:
        # By-id peek: no rich configurations are materialized for the
        # census itself (the packed engine decodes lazily).
        valency = analyzer.peek_node(node)
        node_valency[node] = valency
        counts[valency] += 1

    critical: list[CriticalStep] = []
    for source in ordered:
        if node_valency[source] is not Valency.BIVALENT:
            continue
        for event, target in engine.successors[source]:
            if node_valency[target].is_univalent:
                critical.append(
                    CriticalStep(
                        source=engine.configuration_at(source),
                        event=event,
                        target=engine.configuration_at(target),
                        target_valency=node_valency[target],
                    )
                )

    return ValencyMap(
        root=root,
        counts={v: c for v, c in counts.items() if c},
        critical_steps=tuple(critical),
        complete=closure.complete,
    )
