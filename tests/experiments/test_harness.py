"""Tests for the experiment registry and result rendering."""

import pytest

from repro.experiments.harness import (
    ExperimentResult,
    available_experiments,
    get_experiment,
    run_experiment,
)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        catalog = available_experiments()
        assert set(catalog) == {
            "E1",
            "E2",
            "E3",
            "E4",
            "E5",
            "E6",
            "E7",
            "E8",
            "E9",
            "A1",
            "A2",
            "A3",
            "A4",
        }

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("E99")

    def test_titles_are_descriptive(self):
        for exp_id, title in available_experiments().items():
            assert len(title) > 10, exp_id


class TestRendering:
    def test_render_contains_table_and_notes(self):
        result = ExperimentResult(
            exp_id="X0",
            title="demo",
            rows=({"a": 1, "b": 2.5},),
            notes=("a note",),
        )
        text = result.render()
        assert "X0: demo" in text
        assert "2.500" in text
        assert "note: a note" in text

    def test_quick_flag_in_header(self):
        quick = ExperimentResult("X0", "t", ({"a": 1},), quick=True)
        full = ExperimentResult("X0", "t", ({"a": 1},), quick=False)
        assert "(quick" in quick.render()
        assert "(full" in full.render()


class TestCliModule:
    def test_list_flag(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "E4" in out

    def test_unknown_id_exits_2(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["E99"]) == 2

    def test_runs_single_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["E8"]) == 0
        out = capsys.readouterr().out
        assert "FloodSet" in out
