"""Tests for the determinism spot-checker."""

import pytest

from repro.core.correctness import check_determinism
from repro.core.process import Process, Transition
from repro.core.protocol import Protocol
from repro.protocols import (
    ArbiterProcess,
    BenOrProcess,
    ParityArbiterProcess,
    TwoPhaseCommitProcess,
    make_protocol,
)


class FlakyProcess(Process):
    """Deliberately nondeterministic: alternates behaviours per call."""

    def __init__(self, name):
        super().__init__(name)
        self._flip = False

    def initial_data(self, input_value):
        return ()

    def step(self, state, message_value):
        self._flip = not self._flip
        if self._flip and not state.decided:
            return Transition(state.with_decision(state.input), ())
        return Transition(state, ())


class TestCheckDeterminism:
    @pytest.mark.parametrize(
        "cls",
        [
            ArbiterProcess,
            ParityArbiterProcess,
            TwoPhaseCommitProcess,
        ],
    )
    def test_zoo_is_deterministic(self, cls):
        report = check_determinism(make_protocol(cls, 3))
        assert report.deterministic
        assert report.transitions_checked > 0
        assert "deterministic" in report.summary()

    def test_benor_tapes_are_deterministic(self):
        # Randomized consensus with PRE-COMMITTED tapes is mechanically
        # deterministic — the design point the docstring makes.
        report = check_determinism(make_protocol(BenOrProcess, 3, seed=4))
        assert report.deterministic

    def test_flaky_process_caught(self):
        protocol = Protocol([FlakyProcess("p0"), FlakyProcess("p1")])
        report = check_determinism(protocol, walks=5, max_steps=4)
        assert not report.deterministic
        assert report.violation_process in ("p0", "p1")
        assert "NONDETERMINISTIC" in report.summary()

    def test_reproducible_given_seed(self):
        protocol = make_protocol(ArbiterProcess, 3)
        a = check_determinism(protocol, seed=9)
        b = check_determinism(protocol, seed=9)
        assert a.transitions_checked == b.transitions_checked

    def test_cli_reports_determinism(self, capsys):
        from repro.cli import main

        main(["check", "arbiter"])
        out = capsys.readouterr().out
        assert "determinism: deterministic" in out
