"""Tests for the zoo's shared plumbing."""

import pytest

from repro.protocols import WaitForAllProcess, make_protocol
from repro.protocols.base import ConsensusProcess, default_names


class TestDefaultNames:
    def test_canonical_names(self):
        assert default_names(3) == ("p0", "p1", "p2")

    def test_minimum_two(self):
        with pytest.raises(ValueError):
            default_names(1)


class TestConsensusProcess:
    def test_roster_membership_enforced(self):
        with pytest.raises(ValueError, match="roster"):
            WaitForAllProcess("ghost", ("p0", "p1"))

    def test_others_and_index(self):
        process = WaitForAllProcess("p1", ("p0", "p1", "p2"))
        assert process.others == ("p0", "p2")
        assert process.index == 1
        assert process.n == 3

    def test_majority_threshold(self):
        assert WaitForAllProcess("p0", default_names(2)).majority == 2
        assert WaitForAllProcess("p0", default_names(3)).majority == 2
        assert WaitForAllProcess("p0", default_names(4)).majority == 3
        assert WaitForAllProcess("p0", default_names(5)).majority == 3
        assert WaitForAllProcess("p0", default_names(9)).majority == 5

    def test_noop_preserves_state(self):
        process = WaitForAllProcess("p0", ("p0", "p1"))
        state = process.initial_state(1)
        transition = process.noop(state)
        assert transition.state == state
        assert transition.sends == ()


class TestMakeProtocol:
    def test_wires_full_roster(self):
        protocol = make_protocol(WaitForAllProcess, 4)
        assert protocol.num_processes == 4
        for name in protocol.process_names:
            assert protocol.process(name).peers == protocol.process_names

    def test_forwards_kwargs(self):
        from repro.protocols import QuorumVoteProcess

        protocol = make_protocol(QuorumVoteProcess, 3, quorum=3)
        assert protocol.process("p1").quorum == 3

    def test_rejects_n_below_two(self):
        with pytest.raises(ValueError):
            make_protocol(WaitForAllProcess, 1)
