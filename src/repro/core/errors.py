"""Exception hierarchy for flpkit.

All library-raised exceptions derive from :class:`FLPError` so that callers
can distinguish model violations from ordinary Python errors with a single
``except`` clause.
"""

from __future__ import annotations


class FLPError(Exception):
    """Base class for every error raised by flpkit."""


class ModelError(FLPError):
    """A request violates the formal model of Section 2 of the paper."""


class FaultModelError(ModelError, ValueError):
    """A fault plan is malformed, contradictory, or unsupported.

    Covers structural problems (negative steps, a recovery scheduled
    before its crash, overlapping partition groups), contradictions (a
    process both initially dead and crash-recovering), references to
    unknown processes, and requests for time-dependent clauses in
    analyses that only support the static fault fragment.

    Subclasses :class:`ValueError` as well so pre-existing callers that
    guarded fault-plan construction with ``except ValueError`` keep
    working.
    """


class SymmetryError(ModelError):
    """A symmetry quotient was requested for an asymmetric protocol.

    The quotient identifies configurations up to process renaming, which
    is only sound when every automaton declares ``symmetric = True`` and
    the declaration survives the transition-level automorphism check.
    Requesting ``--symmetry`` for a protocol that never declared it is
    an operator error and refuses loudly; a declared symmetry that fails
    validation degrades to a warning instead (see
    :mod:`repro.core.reduction`).
    """


class InvalidEvent(ModelError):
    """An event was applied to a configuration it is not applicable to.

    An event ``(p, m)`` with ``m != NULL`` is applicable to a configuration
    only if the message ``(p, m)`` is present in the message buffer.  Null
    deliveries ``(p, NULL)`` are always applicable.
    """


class UnknownProcess(ModelError):
    """A process name was used that does not belong to the protocol."""


class ProtocolViolation(FLPError):
    """A process transition broke one of the model's structural rules.

    The canonical example is writing to the output register after it has
    been set: the paper stipulates that the output register is write-once
    ("the transition function cannot change the value of the output
    register once the process has reached a decision state").
    """


class NotPartiallyCorrect(FLPError):
    """A protocol failed one of the two partial-correctness conditions.

    Condition (1): no accessible configuration has more than one decision
    value.  Condition (2): for each ``v`` in ``{0, 1}`` some accessible
    configuration has decision value ``v``.
    """


class ExplorationLimitExceeded(FLPError):
    """Reachability exploration hit its node or depth budget.

    Raised only when the caller requested *exact* answers; bounded-analysis
    entry points return explicit ``UNKNOWN`` results instead.
    """


class AdversaryStuck(FLPError):
    """The FLP adversary could not find a bivalence-preserving extension.

    Against a partially correct protocol with exact valency information
    this is impossible by Lemma 3, so seeing this error indicates either a
    protocol that is not partially correct or an exploration budget that is
    too small to certify bivalence.
    """


class SimulationLimitExceeded(FLPError):
    """A forward simulation exceeded its maximum step budget."""


class WorkerPoolError(FLPError):
    """The parallel expansion pool failed beyond the recovery policy.

    Raised only when serial fallback is disabled
    (:class:`repro.core.resilience.ResilienceConfig.serial_fallback` is
    ``False``); with the default policy a failed pool degrades to inline
    expansion and exploration still completes.
    """


class CheckpointError(FLPError):
    """A checkpoint could not be written, read, or restored."""


class CheckpointCorrupt(CheckpointError):
    """A checkpoint file failed integrity verification.

    Covers a damaged header, a payload whose SHA-256 does not match the
    header, and structurally inconsistent contents; resuming from such a
    snapshot would silently corrupt the graph, so loading refuses.
    """


class CheckpointMismatch(CheckpointError):
    """A checkpoint does not match the engine trying to restore it.

    The snapshot's format version, engine mode (packed vs dict), or
    protocol identity (process roster / process types) differs from the
    restore target's.
    """
