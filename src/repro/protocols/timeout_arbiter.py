"""Timeout escalation: why "just add a timeout" cannot fix FLP.

The paper: "we assume that processes do not have access to synchronized
clocks, so algorithms based on time-outs, for example, cannot be used."
A tempting workaround is *self-clocking* — a process counts its own
steps and escalates when "too much time" has passed.  This protocol
implements that idea so the library can demonstrate, exhaustively, why
it fails:

* roles: an **arbiter**, a **backup arbiter**, and proposers;
* proposers race claims to the arbiter, exactly as in
  :mod:`repro.protocols.arbiter`;
* every *null delivery* a proposer experiences ticks its local clock;
  after ``timeout`` ticks without a verdict it re-sends its claim to
  the backup;
* both arbiter and backup decide the first claim they receive and
  broadcast verdicts; proposers decide the first verdict to arrive.

Under a prompt scheduler the timeout never fires and the protocol
behaves like the plain arbiter.  But in an asynchronous system "slow"
and "partitioned" are indistinguishable: a schedule that starves one
proposer of its verdict fires the timeout, wakes the backup, and the
two referees can commit to *opposite* values —
:func:`repro.core.correctness.check_partial_correctness` finds the
disagreeing configuration by exhaustive search.  Escalation converted
FLP's liveness failure into a safety failure; it did not remove the
window.  (Real systems thread this needle by making the escalation
*safe* — quorums, epochs, leases — which is exactly the partial-
synchrony machinery of :mod:`repro.synchrony.partial`.)

Message universe: ``("claim", sender, value)``, ``("verdict", value)``.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.process import ProcessState, Transition
from repro.protocols.base import ConsensusProcess

__all__ = ["TimeoutArbiterProcess"]


class TimeoutArbiterProcess(ConsensusProcess):
    """One process of the timeout-escalation arbiter protocol.

    Parameters
    ----------
    timeout:
        Null-delivery ticks a proposer waits before escalating to the
        backup.  Small values keep the reachable graph small; the
        safety violation exists for every value.
    arbiter, backup:
        Referee roles; default to the first two roster members.  Needs
        at least two proposers (N ≥ 4) for a disagreement to be
        *possible* — with one proposer both referees see the same value.
    """

    def __init__(
        self,
        name: str,
        peers,
        timeout: int = 2,
        arbiter: str | None = None,
        backup: str | None = None,
    ):
        super().__init__(name, peers)
        if len(peers) < 4:
            raise ValueError(
                "timeout-arbiter needs N >= 4 (two referees + two "
                f"proposers), got N={len(peers)}"
            )
        if timeout < 1:
            raise ValueError(f"timeout must be >= 1, got {timeout}")
        self.timeout = timeout
        self.arbiter = arbiter if arbiter is not None else self.peers[0]
        self.backup = backup if backup is not None else self.peers[1]
        if self.arbiter == self.backup:
            raise ValueError("arbiter and backup must differ")

    @property
    def role(self) -> str:
        if self.name == self.arbiter:
            return "arbiter"
        if self.name == self.backup:
            return "backup"
        return "proposer"

    def initial_data(self, input_value: int) -> Hashable:
        if self.role in ("arbiter", "backup"):
            return ("waiting",)
        # (phase, ticks, escalated)
        return ("unclaimed", 0, False)

    def step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        if self.role in ("arbiter", "backup"):
            return self._referee_step(state, message_value)
        return self._proposer_step(state, message_value)

    def _referee_step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        if state.decided:
            return self.noop(state)
        if isinstance(message_value, tuple) and message_value:
            kind = message_value[0]
            if kind == "claim":
                value = message_value[2]
                decided = state.with_data(("closed",)).with_decision(value)
                return Transition(
                    decided,
                    self.broadcast(self.others, ("verdict", value)),
                )
            if kind == "verdict":
                # The other referee ruled; adopt it (keeps the happy
                # path live for the idle backup).
                return Transition(
                    state.with_data(("closed",)).with_decision(
                        message_value[1]
                    ),
                    (),
                )
        return self.noop(state)

    def _proposer_step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        phase, ticks, escalated = state.data
        sends: list = []
        if phase == "unclaimed":
            sends.append(
                self.send_to(self.arbiter, ("claim", self.name, state.input))
            )
            phase = "claimed"

        if (
            message_value is None
            and not state.decided
            and phase == "claimed"
        ):
            # A lonely step: the local clock ticks.
            ticks = min(ticks + 1, self.timeout)
            if ticks >= self.timeout and not escalated:
                # "The arbiter must be dead" — except it might not be.
                sends.append(
                    self.send_to(
                        self.backup, ("claim", self.name, state.input)
                    )
                )
                escalated = True

        new_state = state.with_data((phase, ticks, escalated))
        if (
            not new_state.decided
            and isinstance(message_value, tuple)
            and message_value
            and message_value[0] == "verdict"
        ):
            new_state = new_state.with_decision(message_value[1])
        return Transition(new_state, sends and tuple(sends) or ())
