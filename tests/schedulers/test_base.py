"""Unit tests for CrashPlan and FifoTracker."""

import pytest

from repro.core.messages import Message, MessageBuffer
from repro.schedulers.base import CrashPlan, FifoTracker


class TestCrashPlan:
    def test_none_has_no_faults(self):
        plan = CrashPlan.none()
        assert plan.faulty == frozenset()
        assert plan.is_live("p0", 10**6)

    def test_crash_time_semantics(self):
        plan = CrashPlan({"p1": 5})
        assert plan.is_live("p1", 4)
        assert not plan.is_live("p1", 5)
        assert not plan.is_live("p1", 6)

    def test_initially_dead(self):
        plan = CrashPlan.initially_dead({"p0", "p2"})
        assert not plan.is_live("p0", 0)
        assert plan.is_live("p1", 0)

    def test_live_at_filters(self):
        plan = CrashPlan({"p1": 2})
        names = ("p0", "p1", "p2")
        assert plan.live_at(names, 0) == names
        assert plan.live_at(names, 2) == ("p0", "p2")

    def test_survivors(self):
        plan = CrashPlan({"p1": 100})
        assert plan.survivors(("p0", "p1", "p2")) == ("p0", "p2")

    def test_negative_crash_time_rejected(self):
        with pytest.raises(ValueError):
            CrashPlan({"p0": -1})

    def test_crash_times_returns_copy(self):
        plan = CrashPlan({"p0": 1})
        times = plan.crash_times
        times["p0"] = 99
        assert plan.crash_times == {"p0": 1}


class TestFifoTracker:
    def test_arrivals_enqueue_in_order(self):
        tracker = FifoTracker()
        buffer = MessageBuffer.empty()
        tracker.observe(buffer)
        buffer = buffer.send(Message("p0", "first"))
        tracker.observe(buffer)
        buffer = buffer.send(Message("p0", "second"))
        tracker.observe(buffer)
        assert tracker.earliest_for("p0") == Message("p0", "first")
        assert tracker.pending_count("p0") == 2

    def test_delivery_removes_from_queue(self):
        tracker = FifoTracker()
        buffer = MessageBuffer.of(
            [Message("p0", "a"), Message("p0", "b")]
        )
        tracker.observe(buffer)
        buffer = buffer.deliver(Message("p0", "a"))
        tracker.observe(buffer)
        assert tracker.earliest_for("p0") == Message("p0", "b")

    def test_empty_queue(self):
        tracker = FifoTracker()
        tracker.observe(MessageBuffer.empty())
        assert tracker.earliest_for("p0") is None
        assert tracker.pending_count("p0") == 0

    def test_multiplicity_tracked(self):
        tracker = FifoTracker()
        buffer = MessageBuffer.of([Message("p0", "x"), Message("p0", "x")])
        tracker.observe(buffer)
        assert tracker.pending_count("p0") == 2
        tracker.observe(buffer.deliver(Message("p0", "x")))
        assert tracker.pending_count("p0") == 1

    def test_separate_destinations(self):
        tracker = FifoTracker()
        tracker.observe(
            MessageBuffer.of([Message("p0", "a"), Message("p1", "b")])
        )
        assert tracker.earliest_for("p0") == Message("p0", "a")
        assert tracker.earliest_for("p1") == Message("p1", "b")

    def test_observe_same_buffer_is_idempotent(self):
        tracker = FifoTracker()
        buffer = MessageBuffer.of([Message("p0", "a")])
        tracker.observe(buffer)
        tracker.observe(buffer)
        assert tracker.pending_count("p0") == 1

    def test_simultaneous_add_and_remove(self):
        tracker = FifoTracker()
        buffer = MessageBuffer.of([Message("p0", "a")])
        tracker.observe(buffer)
        # One step can deliver a and send b.
        buffer = buffer.deliver(Message("p0", "a")).send(Message("p0", "b"))
        tracker.observe(buffer)
        assert tracker.earliest_for("p0") == Message("p0", "b")
        assert tracker.pending_count("p0") == 1
