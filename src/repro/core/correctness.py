"""Partial-correctness checking (paper, Section 2).

"A consensus protocol is *partially correct* if it satisfies two
conditions: (1) no accessible configuration has more than one decision
value; (2) for each v ∈ {0, 1}, some accessible configuration has
decision value v."

For finite protocol instances both conditions are decidable by exhausting
the accessible set.  This module also provides the standard *validity*
check (every reachable decision value is some process's input), which is
stronger than condition (2) and satisfied by all non-degenerate protocols
in the zoo; the paper's trivial always-0 protocol fails condition (2) and
serves as this module's negative control.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import Configuration
from repro.core.exploration import DEFAULT_MAX_CONFIGURATIONS, explore
from repro.core.protocol import Protocol
from repro.core.values import ONE, ZERO

__all__ = [
    "PartialCorrectnessReport",
    "check_partial_correctness",
    "ValidityReport",
    "check_validity",
    "DeterminismReport",
    "check_determinism",
]


@dataclass(frozen=True)
class PartialCorrectnessReport:
    """Outcome of checking the two partial-correctness conditions.

    Attributes
    ----------
    agreement_ok:
        Condition (1): no explored accessible configuration carries two
        different decision values.
    zero_reachable, one_reachable:
        Condition (2), per value: some accessible configuration decides
        that value.
    complete:
        Whether the accessible set was explored exhaustively.  If
        ``False``, a ``True`` verdict on agreement is only "no violation
        found within budget".
    disagreement_witness:
        An accessible configuration with |decision values| ≥ 2, when one
        was found.
    configurations_explored:
        Total distinct configurations examined, over all 2^N initial
        configurations.
    """

    agreement_ok: bool
    zero_reachable: bool
    one_reachable: bool
    complete: bool
    disagreement_witness: Configuration | None
    configurations_explored: int

    @property
    def is_partially_correct(self) -> bool:
        """Both of the paper's conditions hold (within the explored set)."""
        return self.agreement_ok and self.zero_reachable and self.one_reachable

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = (
            "partially correct"
            if self.is_partially_correct
            else "NOT partially correct"
        )
        caveat = "" if self.complete else " (bounded exploration)"
        return (
            f"{verdict}{caveat}: agreement={self.agreement_ok}, "
            f"0-reachable={self.zero_reachable}, "
            f"1-reachable={self.one_reachable}, "
            f"explored={self.configurations_explored}"
        )


def check_partial_correctness(
    protocol: Protocol,
    max_configurations: int = DEFAULT_MAX_CONFIGURATIONS,
) -> PartialCorrectnessReport:
    """Check the paper's partial-correctness conditions by exploration.

    Explores the accessible set from every initial configuration (all
    2^N input vectors) under the given per-root budget.
    """
    agreement_ok = True
    witness: Configuration | None = None
    values_seen: set[int] = set()
    complete = True
    explored = 0

    # Note: no shared TransitionCache here — configurations embed the
    # input registers, so reachable graphs from different hypercube
    # roots are disjoint and a cross-root memo never hits.
    for initial in protocol.initial_configurations():
        graph = explore(
            protocol, initial, max_configurations=max_configurations
        )
        explored += len(graph)
        complete = complete and graph.complete
        for configuration in graph.configurations:
            decisions = configuration.decision_values()
            if len(decisions) > 1 and witness is None:
                agreement_ok = False
                witness = configuration
            values_seen |= decisions

    return PartialCorrectnessReport(
        agreement_ok=agreement_ok,
        zero_reachable=ZERO in values_seen,
        one_reachable=ONE in values_seen,
        complete=complete,
        disagreement_witness=witness,
        configurations_explored=explored,
    )


@dataclass(frozen=True)
class ValidityReport:
    """Outcome of the (stronger than the paper's) validity check.

    Validity: in every accessible configuration, every decided value was
    some process's input.  In particular, with all-zero inputs the only
    reachable decision is 0, and symmetrically for 1.
    """

    valid: bool
    complete: bool
    violation_witness: Configuration | None
    violating_value: int | None
    configurations_explored: int


@dataclass(frozen=True)
class DeterminismReport:
    """Outcome of spot-checking transition-function determinism.

    The paper's model *requires* deterministic processes ("p acts
    deterministically according to a transition function"), and every
    soundness argument in the adversary leans on it, but Python cannot
    enforce it statically — a custom protocol reading wall-clock time
    or an unseeded RNG would silently break everything downstream.
    :func:`check_determinism` re-executes sampled transitions and
    compares results.
    """

    deterministic: bool
    transitions_checked: int
    violation_process: str | None
    violation_detail: str | None

    def summary(self) -> str:
        if self.deterministic:
            return (
                f"deterministic across {self.transitions_checked} "
                "re-executed transitions"
            )
        return (
            f"NONDETERMINISTIC: process {self.violation_process} — "
            f"{self.violation_detail}"
        )


def check_determinism(
    protocol: Protocol,
    walks: int = 20,
    max_steps: int = 15,
    seed: int = 0,
) -> DeterminismReport:
    """Spot-check that every sampled transition replays identically.

    Random walks from random initial configurations; at each step the
    chosen event's transition is computed twice (fresh calls into the
    process automaton) and the resulting ``(state, sends)`` pairs must
    match exactly.  A probabilistic check, but one that catches the
    common nondeterminism bugs (clocks, unseeded RNGs, dict-order
    dependence under hash randomization within a process' own logic).
    """
    import random as _random

    rng = _random.Random(seed)
    checked = 0
    for _ in range(walks):
        inputs = [rng.randint(0, 1) for _ in protocol.process_names]
        configuration = protocol.initial_configuration(inputs)
        for _ in range(rng.randint(1, max_steps)):
            events = protocol.enabled_events(configuration)
            event = rng.choice(events)
            process = protocol.process(event.process)
            state = configuration.state_of(event.process)
            first = process.apply(state, event.value)
            second = process.apply(state, event.value)
            checked += 1
            if first != second:
                return DeterminismReport(
                    deterministic=False,
                    transitions_checked=checked,
                    violation_process=event.process,
                    violation_detail=(
                        f"transition on {event!r} returned two "
                        "different results"
                    ),
                )
            configuration = protocol.apply_event(configuration, event)
    return DeterminismReport(
        deterministic=True,
        transitions_checked=checked,
        violation_process=None,
        violation_detail=None,
    )


def check_validity(
    protocol: Protocol,
    max_configurations: int = DEFAULT_MAX_CONFIGURATIONS,
) -> ValidityReport:
    """Check validity over the accessible set of every initial config."""
    complete = True
    explored = 0
    for initial in protocol.initial_configurations():
        allowed = set(protocol.input_vector(initial))
        graph = explore(
            protocol, initial, max_configurations=max_configurations
        )
        explored += len(graph)
        complete = complete and graph.complete
        for configuration in graph.configurations:
            for value in configuration.decision_values():
                if value not in allowed:
                    return ValidityReport(
                        valid=False,
                        complete=complete,
                        violation_witness=configuration,
                        violating_value=value,
                        configurations_explored=explored,
                    )
    return ValidityReport(
        valid=True,
        complete=complete,
        violation_witness=None,
        violating_value=None,
        configurations_explored=explored,
    )
