"""Bench E6 — the commit window of vulnerability.

Regenerates the E6 table and micro-benchmarks a blocked 2PC run under a
frozen coordinator.
"""

from repro.core.simulation import StopCondition, simulate
from repro.protocols import TwoPhaseCommitProcess, make_protocol
from repro.schedulers import DelayScheduler


def test_e6_table(benchmark, run_and_render):
    result = run_and_render(benchmark, "E6")
    for row in result.rows:
        assert row["blocked"]
        assert row["decides_after_lift"]


def test_blocked_2pc_run(benchmark):
    protocol = make_protocol(TwoPhaseCommitProcess, 3)
    initial = protocol.initial_configuration([1, 1, 1])

    def run():
        return simulate(
            protocol,
            initial,
            DelayScheduler({"p0"}, window=(0, None)),
            max_steps=200,
            stop=StopCondition.ALL_DECIDED,
        )

    result = benchmark(run)
    assert not result.decided
