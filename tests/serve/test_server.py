"""HTTP surface of the daemon: routes, errors, admission, deadlines."""

import json
import time

from repro.serve.client import http_request


def _wait_done(client, job_id, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        view = client.job(job_id).json()
        if view["state"] in ("done", "failed"):
            return view
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id} not done within {timeout_s}s")


class TestHealth:
    def test_healthz_and_readyz(self, daemon):
        client = daemon().client
        assert client.healthz().status == 200
        assert client.healthz().json()["ok"] is True
        assert client.readyz().status == 200

    def test_endpoint_file_written(self, daemon, tmp_path):
        server = daemon(spool=tmp_path / "ep-spool")
        endpoint = json.loads(
            (tmp_path / "ep-spool" / "endpoint.json").read_bytes()
        )
        assert endpoint["port"] == server.port
        assert endpoint["host"] == "127.0.0.1"


class TestJobLifecycle:
    def test_submit_poll_result(self, daemon):
        client = daemon().client
        response = client.submit(
            {"verb": "check", "protocol": "parity-arbiter", "n": 3}
        )
        assert response.status == 202
        assert response.json()["kind"] == "accepted"
        job_id = response.json()["job_id"]

        view = _wait_done(client, job_id)
        assert view["state"] == "done"
        assert view["partial"] is None

        result = client.result(job_id)
        assert result.status == 200
        payload = json.loads(result.body)
        assert payload["verb"] == "check"
        assert payload["result"]["complete"] is True
        assert payload["result"]["census_fingerprint"]
        assert payload["partial"] is None

    def test_jobs_listing(self, daemon):
        client = daemon().client
        job_id = client.submit(
            {"verb": "check", "protocol": "parity-arbiter", "n": 3}
        ).json()["job_id"]
        _wait_done(client, job_id)
        jobs = client.jobs()
        assert [job["id"] for job in jobs] == [job_id]

    def test_query_waits_for_result(self, daemon):
        client = daemon().client
        response = client.query(
            {"verb": "check", "protocol": "parity-arbiter", "n": 3}
        )
        assert response.status == 200
        assert response.headers["x-repro-cache"] == "accepted"
        assert json.loads(response.body)["result"]["complete"] is True

    def test_survive_job(self, daemon):
        client = daemon().client
        response = client.query(
            {
                "verb": "survive",
                "protocol": "parity-arbiter",
                "max_steps": 200,
            }
        )
        assert response.status == 200
        payload = json.loads(response.body)
        assert payload["result"]["expectations_ok"] is True
        assert payload["result"]["cells"]

    def test_attack_job(self, daemon):
        client = daemon().client
        response = client.query(
            {
                "verb": "attack",
                "protocol": "parity-arbiter",
                "n": 3,
                "stages": 5,
            }
        )
        assert response.status == 200
        payload = json.loads(response.body)
        assert payload["result"]["verified"] is True
        assert payload["result"]["schedule_length"] >= 5


class TestErrors:
    def test_malformed_json_is_400(self, daemon):
        server = daemon()
        response = http_request(
            "127.0.0.1", server.port, "POST", "/jobs", b"{nope"
        )
        assert response.status == 400

    def test_unknown_field_is_400(self, daemon):
        response = daemon().client.submit(
            {"verb": "check", "protocol": "parity-arbiter", "bogus": 1}
        )
        assert response.status == 400
        assert "unknown job fields" in response.json()["error"]

    def test_unknown_route_is_404(self, daemon):
        server = daemon()
        assert (
            http_request("127.0.0.1", server.port, "GET", "/nope").status
            == 404
        )

    def test_unknown_job_is_404(self, daemon):
        assert daemon().client.result("j-missing").status == 404

    def test_wrong_method_is_405(self, daemon):
        server = daemon()
        response = http_request(
            "127.0.0.1", server.port, "POST", "/healthz", b"{}"
        )
        assert response.status == 405

    def test_result_before_done_is_404(self, daemon):
        client = daemon().client
        job_id = client.submit(
            {"verb": "check", "protocol": "benor", "n": 3, "budget": 30_000}
        ).json()["job_id"]
        assert client.result(job_id).status == 404
        _wait_done(client, job_id, timeout_s=120.0)


class TestAdmissionControl:
    def test_full_queue_answers_429_with_retry_after(self, daemon):
        client = daemon(max_pending=1, job_workers=1).client
        first = client.submit(
            {"verb": "check", "protocol": "benor", "n": 3, "budget": 30_000}
        )
        assert first.status == 202
        # A *different* spec (distinct cache key) while the queue is
        # full must bounce; identical specs would join, not queue.
        second = client.submit(
            {"verb": "check", "protocol": "benor", "n": 3, "budget": 30_001}
        )
        assert second.status == 429
        assert "retry-after" in second.headers
        stats = client.stats()
        assert stats["counters"]["rejected"] == 1
        _wait_done(client, first.json()["job_id"], timeout_s=120.0)
        # Queue drained: the same spec is admitted now.
        third = client.submit(
            {"verb": "check", "protocol": "benor", "n": 3, "budget": 30_001}
        )
        assert third.status == 202
        _wait_done(client, third.json()["job_id"], timeout_s=120.0)


class TestDeadlines:
    def test_deadline_degrades_to_partial_with_checkpoint(self, daemon):
        client = daemon(checkpoint_every_s=0.1).client
        # benor's reachable graph dwarfs this budget; 0.5s of wall
        # clock cannot finish it, so the deadline watchdog must stop
        # the engine at a consistency point.
        response = client.query(
            {
                "verb": "check",
                "protocol": "benor",
                "n": 3,
                "budget": 500_000,
                "max_seconds": 0.5,
            }
        )
        assert response.status == 200
        assert response.headers["x-repro-partial"]
        payload = json.loads(response.body)
        assert payload["partial"] is not None
        assert payload["partial"]["reason"] in ("wall_clock", "deadline")
        assert payload["result"]["complete"] is False
        assert payload["result"]["nodes"] > 0
        job = client.jobs()[0]
        assert job["has_checkpoint"] is True
        # Partial answers must never be cached.
        assert client.stats()["cache_entries"] == 0
