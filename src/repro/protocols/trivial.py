"""Degenerate protocols: negative controls for the correctness checkers.

"The trivial solution in which, say, 0 is always chosen is ruled out by
stipulating that both 0 and 1 are possible decision values."  These two
protocols fail partial correctness in the two possible ways — one per
condition — and the test suite uses them to prove the checkers can say
*no*.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.process import ProcessState, Transition
from repro.protocols.base import ConsensusProcess

__all__ = ["AlwaysZeroProcess", "InputEchoProcess"]


class AlwaysZeroProcess(ConsensusProcess):
    """Decides 0 unconditionally on its first step.

    Satisfies agreement (condition 1) trivially but fails condition (2):
    no accessible configuration ever has decision value 1.  This is the
    paper's "trivial solution" that the problem statement rules out.
    """

    def initial_data(self, input_value: int) -> Hashable:
        return ()

    def step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        if state.decided:
            return self.noop(state)
        return Transition(state.with_decision(0), ())


class InputEchoProcess(ConsensusProcess):
    """Decides its own input immediately, without communicating.

    Satisfies condition (2) — both values are reachable — but fails
    agreement: from any mixed-input initial configuration, a configuration
    with decision values {0, 1} is accessible.
    """

    def initial_data(self, input_value: int) -> Hashable:
        return ()

    def step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        if state.decided:
            return self.noop(state)
        return Transition(state.with_decision(state.input), ())
