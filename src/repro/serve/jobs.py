"""Job queue, admission control, single-flight, and recovery.

The :class:`JobManager` owns every job the daemon knows about.  Its
robustness contract:

* **Bounded admission** — at most ``max_pending`` jobs may be queued or
  running; a submission beyond that raises :class:`AdmissionError`
  (the server answers 429 + ``Retry-After``) instead of growing an
  unbounded queue that dies by OOM under load.
* **Single-flight** — a submission whose cache key matches a queued or
  running job *joins* that job instead of spawning a second identical
  exploration; a submission whose key is already cached is answered
  from the cache without any job at all.
* **Deadline watchdog** — ``spec.max_seconds`` arms a timer on the
  event loop that asks the running engine to stop gracefully; the job
  then completes *with* a partial result and a final checkpoint rather
  than failing (see :mod:`repro.serve.runner`).
* **Retry with backoff** — a job that raises is retried up to
  ``max_retries`` times with exponential backoff (the PR-3 dispatch
  policy, applied at the job level), then marked ``failed`` with the
  error preserved.
* **Drain** — :meth:`drain` stops accepting, asks every running engine
  to checkpoint and stop, and requeues the jobs in the spool so the
  next daemon resumes them.
* **Recovery** — :meth:`recover` (run at startup) requeues every
  ``queued``/``running`` record found in the spool; their engines
  resume from the per-job checkpoint byte-identically.
"""

from __future__ import annotations

import asyncio
import functools
import logging
import os
import time
from concurrent.futures import ThreadPoolExecutor

from repro.serve.cache import ResultCache
from repro.serve.runner import JobHandle, JobSuspended, execute_job
from repro.serve.spool import Spool
from repro.serve.wire import JobRecord, JobSpec, cache_key, canonical_json

__all__ = ["AdmissionError", "JobManager"]

logger = logging.getLogger(__name__)


class AdmissionError(Exception):
    """The pending set is full; try again after ``retry_after_s``."""

    def __init__(self, pending: int, limit: int, retry_after_s: float = 1.0):
        super().__init__(
            f"job queue full ({pending}/{limit} pending); retry later"
        )
        self.pending = pending
        self.limit = limit
        self.retry_after_s = retry_after_s


def _new_job_id() -> str:
    stamp = time.strftime("%Y%m%d%H%M%S", time.gmtime())
    return f"j{stamp}-{os.urandom(4).hex()}"


class JobManager:
    """All job state of one daemon instance (event-loop confined)."""

    def __init__(
        self,
        spool: Spool,
        *,
        max_pending: int = 16,
        job_workers: int = 2,
        checkpoint_every_s: float = 1.0,
        max_retries: int = 2,
        backoff_base_s: float = 0.05,
        backoff_factor: float = 2.0,
    ):
        self.spool = spool
        self.cache = ResultCache(spool.cache_dir)
        self.max_pending = max_pending
        self.job_workers = max(1, job_workers)
        self.checkpoint_every_s = checkpoint_every_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.draining = False
        self.counters: dict[str, int] = {
            "accepted": 0,
            "rejected": 0,
            "cache_hits": 0,
            "singleflight_joins": 0,
            "explorations_run": 0,
            "jobs_done": 0,
            "jobs_failed": 0,
            "jobs_suspended": 0,
            "job_retries": 0,
            "jobs_recovered": 0,
            "partial_results": 0,
            "deadline_stops": 0,
        }
        self._records: dict[str, JobRecord] = {}
        self._results: dict[str, bytes] = {}
        self._done_events: dict[str, asyncio.Event] = {}
        #: cache key → id of the queued/running job computing it.
        self._inflight: dict[str, str] = {}
        #: Jobs currently queued or running (admission accounting).
        self._pending: set[str] = set()
        self._handles: dict[str, JobHandle] = {}
        self._queue: asyncio.Queue[str] = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=self.job_workers, thread_name_prefix="repro-job"
        )
        self._worker_tasks: list[asyncio.Task] = []

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        self.recover()
        loop = asyncio.get_running_loop()
        self._worker_tasks = [
            loop.create_task(self._worker(), name=f"repro-serve-worker-{i}")
            for i in range(self.job_workers)
        ]

    def recover(self) -> None:
        """Requeue every interrupted job found in the spool."""
        for record in self.spool.load_records():
            self._records[record.id] = record
            event = asyncio.Event()
            self._done_events[record.id] = event
            if record.state in ("queued", "running"):
                if record.state == "running":
                    # The previous daemon died mid-job; its checkpoint
                    # (if any was written) makes the re-run a resume.
                    record.resumes += 1
                    record.state = "queued"
                self.spool.persist_record(record)
                self._pending.add(record.id)
                self._inflight.setdefault(record.key, record.id)
                self._queue.put_nowait(record.id)
                self.counters["jobs_recovered"] += 1
                logger.info(
                    "recovered job %s (%s %s, resume #%d)",
                    record.id,
                    record.spec.verb,
                    record.spec.protocol,
                    record.resumes,
                )
            elif record.state == "done":
                payload = self.spool.read_result(record.id)
                if payload is None:
                    record.state = "failed"
                    record.error = "result file lost"
                    self.spool.persist_record(record)
                else:
                    self._results[record.id] = payload
                event.set()
            else:  # failed
                event.set()

    async def drain(self, timeout_s: float = 30.0) -> None:
        """Stop accepting, checkpoint running jobs, requeue them."""
        self.draining = True
        for handle in list(self._handles.values()):
            handle.request_stop("drain")
        deadline = time.monotonic() + timeout_s
        while self._handles and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._executor.shutdown(wait=True, cancel_futures=True)

    # -- submission --------------------------------------------------------------

    def submit(self, spec: JobSpec) -> tuple[str, JobRecord]:
        """Admit *spec*; returns ``(kind, record)``.

        ``kind`` is ``"cached"`` (answered from the persistent cache,
        in-memory record only), ``"joined"`` (an identical job is
        already in flight; its record is shared), or ``"accepted"``
        (a fresh job was queued).  Raises :class:`AdmissionError` when
        the pending set is full — cache hits and joins are exempt, they
        cost no exploration.
        """
        key = cache_key(spec)
        payload = self.cache.get(key)
        if payload is not None:
            self.counters["cache_hits"] += 1
            now = time.time()
            record = JobRecord(
                id=_new_job_id(),
                spec=spec,
                key=key,
                state="done",
                submitted_unix=now,
                started_unix=now,
                finished_unix=now,
            )
            # In-memory only: the answer already lives in the cache
            # file, so persisting one spool dir per repeat query would
            # be pure churn.
            self._records[record.id] = record
            self._results[record.id] = payload
            event = asyncio.Event()
            event.set()
            self._done_events[record.id] = event
            return "cached", record
        leader_id = self._inflight.get(key)
        if leader_id is not None:
            leader = self._records.get(leader_id)
            if leader is not None and leader.state in ("queued", "running"):
                self.counters["singleflight_joins"] += 1
                return "joined", leader
            self._inflight.pop(key, None)
        if self.draining:
            raise AdmissionError(len(self._pending), self.max_pending)
        if len(self._pending) >= self.max_pending:
            self.counters["rejected"] += 1
            raise AdmissionError(len(self._pending), self.max_pending)
        record = JobRecord(
            id=_new_job_id(),
            spec=spec,
            key=key,
            state="queued",
            submitted_unix=time.time(),
        )
        self._records[record.id] = record
        self._done_events[record.id] = asyncio.Event()
        self._inflight[key] = record.id
        self._pending.add(record.id)
        self.spool.persist_record(record)
        self._queue.put_nowait(record.id)
        self.counters["accepted"] += 1
        return "accepted", record

    # -- queries -----------------------------------------------------------------

    def record(self, job_id: str) -> JobRecord | None:
        return self._records.get(job_id)

    def records(self) -> list[JobRecord]:
        return sorted(
            self._records.values(),
            key=lambda record: (record.submitted_unix, record.id),
        )

    def result_bytes(self, job_id: str) -> bytes | None:
        payload = self._results.get(job_id)
        if payload is not None:
            return payload
        return self.spool.read_result(job_id)

    def checkpoint_exists(self, job_id: str) -> bool:
        return self.spool.checkpoint_path(job_id).exists()

    async def wait(self, job_id: str, timeout_s: float | None = None) -> JobRecord:
        event = self._done_events[job_id]
        await asyncio.wait_for(event.wait(), timeout_s)
        return self._records[job_id]

    @property
    def pending(self) -> int:
        return len(self._pending)

    @property
    def running(self) -> int:
        return len(self._handles)

    # -- execution ---------------------------------------------------------------

    async def _worker(self) -> None:
        while True:
            job_id = await self._queue.get()
            if self.draining:
                continue
            record = self._records.get(job_id)
            if record is None or record.state != "queued":
                continue
            await self._run(record)

    async def _run(self, record: JobRecord) -> None:
        loop = asyncio.get_running_loop()
        record.state = "running"
        record.started_unix = time.time()
        self.spool.persist_record(record)
        handle = JobHandle()
        self._handles[record.id] = handle
        timer = None
        if record.spec.max_seconds is not None:
            timer = loop.call_later(
                record.spec.max_seconds, self._deadline, handle
            )
        self.counters["explorations_run"] += 1
        try:
            result = await loop.run_in_executor(
                self._executor,
                functools.partial(
                    execute_job,
                    record.spec,
                    checkpoint_path=str(
                        self.spool.checkpoint_path(record.id)
                    ),
                    handle=handle,
                    checkpoint_every_s=self.checkpoint_every_s,
                ),
            )
        except JobSuspended:
            record.state = "queued"
            record.resumes += 1
            self.counters["jobs_suspended"] += 1
            self.spool.persist_record(record)
            if not self.draining:
                self._queue.put_nowait(record.id)
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            record.attempts += 1
            if record.attempts <= self.max_retries and not self.draining:
                self.counters["job_retries"] += 1
                record.state = "queued"
                self.spool.persist_record(record)
                backoff = self.backoff_base_s * (
                    self.backoff_factor ** (record.attempts - 1)
                )
                logger.warning(
                    "job %s failed (attempt %d/%d), retrying in %.2fs: %s",
                    record.id,
                    record.attempts,
                    self.max_retries + 1,
                    backoff,
                    error,
                )
                await asyncio.sleep(backoff)
                self._queue.put_nowait(record.id)
            else:
                record.state = "failed"
                record.error = f"{type(error).__name__}: {error}"
                record.finished_unix = time.time()
                self.counters["jobs_failed"] += 1
                logger.error("job %s failed permanently: %s", record.id, error)
                self._finish(record)
        else:
            record.partial = result.get("partial")
            payload = canonical_json(result)
            self.spool.write_result(record.id, payload)
            self._results[record.id] = payload
            record.state = "done"
            record.finished_unix = time.time()
            self.counters["jobs_done"] += 1
            if record.partial is None:
                # Only complete answers enter the cache — a deadline-
                # truncated partial must not masquerade as the result
                # for a later, more patient client.
                self.cache.put(record.key, payload)
            else:
                self.counters["partial_results"] += 1
            self._finish(record)
        finally:
            if timer is not None:
                timer.cancel()
            self._handles.pop(record.id, None)

    def _deadline(self, handle: JobHandle) -> None:
        self.counters["deadline_stops"] += 1
        handle.request_stop("deadline")

    def _finish(self, record: JobRecord) -> None:
        self.spool.persist_record(record)
        self._pending.discard(record.id)
        if self._inflight.get(record.key) == record.id:
            self._inflight.pop(record.key, None)
        self._done_events[record.id].set()
