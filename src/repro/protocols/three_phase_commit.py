"""Three-phase commit: the "non-blocking" protocol that still blocks.

3PC inserts a *prepared* phase between voting and committing so that no
process commits while another might still abort unilaterally — under a
synchronous timing model with reliable failure detection this makes the
protocol non-blocking.  FLP's point is precisely that those assumptions
are doing all the work: in the fully asynchronous model, 3PC is just as
vulnerable as 2PC, because a process cannot distinguish a dead
coordinator from a slow one and *timeouts do not exist*.

Phases (centralized, crash-stop):

1. participants send votes to the coordinator; a 0-voter unilaterally
   aborts;
2. on all-yes votes the coordinator broadcasts ``prepare`` and waits for
   acks (it does **not** decide yet — that is the 3PC refinement);
   on any no-vote it decides 0 and broadcasts ``abort``;
3. once all acks arrive the coordinator decides 1 and broadcasts
   ``commit``; participants decide on receiving ``commit``/``abort``.

The decision is again a pure function of the inputs (commit iff all
votes are 1), so all initial configurations are univalent, and the
Theorem-1 fault mode stalls it: silence one process at the adjacency
boundary and the survivors wait forever — now with a *wider* window of
vulnerability than 2PC (experiment E6 compares the two).

Message universe: ``("vote", sender, v)``, ``("prepare",)``,
``("ack", sender)``, ``("outcome", v)``.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.process import ProcessState, Transition
from repro.protocols.base import ConsensusProcess

__all__ = ["ThreePhaseCommitProcess"]

COMMIT = 1
ABORT = 0


class ThreePhaseCommitProcess(ConsensusProcess):
    """One node of centralized three-phase commit."""

    def __init__(self, name: str, peers, coordinator: str | None = None):
        super().__init__(name, peers)
        self.coordinator = (
            coordinator if coordinator is not None else self.peers[0]
        )
        if self.coordinator not in self.peers:
            raise ValueError(f"coordinator {self.coordinator!r} not in roster")

    @property
    def is_coordinator(self) -> bool:
        return self.name == self.coordinator

    def initial_data(self, input_value: int) -> Hashable:
        if self.is_coordinator:
            return ("collecting", frozenset(), frozenset())
        return ("fresh",)

    def step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        if self.is_coordinator:
            return self._coordinator_step(state, message_value)
        return self._participant_step(state, message_value)

    # -- coordinator ---------------------------------------------------------

    def _coordinator_step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        if state.decided:
            return self.noop(state)
        phase, votes, acks = state.data
        sends: list = []

        if phase == "collecting":
            votes = votes | {(self.name, state.input)}
            if (
                isinstance(message_value, tuple)
                and message_value
                and message_value[0] == "vote"
            ):
                _, sender, vote = message_value
                votes = votes | {(sender, vote)}
            if len(votes) == self.n:
                if all(vote == 1 for _, vote in votes):
                    # 3PC refinement: broadcast prepare, do NOT decide yet.
                    sends.extend(self.broadcast(self.others, ("prepare",)))
                    return Transition(
                        state.with_data(("preparing", votes, acks)),
                        tuple(sends),
                    )
                decided = state.with_data(
                    ("done", votes, acks)
                ).with_decision(ABORT)
                sends.extend(self.broadcast(self.others, ("outcome", ABORT)))
                return Transition(decided, tuple(sends))
            return Transition(state.with_data((phase, votes, acks)), ())

        if phase == "preparing":
            if (
                isinstance(message_value, tuple)
                and message_value
                and message_value[0] == "ack"
            ):
                acks = acks | {message_value[1]}
            if len(acks) == self.n - 1:
                decided = state.with_data(
                    ("done", votes, acks)
                ).with_decision(COMMIT)
                sends.extend(
                    self.broadcast(self.others, ("outcome", COMMIT))
                )
                return Transition(decided, tuple(sends))
            return Transition(state.with_data((phase, votes, acks)), ())

        return self.noop(state)

    # -- participant ----------------------------------------------------------

    def _participant_step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        data = state.data
        sends: list = []
        if data == ("fresh",):
            sends.append(
                self.send_to(
                    self.coordinator, ("vote", self.name, state.input)
                )
            )
            data = ("voted",)

        new_state = state.with_data(data)
        if (
            isinstance(message_value, tuple)
            and message_value
            and message_value[0] == "prepare"
            and data == ("voted",)
        ):
            sends.append(self.send_to(self.coordinator, ("ack", self.name)))
            new_state = new_state.with_data(("prepared",))

        if not new_state.decided:
            if new_state.input == 0:
                # Unilateral abort is still sound in 3PC's voting phase.
                new_state = new_state.with_decision(ABORT)
            elif (
                isinstance(message_value, tuple)
                and message_value
                and message_value[0] == "outcome"
            ):
                new_state = new_state.with_decision(message_value[1])
        return Transition(new_state, tuple(sends))
