"""Tests for FloodSet on the round-synchronous executor."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocols import FloodSetProcess
from repro.synchrony import SyncCrashPlan, run_rounds

NAMES5 = tuple(f"p{i}" for i in range(5))


def make_processes(names, f):
    return [FloodSetProcess(name, names, f=f) for name in names]


class TestParameters:
    def test_f_bounds(self):
        with pytest.raises(ValueError):
            FloodSetProcess("p0", NAMES5, f=5)
        with pytest.raises(ValueError):
            FloodSetProcess("p0", NAMES5, f=-1)

    def test_f_zero_is_one_round(self):
        processes = make_processes(NAMES5, 0)
        result = run_rounds(
            processes, {name: 1 for name in NAMES5}
        )
        assert result.rounds_executed == 1
        assert all(r == 1 for r in result.decision_rounds.values())


class TestFaultFree:
    def test_unanimous(self):
        processes = make_processes(NAMES5, 2)
        result = run_rounds(processes, {name: 0 for name in NAMES5})
        assert result.decision_values == frozenset({0})
        assert result.all_live_decided

    def test_mixed_inputs_use_default(self):
        processes = make_processes(NAMES5, 1)
        inputs = dict(zip(NAMES5, [0, 1, 0, 1, 0]))
        result = run_rounds(processes, inputs)
        # Everyone sees both values; the default (1) wins.
        assert result.decision_values == frozenset({1})

    def test_decides_in_exactly_f_plus_one_rounds(self):
        for f in (0, 1, 2, 3):
            processes = make_processes(NAMES5, f)
            result = run_rounds(
                processes, {name: 1 for name in NAMES5}
            )
            assert set(result.decision_rounds.values()) == {f + 1}


class TestCrashes:
    def test_clean_crash_mid_protocol(self):
        processes = make_processes(NAMES5, 2)
        plan = SyncCrashPlan({"p0": (2, frozenset())})
        inputs = dict(zip(NAMES5, [0, 1, 1, 1, 1]))
        result = run_rounds(processes, inputs, plan)
        assert result.agreement_holds
        assert result.all_live_decided
        assert "p0" not in result.decisions

    def test_partial_broadcast_is_contained(self):
        """The nasty case: p0 crashes in round 1 delivering its lone 0
        only to p1.  The flood still equalizes by round f+1."""
        processes = make_processes(NAMES5, 2)
        plan = SyncCrashPlan({"p0": (1, frozenset({"p1"}))})
        inputs = dict(zip(NAMES5, [0, 1, 1, 1, 1]))
        result = run_rounds(processes, inputs, plan)
        assert result.agreement_holds
        assert result.all_live_decided

    def test_validity_with_crashes(self):
        processes = make_processes(NAMES5, 2)
        plan = SyncCrashPlan(
            {"p1": (1, frozenset()), "p3": (2, frozenset({"p0"}))}
        )
        result = run_rounds(
            processes, {name: 0 for name in NAMES5}, plan
        )
        assert result.decision_values == frozenset({0})


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_agreement_under_adversarial_crashes(seed):
    """Property: any ≤f crashes at any rounds with any partial delivery
    subsets preserve agreement, validity, and f+1-round termination."""
    rng = random.Random(seed)
    n = rng.choice([4, 5, 6])
    f = rng.randint(1, n - 2)
    names = tuple(f"p{i}" for i in range(n))
    victims = rng.sample(list(names), rng.randint(0, f))
    plan = SyncCrashPlan(
        {
            victim: (
                rng.randint(1, f + 1),
                frozenset(
                    rng.sample(
                        [x for x in names if x != victim],
                        rng.randint(0, n - 1),
                    )
                ),
            )
            for victim in victims
        }
    )
    inputs = {name: rng.randint(0, 1) for name in names}
    processes = [FloodSetProcess(name, names, f=f) for name in names]
    result = run_rounds(processes, inputs, plan, max_rounds=f + 2)
    assert result.agreement_holds
    assert result.all_live_decided
    assert result.decision_values <= set(inputs.values())
    assert all(r == f + 1 for r in result.decision_rounds.values())
