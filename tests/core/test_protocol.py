"""Unit tests for Protocol: step semantics and initial configurations."""

import pytest

from repro.core.errors import (
    InvalidEvent,
    ProtocolViolation,
    UnknownProcess,
)
from repro.core.events import NULL, Event, Schedule
from repro.core.messages import Message
from repro.core.process import Process, Transition
from repro.core.protocol import Protocol


class Relay(Process):
    """Sends one 'token' to the next process on its first null step;
    forwards any received token once."""

    def __init__(self, name, successor):
        super().__init__(name)
        self.successor = successor

    def initial_data(self, input_value):
        return ("idle",)

    def step(self, state, message_value):
        if state.data == ("idle",) and message_value is None:
            return Transition(
                state.with_data(("sent",)),
                (self.send_to(self.successor, "token"),),
            )
        if message_value == "token" and not state.decided:
            return Transition(state.with_decision(state.input), ())
        return Transition(state, ())


class Misbehaving(Process):
    def initial_data(self, input_value):
        return ()

    def step(self, state, message_value):
        return Transition(state, (self.send_to("ghost", "boo"),))


@pytest.fixture
def relay_protocol():
    return Protocol([Relay("p0", "p1"), Relay("p1", "p0")])


class TestConstruction:
    def test_requires_two_processes(self):
        with pytest.raises(ValueError, match="N >= 2"):
            Protocol([Relay("p0", "p0")])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            Protocol([Relay("p0", "p1"), Relay("p0", "p1")])

    def test_names_sorted(self, relay_protocol):
        assert relay_protocol.process_names == ("p0", "p1")
        assert relay_protocol.num_processes == 2

    def test_process_lookup(self, relay_protocol):
        assert relay_protocol.process("p0").name == "p0"
        with pytest.raises(UnknownProcess):
            relay_protocol.process("p9")


class TestInitialConfigurations:
    def test_sequence_inputs(self, relay_protocol):
        config = relay_protocol.initial_configuration([0, 1])
        assert config.state_of("p0").input == 0
        assert config.state_of("p1").input == 1
        assert len(config.buffer) == 0

    def test_mapping_inputs(self, relay_protocol):
        config = relay_protocol.initial_configuration({"p1": 0, "p0": 1})
        assert config.state_of("p0").input == 1

    def test_mapping_must_cover_roster(self, relay_protocol):
        with pytest.raises(ValueError, match="missing"):
            relay_protocol.initial_configuration({"p0": 1})
        with pytest.raises(ValueError, match="unknown"):
            relay_protocol.initial_configuration(
                {"p0": 1, "p1": 0, "p9": 1}
            )

    def test_sequence_length_checked(self, relay_protocol):
        with pytest.raises(ValueError, match="expected 2"):
            relay_protocol.initial_configuration([0, 1, 1])

    def test_enumeration_covers_hypercube(self, relay_protocol):
        configs = list(relay_protocol.initial_configurations())
        assert len(configs) == 4
        vectors = {relay_protocol.input_vector(c) for c in configs}
        assert vectors == {(0, 0), (0, 1), (1, 0), (1, 1)}


class TestApplyEvent:
    def test_null_step_sends_token(self, relay_protocol):
        config = relay_protocol.initial_configuration([0, 0])
        after = relay_protocol.apply_event(config, Event("p0", NULL))
        assert Message("p1", "token") in after.buffer
        assert after.state_of("p0").data == ("sent",)

    def test_delivery_consumes_message(self, relay_protocol):
        config = relay_protocol.initial_configuration([0, 1])
        config = relay_protocol.apply_event(config, Event("p0", NULL))
        config = relay_protocol.apply_event(config, Event("p1", "token"))
        assert len(config.buffer) == 0
        assert config.state_of("p1").output == 1

    def test_delivery_of_absent_message_raises(self, relay_protocol):
        config = relay_protocol.initial_configuration([0, 0])
        with pytest.raises(InvalidEvent):
            relay_protocol.apply_event(config, Event("p1", "token"))

    def test_unknown_process_raises(self, relay_protocol):
        config = relay_protocol.initial_configuration([0, 0])
        with pytest.raises(UnknownProcess):
            relay_protocol.apply_event(config, Event("p9", NULL))

    def test_send_to_unknown_process_is_violation(self):
        protocol = Protocol([Misbehaving("p0"), Misbehaving("p1")])
        config = protocol.initial_configuration([0, 0])
        with pytest.raises(ProtocolViolation, match="unknown"):
            protocol.apply_event(config, Event("p0", NULL))

    def test_apply_is_pure(self, relay_protocol):
        config = relay_protocol.initial_configuration([0, 0])
        relay_protocol.apply_event(config, Event("p0", NULL))
        assert len(config.buffer) == 0  # original untouched


class TestSchedules:
    def test_empty_schedule_is_identity(self, relay_protocol):
        config = relay_protocol.initial_configuration([0, 1])
        assert relay_protocol.apply_schedule(config, Schedule()) == config

    def test_schedule_application_is_composition(self, relay_protocol):
        config = relay_protocol.initial_configuration([1, 0])
        schedule = Schedule(
            [Event("p0", NULL), Event("p1", "token")]
        )
        via_schedule = relay_protocol.apply_schedule(config, schedule)
        step_by_step = relay_protocol.apply_event(
            relay_protocol.apply_event(config, schedule[0]), schedule[1]
        )
        assert via_schedule == step_by_step

    def test_run_yields_initial_plus_each_step(self, relay_protocol):
        config = relay_protocol.initial_configuration([0, 0])
        schedule = Schedule([Event("p0", NULL), Event("p1", NULL)])
        configs = list(relay_protocol.run(config, schedule))
        assert len(configs) == 3
        assert configs[0] == config


class TestEnabledEvents:
    def test_initially_only_null_events(self, relay_protocol):
        config = relay_protocol.initial_configuration([0, 0])
        events = relay_protocol.enabled_events(config)
        assert set(events) == {Event("p0", NULL), Event("p1", NULL)}

    def test_deliveries_appear_when_buffered(self, relay_protocol):
        config = relay_protocol.initial_configuration([0, 0])
        config = relay_protocol.apply_event(config, Event("p0", NULL))
        events = relay_protocol.enabled_events(config)
        assert Event("p1", "token") in events

    def test_include_null_false(self, relay_protocol):
        config = relay_protocol.initial_configuration([0, 0])
        config = relay_protocol.apply_event(config, Event("p0", NULL))
        events = relay_protocol.enabled_events(config, include_null=False)
        assert events == (Event("p1", "token"),)

    def test_delivery_events_per_process(self, relay_protocol):
        config = relay_protocol.initial_configuration([0, 0])
        config = relay_protocol.apply_event(config, Event("p0", NULL))
        events = relay_protocol.delivery_events(config, "p1")
        assert Event("p1", NULL) in events
        assert Event("p1", "token") in events
        assert all(e.process == "p1" for e in events)
