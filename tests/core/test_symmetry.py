"""The process-symmetry quotient: reduction, refusal, and fallback.

Three behaviours matter and each gets pinned:

* a protocol that *is* symmetric gets a genuinely smaller graph with an
  identical census, and witnesses read off the quotient graph replay
  concretely (each orbit edge records its renaming);
* a protocol that never declared ``symmetric = True`` is refused loudly
  (``SymmetryError``) — the flag is an assertion about the automata,
  not a go-faster switch;
* a protocol that declares symmetry it does not have is caught by the
  transition-level automorphism check and falls back to the identity
  quotient with a warning, never a wrong verdict.

Deeper canonical-labeling properties (renaming invariance, refine/brute
orbit agreement, composed-reduction identity) live in
``test_symmetry_canonical.py``.
"""

import pytest

from repro.core.errors import SymmetryError
from repro.core.exploration import GlobalConfigurationGraph
from repro.core.process import Transition
from repro.core.reduction import (
    ReductionPolicy,
    declares_symmetry,
    validate_symmetry,
)
from repro.core.valency import ValencyAnalyzer
from repro.protocols import (
    ArbiterProcess,
    QuorumVoteProcess,
    WaitForAllProcess,
    make_protocol,
)

SYM = ReductionPolicy(symmetry=True)


class LiarProcess(WaitForAllProcess):
    """Declares symmetry it does not have: p0 decides 0 on sight.

    The behaviour is name-dependent, so renaming does not commute with
    stepping and the automorphism validator must catch the lie.
    """

    symmetric = True

    def step(self, state, message_value):
        if self.name == "p0" and not state.decided:
            return Transition(state.with_decision(0), ())
        return super().step(state, message_value)


def census(protocol, reduction=None):
    analyzer = ValencyAnalyzer(protocol, reduction=reduction)
    try:
        verdicts = analyzer.classify_initials()
        return verdicts, len(analyzer.graph), analyzer.stats
    finally:
        analyzer.close()


class TestQuotientReduces:
    def test_smaller_graph_same_census(self):
        protocol = make_protocol(WaitForAllProcess, 3)
        full, full_nodes, _ = census(protocol)
        reduced, sym_nodes, stats = census(protocol, reduction=SYM)
        assert reduced == full
        assert sym_nodes < full_nodes
        assert stats.sym_canonical_hits > 0
        assert stats.sym_fallbacks == 0

    def test_combined_with_por_still_agrees(self):
        protocol = make_protocol(WaitForAllProcess, 3)
        full, _, _ = census(protocol)
        both, both_nodes, _ = census(
            protocol, reduction=ReductionPolicy(por=True, symmetry=True)
        )
        _, sym_nodes, _ = census(protocol, reduction=SYM)
        assert both == full
        assert both_nodes <= sym_nodes

    def test_witness_extraction_unquotients_under_quotient(self):
        # Quotient edges connect orbit representatives, but each edge
        # records its renaming, so the analyzer un-quotients the path
        # back into concrete schedules that replay from the *asked*
        # configuration through plain protocol semantics.
        protocol = make_protocol(QuorumVoteProcess, 3)
        analyzer = ValencyAnalyzer(protocol, reduction=SYM)
        try:
            analyzer.classify_initials()
            initial = protocol.initial_configuration([0, 1, 0])
            witness = analyzer.bivalence_witness(initial)
            assert witness is not None
            assert witness.verify(protocol)
        finally:
            analyzer.close()


class TestRefusals:
    def test_undeclared_protocol_is_rejected(self):
        # Arbiter's automata are genuinely asymmetric (one referee,
        # n-1 proposers) and never declare otherwise.
        protocol = make_protocol(ArbiterProcess, 3)
        assert not declares_symmetry(protocol)
        with pytest.raises(SymmetryError, match="symmetric = True"):
            GlobalConfigurationGraph(protocol, reduction=SYM)

class TestFallbacks:
    def test_declared_but_false_symmetry_warns_and_runs_full(self):
        liar = make_protocol(LiarProcess, 3)
        assert declares_symmetry(liar)
        assert validate_symmetry(liar)  # the validator sees the lie
        with pytest.warns(UserWarning, match="symmetry quotient disabled"):
            graph = GlobalConfigurationGraph(liar, reduction=SYM)
        assert graph._quotient is None
        assert graph.stats.sym_fallbacks == 1
        # The run proceeds unreduced and byte-identical to a plain one.
        root = liar.initial_configuration([1, 1, 1])
        graph.explore(root)
        plain = GlobalConfigurationGraph(liar)
        plain.explore(root)
        assert graph.fingerprint() == plain.fingerprint()

    def test_oversized_roster_falls_back_under_brute_only(self):
        # The n! cap guards the brute oracle alone: partition refinement
        # is polynomial per configuration, so the same roster sails
        # through under the default algorithm.
        protocol = make_protocol(WaitForAllProcess, 3)
        brute = ReductionPolicy(
            symmetry=True,
            symmetry_algorithm="brute",
            symmetry_max_processes=2,
        )
        with pytest.warns(UserWarning, match="renamings"):
            graph = GlobalConfigurationGraph(protocol, reduction=brute)
        assert graph._quotient is None
        assert graph.stats.sym_fallbacks == 1
        refine = ReductionPolicy(symmetry=True, symmetry_max_processes=2)
        graph = GlobalConfigurationGraph(protocol, reduction=refine)
        assert graph._quotient is not None
        assert graph.stats.sym_fallbacks == 0
