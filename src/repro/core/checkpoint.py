"""Versioned on-disk snapshots of the exploration engine.

A checkpoint captures everything needed to continue growing a
:class:`~repro.core.exploration.GlobalConfigurationGraph` in a fresh
process: the node table (packed tuples or rich configurations), the
recorded edges, the expanded/frontier partition, the packed codec's
interning tables and transition memos, and the cumulative
:class:`~repro.core.exploration.GraphStats`.

Resume is *byte-identical*: node ids, edge order, and packed encodings
are a pure function of the protocol, the exploration roots, and the
configuration budget, and the snapshot preserves every id-allocation
table, so a run interrupted at an arbitrary BFS level and resumed from
its checkpoint **with the same ``max_configurations``** produces exactly
the fingerprint of an uninterrupted run (pinned by ``tests/chaos/``).
Resuming with a *larger* budget is supported and sound (the frontier is
simply re-attempted), but is not guaranteed byte-identical to a
single-shot run at the larger budget: a budget-truncated run may have
skipped node A yet expanded a later, smaller node B at the same level,
interning B's successors before A's — an id-allocation order no
single-shot run reproduces.

File format (version 2)::

    <one-line JSON header>\n<pickle payload>

Version 2 stores the packed engine's node/edge tables as the flat-buffer
store's raw byte snapshots (arena bytes, CSR offset/count/pair bytes,
event table) instead of per-node Python tuples — the payload for a
million-node graph is a few contiguous ``bytes`` blobs rather than a
million tuple pickles.  The visited-set hash index is *not* stored; it
is a pure function of the arena and is rebuilt on restore.  Version-1
snapshots are refused with :class:`~repro.core.errors.CheckpointMismatch`
(re-explore to regenerate — exploration is deterministic, so the rebuilt
graph is byte-identical).

The header carries a magic string, the format version, the engine mode,
protocol identity (repr + process names/types), node/edge counts, and a
SHA-256 of the payload.  Loading verifies the checksum before unpickling
and the protocol identity before installing, raising
:class:`~repro.core.errors.CheckpointCorrupt` /
:class:`~repro.core.errors.CheckpointMismatch` instead of silently
resuming from the wrong or a damaged snapshot.  Writes go to a sibling
temp file and ``os.replace`` onto the target, so a crash mid-write never
clobbers the previous good checkpoint.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.errors import (
    CheckpointCorrupt,
    CheckpointError,
    CheckpointMismatch,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.exploration import GlobalConfigurationGraph
    from repro.core.protocol import Protocol

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointInfo",
    "save_checkpoint",
    "load_checkpoint",
    "restore_checkpoint",
    "read_checkpoint_header",
]

CHECKPOINT_MAGIC = "flpkit-checkpoint"
CHECKPOINT_VERSION = 2


@dataclass(frozen=True)
class CheckpointInfo:
    """Metadata of one written or loaded snapshot."""

    path: str
    engine: str
    nodes: int
    edges: int
    payload_bytes: int
    sha256: str
    elapsed_s: float

    def summary(self) -> str:
        return (
            f"{self.engine} checkpoint {self.path}: {self.nodes} nodes, "
            f"{self.edges} edges, {self.payload_bytes} bytes "
            f"({self.elapsed_s:.3f}s)"
        )


def _protocol_identity(protocol: "Protocol") -> dict[str, object]:
    return {
        "protocol": repr(protocol),
        "process_names": list(protocol.process_names),
        "process_types": [
            type(protocol.process(name)).__name__
            for name in protocol.process_names
        ],
    }


def _snapshot(graph: "GlobalConfigurationGraph") -> dict[str, object]:
    """The picklable payload for *graph* (engine-mode dependent)."""
    state: dict[str, object] = {
        "engine": "packed" if graph.packed else "dict",
        "expanded": bytes(graph._expanded),
        "stats": graph.stats,
    }
    if graph.packed:
        state["store"] = graph._store.snapshot()
        state["codec"] = graph.codec.snapshot_state()
        if graph.kernel is not None:
            # The batched kernel's dense tables: optional (an engine
            # restored with kernel=False ignores them; a kernel engine
            # restoring an older snapshot just refills lazily), and
            # payload-checksummed with everything else under the same
            # header scheme — resumed runs rebuild nothing.
            state["kernel"] = graph.kernel.snapshot_state()
    else:
        state["successors"] = graph.successors
        state["configurations"] = graph.configurations
    if graph._reducer is not None:
        # The replay-sample position: a resumed reduced exploration must
        # sample the same diamonds an uninterrupted one would.  (The
        # symmetry quotient needs no snapshot of its own — its memo
        # tables are pure functions of the codec's, which are captured
        # above, and the per-edge renaming side table that makes orbit
        # paths replayable rides inside the store snapshot.)
        state["reducer"] = graph._reducer.snapshot_state()
    return state


def _reduction_stamp(graph: "GlobalConfigurationGraph") -> dict[str, object]:
    """The graph-shaping reduction switches, for header compatibility."""
    if graph.reduction is None:
        return {"por": False, "symmetry": False}
    return graph.reduction.describe()


def save_checkpoint(
    graph: "GlobalConfigurationGraph", path: str
) -> CheckpointInfo:
    """Atomically snapshot *graph* to *path*; returns the metadata."""
    started = time.perf_counter()
    payload = pickle.dumps(
        _snapshot(graph), protocol=pickle.HIGHEST_PROTOCOL
    )
    if graph.packed:
        edges = graph._store.edges.total_pairs
    else:
        edges = sum(len(out) for out in graph.successors)
    header = {
        "magic": CHECKPOINT_MAGIC,
        "version": CHECKPOINT_VERSION,
        "engine": "packed" if graph.packed else "dict",
        "nodes": len(graph),
        "edges": edges,
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "payload_bytes": len(payload),
        "created_unix": round(time.time(), 3),
        "reduction": _reduction_stamp(graph),
        **_protocol_identity(graph.protocol),
    }
    header_line = json.dumps(header, sort_keys=True).encode()
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as handle:
        handle.write(header_line)
        handle.write(b"\n")
        handle.write(payload)
    os.replace(tmp, path)
    return CheckpointInfo(
        path=path,
        engine=header["engine"],
        nodes=header["nodes"],
        edges=edges,
        payload_bytes=len(payload),
        sha256=header["payload_sha256"],
        elapsed_s=time.perf_counter() - started,
    )


def _read(path: str) -> tuple[dict[str, object], bytes]:
    """Header + verified payload bytes of the checkpoint at *path*."""
    try:
        with open(path, "rb") as handle:
            header_line = handle.readline()
            payload = handle.read()
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}")
    try:
        header = json.loads(header_line)
    except ValueError:
        raise CheckpointCorrupt(
            f"{path}: malformed checkpoint header"
        ) from None
    if not isinstance(header, dict) or header.get("magic") != CHECKPOINT_MAGIC:
        raise CheckpointCorrupt(f"{path}: not a flpkit checkpoint")
    if header.get("version") != CHECKPOINT_VERSION:
        raise CheckpointMismatch(
            f"{path}: checkpoint format version "
            f"{header.get('version')!r}, this build reads "
            f"{CHECKPOINT_VERSION}"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("payload_sha256"):
        raise CheckpointCorrupt(
            f"{path}: payload checksum mismatch "
            f"(expected {header.get('payload_sha256')}, got {digest})"
        )
    return header, payload


def read_checkpoint_header(path: str) -> dict[str, object]:
    """The verified header of the checkpoint at *path* (no unpickling)."""
    header, _payload = _read(path)
    return header


def restore_checkpoint(
    graph: "GlobalConfigurationGraph", path: str
) -> CheckpointInfo:
    """Install the snapshot at *path* into the *empty* engine *graph*.

    The engine must be freshly constructed (nothing interned yet) and
    must match the snapshot's engine mode and protocol identity; the
    codec object registered with the shared
    :class:`~repro.core.exploration.TransitionCache` is restored in
    place, so existing references stay valid.
    """
    started = time.perf_counter()
    header, payload = _read(path)
    if len(graph) != 0:
        raise CheckpointError(
            "restore target must be a fresh engine (it already has "
            f"{len(graph)} configurations)"
        )
    mode = "packed" if graph.packed else "dict"
    if header.get("engine") != mode:
        raise CheckpointMismatch(
            f"{path}: snapshot is {header.get('engine')!r}-keyed, "
            f"engine is {mode!r}"
        )
    identity = _protocol_identity(graph.protocol)
    for key in ("process_names", "process_types"):
        if header.get(key) != identity[key]:
            raise CheckpointMismatch(
                f"{path}: snapshot {key} {header.get(key)!r} does not "
                f"match protocol {identity[key]!r}"
            )
    # A graph explored under one reduction policy is a *different graph*
    # from one explored under another (fewer edges, rerouted targets);
    # resuming across the boundary would silently mix them.  Headers
    # from before the reduction stamp read as "no reductions".  The
    # stamp includes the canonicalization algorithm when the quotient is
    # on: refine and brute may choose different orbit representatives,
    # and pre-refine symmetry snapshots additionally lack the per-edge
    # renaming side table, so a symmetry header without the algorithm
    # key can never match and is refused here rather than mixed.
    recorded = header.get("reduction", {"por": False, "symmetry": False})
    requested = _reduction_stamp(graph)
    if recorded != requested:
        raise CheckpointMismatch(
            f"{path}: snapshot was explored with reduction {recorded!r}, "
            f"engine is configured with {requested!r}"
        )
    state = pickle.loads(payload)

    graph._expanded = bytearray(state["expanded"])
    if graph.packed:
        graph._store.restore(state["store"])
        graph._rich = {}
        graph.codec.restore_state(state["codec"])
        kernel_state = state.get("kernel")
        if graph.kernel is not None:
            if kernel_state is not None:
                # After the codec: kernel ids resolve against the
                # restored interning tables.
                graph.kernel.restore_state(kernel_state)
                graph._kernel_store_eids = []
            else:
                # A scalar-written checkpoint under a kernel engine:
                # rebuild rep coverage over the restored buffer table so
                # lazy allocation stays sound.
                graph.reset_kernel()
        elif kernel_state is not None:
            # A kernel-written checkpoint resumed with kernel=False:
            # placeholder buffer slots have no kernel to materialize
            # them, so fill every slot rich now, from the snapshot reps.
            from repro.core.kernel import materialize_checkpoint_buffers

            materialize_checkpoint_buffers(graph.codec, kernel_state)
        decisions_of = graph.codec.decision_values
        n_nodes = len(graph._store)
        node_at = graph._store.row
    else:
        graph.successors = state["successors"]
        graph.configurations = state["configurations"]
        graph._index = {
            configuration: node
            for node, configuration in enumerate(graph.configurations)
        }
        decisions_of = lambda c: c.decision_values()  # noqa: E731
        n_nodes = len(graph.configurations)
        node_at = graph.configurations.__getitem__
    if len(graph._expanded) != n_nodes:
        raise CheckpointCorrupt(
            f"{path}: expanded map covers {len(graph._expanded)} nodes, "
            f"table has {n_nodes}"
        )

    # Decision indexes are appended at intern time, i.e. in id order, so
    # an id-order rebuild reproduces them exactly.
    graph._decision_nodes = {}
    for node in range(n_nodes):
        for value in decisions_of(node_at(node)):
            graph._decision_nodes.setdefault(value, []).append(node)

    stats = state["stats"]
    stats.workers = graph.workers
    stats.resumed_nodes = n_nodes
    graph.stats = stats
    # Cadence baseline: a resumed run owes its next checkpoint after
    # *new* expansions, not immediately because of the inherited total.
    graph._expansions_at_checkpoint = stats.expansions
    if graph._reducer is not None:
        graph._reducer._stats = stats
        reducer_state = state.get("reducer")
        if reducer_state is not None:
            graph._reducer.restore_state(reducer_state)
    # Invalidate any CSR index and mark growth state fresh.
    graph._version += 1
    return CheckpointInfo(
        path=path,
        engine=mode,
        nodes=n_nodes,
        edges=(
            graph._store.edges.total_pairs
            if graph.packed
            else sum(len(out) for out in graph.successors)
        ),
        payload_bytes=len(payload),
        sha256=header["payload_sha256"],
        elapsed_s=time.perf_counter() - started,
    )


def load_checkpoint(
    path: str,
    protocol: "Protocol",
    *,
    workers: int = 0,
    transitions=None,
    resilience=None,
    checkpoint=None,
    reduction=None,
    store=None,
    kernel: bool = True,
):
    """Build a fresh engine for *protocol* and restore *path* into it.

    The engine mode (packed vs dict) is taken from the snapshot header,
    and so is the reduction policy unless *reduction* overrides it (an
    override that disagrees with the header raises
    :class:`~repro.core.errors.CheckpointMismatch` during restore);
    *workers*, *resilience*, *checkpoint* and *store* configure the
    resumed engine exactly like the
    :class:`~repro.core.exploration.GlobalConfigurationGraph`
    constructor — in particular a snapshot written from a RAM-backed
    store restores cleanly into an mmap-backed one and vice versa (the
    snapshot is raw buffer bytes either way).
    """
    from repro.core.exploration import GlobalConfigurationGraph

    header = read_checkpoint_header(path)
    if reduction is None:
        stamp = header.get("reduction", {"por": False, "symmetry": False})
        if stamp.get("por") or stamp.get("symmetry"):
            from repro.core.reduction import ReductionPolicy

            reduction = ReductionPolicy(
                por=bool(stamp.get("por")),
                symmetry=bool(stamp.get("symmetry")),
                symmetry_algorithm=str(
                    stamp.get("symmetry_algorithm", "refine")
                ),
            )
    graph = GlobalConfigurationGraph(
        protocol,
        transitions,
        packed=header["engine"] == "packed",
        workers=workers,
        resilience=resilience,
        checkpoint=checkpoint,
        reduction=reduction,
        store=store,
        kernel=kernel,
    )
    restore_checkpoint(graph, path)
    return graph
