"""Valency: the decision values reachable from a configuration.

"Let C be a configuration and let V be the set of decision values of
configurations reachable from C.  C is *bivalent* if |V| = 2, *univalent*
if |V| = 1 — 0-valent or 1-valent according to the corresponding decision
value." (paper, Section 3)

For finite protocol instances valency is computable: build the reachable
graph and take reverse reachability from decision configurations.  For
bounded explorations the analyzer returns sound answers where the budget
permits and an explicit :attr:`Valency.UNKNOWN` otherwise — never a
silent guess.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

from repro.core.configuration import Configuration
from repro.core.events import Event, Schedule
from repro.core.exploration import (
    DEFAULT_MAX_CONFIGURATIONS,
    ConfigurationGraph,
    TransitionCache,
    explore,
)
from repro.core.protocol import Protocol
from repro.core.values import ONE, ZERO

__all__ = [
    "Valency",
    "ValencyAnalyzer",
    "BivalenceWitness",
    "shortest_schedule",
]


class Valency(enum.Enum):
    """Classification of a configuration by its reachable decision set V."""

    #: V = {0}: every reachable decision is 0.
    ZERO_VALENT = "0-valent"
    #: V = {1}: every reachable decision is 1.
    ONE_VALENT = "1-valent"
    #: V = {0, 1}: both decisions remain reachable.
    BIVALENT = "bivalent"
    #: V = ∅: no decision is reachable at all.  Cannot occur in a totally
    #: correct protocol ("by the total correctness of P ... V ≠ ∅") but
    #: the analyzer must be honest about protocols that are not.
    NONE = "non-deciding"
    #: The exploration budget was insufficient to determine V.
    UNKNOWN = "unknown"

    @property
    def is_univalent(self) -> bool:
        return self in (Valency.ZERO_VALENT, Valency.ONE_VALENT)

    @property
    def decided_value(self) -> int | None:
        """The forced decision value for univalent classes, else ``None``."""
        if self is Valency.ZERO_VALENT:
            return ZERO
        if self is Valency.ONE_VALENT:
            return ONE
        return None

    @classmethod
    def of_values(cls, values: frozenset[int]) -> "Valency":
        """Classify an exactly-known decision-value set."""
        if values == frozenset((ZERO, ONE)):
            return cls.BIVALENT
        if values == frozenset((ZERO,)):
            return cls.ZERO_VALENT
        if values == frozenset((ONE,)):
            return cls.ONE_VALENT
        if not values:
            return cls.NONE
        raise ValueError(f"not a binary decision-value set: {values!r}")


@dataclass(frozen=True)
class BivalenceWitness:
    """Machine-checkable evidence that a configuration is bivalent.

    ``to_zero`` applied to ``configuration`` reaches a configuration with
    decision value 0; ``to_one`` likewise for 1.  ``verify`` replays both
    schedules through the protocol semantics.
    """

    configuration: Configuration
    to_zero: Schedule
    to_one: Schedule

    def verify(self, protocol: Protocol) -> bool:
        """Re-run both witness schedules and check the decisions."""
        zero_end = protocol.apply_schedule(self.configuration, self.to_zero)
        one_end = protocol.apply_schedule(self.configuration, self.to_one)
        return (
            ZERO in zero_end.decision_values()
            and ONE in one_end.decision_values()
        )


def shortest_schedule(
    graph: ConfigurationGraph, source: int, targets: set[int]
) -> Schedule | None:
    """Shortest event path in *graph* from node *source* into *targets*.

    Returns ``None`` when no target is reachable from *source* inside the
    explored portion of the graph.
    """
    if source in targets:
        return Schedule()
    parents: dict[int, tuple[int, Event]] = {}
    queue: deque[int] = deque([source])
    seen = {source}
    while queue:
        node = queue.popleft()
        for event, successor in graph.successors[node]:
            if successor in seen:
                continue
            parents[successor] = (node, event)
            if successor in targets:
                events: list[Event] = []
                current = successor
                while current != source:
                    parent, via = parents[current]
                    events.append(via)
                    current = parent
                events.reverse()
                return Schedule(events)
            seen.add(successor)
            queue.append(successor)
    return None


class ValencyAnalyzer:
    """Computes and caches valencies for one protocol.

    The analyzer explores the configuration graph lazily: the first query
    from a configuration builds the graph rooted there, classifies every
    node whose valency is determined soundly by that graph, and caches all
    of them.  Queries from configurations inside an already-explored graph
    are cache hits.

    Parameters
    ----------
    protocol:
        The protocol whose semantics define reachability.
    max_configurations:
        Exploration budget per root.  Graphs larger than this produce
        sound answers where reverse reachability from decisions can be
        separated from the unexplored frontier, and
        :attr:`Valency.UNKNOWN` elsewhere.
    """

    def __init__(
        self,
        protocol: Protocol,
        max_configurations: int = DEFAULT_MAX_CONFIGURATIONS,
    ):
        self.protocol = protocol
        self.max_configurations = max_configurations
        self._cache: dict[Configuration, Valency] = {}
        self._graphs: dict[Configuration, ConfigurationGraph] = {}
        #: Shared transition memo; the adversary's searches reuse it.
        self.transitions = TransitionCache(protocol)
        #: Total configurations explored, across all roots (for reports).
        self.configurations_explored = 0

    # -- queries ---------------------------------------------------------------

    def valency(self, configuration: Configuration) -> Valency:
        """The valency of *configuration* (cached)."""
        cached = self._cache.get(configuration)
        if cached is not None:
            return cached
        graph = self._explore(configuration)
        self._classify_graph(graph)
        return self._cache.get(configuration, Valency.UNKNOWN)

    def is_bivalent(self, configuration: Configuration) -> bool:
        """``True`` iff *configuration* is (provably) bivalent."""
        return self.valency(configuration) is Valency.BIVALENT

    def decision_values(
        self, configuration: Configuration
    ) -> frozenset[int] | None:
        """The exact set V for *configuration*, or ``None`` if unknown."""
        valency = self.valency(configuration)
        if valency is Valency.UNKNOWN:
            return None
        if valency is Valency.BIVALENT:
            return frozenset((ZERO, ONE))
        if valency is Valency.NONE:
            return frozenset()
        return frozenset((valency.decided_value,))

    def bivalence_witness(
        self, configuration: Configuration
    ) -> BivalenceWitness | None:
        """Witness schedules to both decisions, or ``None`` if not
        (provably) bivalent."""
        if self.valency(configuration) is not Valency.BIVALENT:
            return None
        graph = self._graph_for(configuration)
        source = graph.node_id(configuration)
        to_zero = shortest_schedule(graph, source, graph.decision_nodes(ZERO))
        to_one = shortest_schedule(graph, source, graph.decision_nodes(ONE))
        if to_zero is None or to_one is None:  # pragma: no cover - guarded
            return None
        return BivalenceWitness(configuration, to_zero, to_one)

    def classify_initials(self) -> dict[tuple[int, ...], Valency]:
        """Valency of every initial configuration, keyed by input vector."""
        result: dict[tuple[int, ...], Valency] = {}
        for initial in self.protocol.initial_configurations():
            result[self.protocol.input_vector(initial)] = self.valency(
                initial
            )
        return result

    # -- internals ---------------------------------------------------------------

    def _explore(self, root: Configuration) -> ConfigurationGraph:
        graph = explore(
            self.protocol,
            root,
            max_configurations=self.max_configurations,
            cache=self.transitions,
        )
        self.configurations_explored += len(graph)
        self._graphs[root] = graph
        return graph

    def _graph_for(self, configuration: Configuration) -> ConfigurationGraph:
        graph = self._graphs.get(configuration)
        if graph is None:
            graph = self._explore(configuration)
        return graph

    def _classify_graph(self, graph: ConfigurationGraph) -> None:
        """Assign sound valencies to every node of *graph*.

        A node is classified when its reverse-reachability relation to
        decision nodes and to the unexplored frontier pins V down:

        * reaches 0-decisions and 1-decisions  → BIVALENT (always sound);
        * reaches exactly one decision value and cannot reach the
          frontier → that univalent class;
        * reaches nothing and cannot reach the frontier → NONE;
        * anything else → UNKNOWN (not cached, so a later query with a
          larger budget can improve it).
        """
        reach_zero = graph.nodes_reaching(graph.decision_nodes(ZERO))
        reach_one = graph.nodes_reaching(graph.decision_nodes(ONE))
        reach_frontier: set[int] = (
            graph.nodes_reaching(set(graph.frontier))
            if not graph.complete
            else set()
        )
        for node, configuration in enumerate(graph.configurations):
            in_zero = node in reach_zero
            in_one = node in reach_one
            escapes = node in reach_frontier
            if in_zero and in_one:
                self._cache[configuration] = Valency.BIVALENT
            elif escapes:
                continue  # V not pinned down; stay honest.
            elif in_zero:
                self._cache[configuration] = Valency.ZERO_VALENT
            elif in_one:
                self._cache[configuration] = Valency.ONE_VALENT
            else:
                self._cache[configuration] = Valency.NONE
