"""A4 — "algorithms based on time-outs ... cannot be used", demonstrated.

The paper excludes timeout-based algorithms because processes lack
synchronized clocks; the tempting workaround — self-clocking by
counting one's own steps — is implemented in
:mod:`repro.protocols.timeout_arbiter` and put head-to-head with the
plain arbiter:

* under fair scheduling both decide promptly (the timeout looks like a
  pure availability win: the backup takes over when the arbiter is
  slow);
* under exhaustive analysis the plain arbiter is partially correct —
  the adversary can only *block* it — while the timeout variant has
  reachable configurations with **two different decisions**: the
  escalation converted the liveness failure into a safety failure.

The shape to reproduce: safe-but-blockable vs. live-but-wrong.  There
is no third column; that is the theorem.
"""

from __future__ import annotations

import random

from repro.core.correctness import check_partial_correctness
from repro.core.simulation import StopCondition, simulate
from repro.experiments.harness import ExperimentResult, experiment
from repro.protocols import (
    ArbiterProcess,
    TimeoutArbiterProcess,
    make_protocol,
)
from repro.schedulers import RandomScheduler, RoundRobinScheduler

__all__ = ["run"]


@experiment("A4", "Ablation: timeouts trade blocking for disagreement")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    trials = 15 if quick else 80
    rng = random.Random(seed)
    rows = []
    subjects = [
        ("arbiter/4", make_protocol(ArbiterProcess, 4)),
        (
            "timeout-arbiter/4",
            make_protocol(TimeoutArbiterProcess, 4, timeout=2),
        ),
    ]
    for label, protocol in subjects:
        report = check_partial_correctness(protocol)

        fair_decided = fair_agreed = 0
        noisy_decided = noisy_agreed = 0
        for _ in range(trials):
            inputs = [rng.randint(0, 1) for _ in protocol.process_names]
            fair = simulate(
                protocol,
                protocol.initial_configuration(inputs),
                RoundRobinScheduler(),
                max_steps=300,
                stop=StopCondition.ALL_DECIDED,
            )
            fair_decided += fair.decided
            fair_agreed += fair.agreement_holds
            noisy = simulate(
                protocol,
                protocol.initial_configuration(inputs),
                RandomScheduler(
                    seed=rng.randrange(2**30), null_probability=0.5
                ),
                max_steps=1200,
                stop=StopCondition.ALL_DECIDED,
            )
            noisy_decided += noisy.decided
            noisy_agreed += noisy.agreement_holds

        rows.append(
            {
                "protocol": label,
                "exhaustive_agreement": report.agreement_ok,
                "trials": trials,
                "fair_decided": fair_decided,
                "fair_agreed": fair_agreed,
                "noisy_decided": noisy_decided,
                "noisy_agreed": noisy_agreed,
            }
        )
    return ExperimentResult(
        exp_id="A4",
        title="Ablation: timeouts trade blocking for disagreement",
        rows=tuple(rows),
        notes=(
            "expected: the plain arbiter has exhaustive_agreement=True "
            "(it can be blocked, never split); the timeout variant has "
            "exhaustive_agreement=False — a reachable configuration "
            "carries both decision values",
            "the noisy-scheduler columns show the trap: the timeout "
            "variant often LOOKS fine (or even decides more), because "
            "the disagreeing schedules are rare — exhaustive analysis, "
            "not testing, exposes them",
            'paper: "processes do not have access to synchronized '
            'clocks, so algorithms based on time-outs, for example, '
            'cannot be used"',
        ),
        seed=seed,
        quick=quick,
    )
