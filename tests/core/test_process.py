"""Unit tests for process states and the transition framework."""

import pytest

from repro.core.errors import ProtocolViolation
from repro.core.messages import Message
from repro.core.process import Process, ProcessState, Transition
from repro.core.values import UNDECIDED


class EchoOnce(Process):
    """Test automaton: first step decides its input and pings p1."""

    def initial_data(self, input_value):
        return ("fresh",)

    def step(self, state, message_value):
        if state.decided:
            return Transition(state, ())
        return Transition(
            state.with_decision(state.input),
            (self.send_to("p1", "ping"),),
        )


class Rogue(Process):
    """Deliberately misbehaving automaton, configurable per test."""

    def __init__(self, name, behavior):
        super().__init__(name)
        self.behavior = behavior

    def initial_data(self, input_value):
        return ()

    def step(self, state, message_value):
        return self.behavior(self, state)


class TestProcessState:
    def test_initial_state_is_undecided(self):
        state = ProcessState(1, UNDECIDED, ())
        assert not state.decided
        assert state.output is UNDECIDED

    def test_rejects_bad_input_register(self):
        with pytest.raises(ValueError):
            ProcessState(2, UNDECIDED, ())

    def test_rejects_bad_output_register(self):
        with pytest.raises(ValueError):
            ProcessState(0, 7, ())

    def test_immutable(self):
        state = ProcessState(0, UNDECIDED, ())
        with pytest.raises(AttributeError):
            state.input = 1

    def test_with_decision_sets_output(self):
        state = ProcessState(0, UNDECIDED, ()).with_decision(1)
        assert state.decided
        assert state.output == 1

    def test_write_once_same_value_is_noop(self):
        state = ProcessState(0, UNDECIDED, ()).with_decision(1)
        assert state.with_decision(1) is state

    def test_write_once_change_raises(self):
        state = ProcessState(0, UNDECIDED, ()).with_decision(1)
        with pytest.raises(ProtocolViolation, match="write-once"):
            state.with_decision(0)

    def test_with_data_preserves_registers(self):
        state = ProcessState(1, UNDECIDED, ("a",)).with_data(("b",))
        assert state.input == 1
        assert state.data == ("b",)

    def test_equality_and_hash(self):
        a = ProcessState(0, UNDECIDED, (1, 2))
        b = ProcessState(0, UNDECIDED, (1, 2))
        assert a == b
        assert hash(a) == hash(b)
        assert a != ProcessState(1, UNDECIDED, (1, 2))

    def test_repr_shows_blank_marker(self):
        assert "y=b" in repr(ProcessState(0, UNDECIDED, ()))


class TestProcessFramework:
    def test_initial_state_uses_initial_data(self):
        process = EchoOnce("p0")
        state = process.initial_state(1)
        assert state.input == 1
        assert state.data == ("fresh",)

    def test_apply_runs_step(self):
        process = EchoOnce("p0")
        state = process.initial_state(1)
        new_state, sends = process.apply(state, None)
        assert new_state.output == 1
        assert sends == (Message("p1", "ping"),)

    def test_apply_rejects_non_transition(self):
        rogue = Rogue("p0", lambda self, state: (state, ()))
        with pytest.raises(ProtocolViolation, match="Transition"):
            rogue.apply(rogue.initial_state(0), None)

    def test_apply_rejects_input_register_change(self):
        def flip_input(self, state):
            return Transition(ProcessState(1, state.output, state.data), ())

        rogue = Rogue("p0", flip_input)
        with pytest.raises(ProtocolViolation, match="read-only"):
            rogue.apply(rogue.initial_state(0), None)

    def test_apply_rejects_decision_change(self):
        def overwrite(self, state):
            return Transition(ProcessState(0, 0, state.data), ())

        rogue = Rogue("p0", overwrite)
        decided = ProcessState(0, 1, ())
        with pytest.raises(ProtocolViolation, match="write-once"):
            rogue.apply(decided, None)

    def test_apply_rejects_non_message_sends(self):
        rogue = Rogue(
            "p0",
            lambda self, state: Transition(state, ("not a message",)),
        )
        with pytest.raises(ProtocolViolation, match="Message"):
            rogue.apply(rogue.initial_state(0), None)

    def test_broadcast_builds_one_message_per_destination(self):
        sends = Process.broadcast(["p1", "p2"], "hi")
        assert sends == (Message("p1", "hi"), Message("p2", "hi"))

    def test_stay_is_a_noop(self):
        state = ProcessState(0, UNDECIDED, ())
        assert Process.stay(state) == Transition(state, ())

    def test_determinism_spot_check(self):
        process = EchoOnce("p0")
        state = process.initial_state(0)
        assert process.apply(state, None) == process.apply(state, None)
