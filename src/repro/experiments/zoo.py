"""Shared protocol instances for the experiment suite.

Centralizing the instances keeps experiment tables comparable: every
experiment that says "arbiter/3" means exactly the same protocol object
shape, and the quick/full switch scales N in one place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.protocol import Protocol
from repro.protocols import (
    ArbiterProcess,
    BenOrProcess,
    InitiallyDeadProcess,
    InputEchoProcess,
    ParityArbiterProcess,
    QuorumVoteProcess,
    ThreePhaseCommitProcess,
    TwoPhaseCommitProcess,
    WaitForAllProcess,
    make_protocol,
)

__all__ = [
    "safe_zoo",
    "bivalent_zoo",
    "broken_zoo",
    "commit_zoo",
    "symmetric_zoo",
    "SymmetricInstance",
]


def safe_zoo(quick: bool = True) -> list[tuple[str, Protocol]]:
    """Partially correct asynchronous protocols — Theorem 1's subjects."""
    members = [
        ("arbiter/3", make_protocol(ArbiterProcess, 3)),
        ("parity-arbiter/3", make_protocol(ParityArbiterProcess, 3)),
        ("wait-for-all/3", make_protocol(WaitForAllProcess, 3)),
        ("2pc/3", make_protocol(TwoPhaseCommitProcess, 3)),
        ("3pc/3", make_protocol(ThreePhaseCommitProcess, 3)),
    ]
    if not quick:
        members.extend(
            [
                ("arbiter/4", make_protocol(ArbiterProcess, 4)),
                ("2pc/4", make_protocol(TwoPhaseCommitProcess, 4)),
                # Theorem 2's own protocol is finite-state at N=3 and,
                # like everything else, falls to Theorem 1: its stage-1
                # hearing order makes initial configurations bivalent,
                # and the fault mode is exactly a "death during
                # execution", which Section 4's hypotheses exclude.
                (
                    "initially-dead/3",
                    make_protocol(InitiallyDeadProcess, 3),
                ),
            ]
        )
    return members


def bivalent_zoo(quick: bool = True) -> list[tuple[str, Protocol]]:
    """Safe protocols that actually have bivalent initial configurations
    (order-sensitive decisions) — Lemma 3's subjects."""
    members = [
        ("arbiter/3", make_protocol(ArbiterProcess, 3)),
        ("parity-arbiter/3", make_protocol(ParityArbiterProcess, 3)),
    ]
    if not quick:
        members.extend(
            [
                ("arbiter/4", make_protocol(ArbiterProcess, 4)),
                ("parity-arbiter/4", make_protocol(ParityArbiterProcess, 4)),
            ]
        )
    return members


def broken_zoo(quick: bool = True) -> list[tuple[str, Protocol]]:
    """Protocols that fail partial correctness — negative controls."""
    return [
        ("quorum-vote/3", make_protocol(QuorumVoteProcess, 3)),
        ("input-echo/2", make_protocol(InputEchoProcess, 2)),
    ]


def commit_zoo(quick: bool = True) -> list[tuple[str, Protocol]]:
    """The introduction's transaction-commit protocols."""
    n = 3 if quick else 4
    return [
        (f"2pc/{n}", make_protocol(TwoPhaseCommitProcess, n)),
        (f"3pc/{n}", make_protocol(ThreePhaseCommitProcess, n)),
    ]


@dataclass(frozen=True)
class SymmetricInstance:
    """A fully symmetric zoo member, sized for quotient exploration.

    ``depth_horizon`` is the BFS ``max_levels`` bound that keeps a
    *reduced* (``--symmetry``, optionally ``--por``) exploration inside
    tier-1 test time on one core.  ``bench_only_unreduced`` marks the
    rosters whose *unreduced* graph at that horizon is benchmark
    territory — tests must not explore those without a reduction.
    """

    label: str
    protocol: Protocol
    depth_horizon: int
    bench_only_unreduced: bool = False


def symmetric_zoo(quick: bool = True) -> list[SymmetricInstance]:
    """Protocols whose automata declare ``symmetric = True``.

    The n=3 members are small enough to explore unreduced (that is what
    the composed-reduction identity tests compare against).  The n=5
    members are why the quotient exists: their state spaces put the
    brute n! canonicalizer (120 renamings per configuration) and the
    unreduced graph out of test budgets, so tests run them reduced-only
    at the recorded horizons and ``bench_por`` owns the unreduced
    baselines.  Ben-Or appears in its ``coin="round"`` variant — the
    shared per-round coin removes the private tape's name dependence,
    which is the one asymmetry in the classic protocol.
    """
    members = [
        SymmetricInstance(
            "wait-for-all/3", make_protocol(WaitForAllProcess, 3), 12
        ),
        SymmetricInstance(
            "quorum-vote/3", make_protocol(QuorumVoteProcess, 3), 12
        ),
        SymmetricInstance(
            "benor/3",
            make_protocol(BenOrProcess, 3, coin="round"),
            6,
        ),
    ]
    if not quick:
        members.extend(
            [
                SymmetricInstance(
                    "wait-for-all/5",
                    make_protocol(WaitForAllProcess, 5),
                    6,
                    bench_only_unreduced=True,
                ),
                SymmetricInstance(
                    "quorum-vote/5",
                    make_protocol(QuorumVoteProcess, 5),
                    5,
                    bench_only_unreduced=True,
                ),
                SymmetricInstance(
                    "benor/5",
                    make_protocol(BenOrProcess, 5, coin="round"),
                    5,
                    bench_only_unreduced=True,
                ),
            ]
        )
    return members
