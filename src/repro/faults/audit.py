"""Admissibility auditor for fault-injected runs.

Section 2 of the paper defines the runs the impossibility theorem
quantifies over: *admissible* runs have at most one faulty process, and
every message sent to a nonfaulty process is eventually received.  The
fault engine can produce runs well outside that set — that is its
point — so every injected run must carry a certificate saying whether
it stayed inside, and if not, *which clause of the definition* it
broke:

* ``multiple-faulty`` — the plan makes two or more processes take only
  finitely many steps (e.g. an initially-dead *minority*: fine for
  Section 4's Theorem 2, but outside Section 2's model);
* ``omission`` — a message to a nonfaulty process was dropped, so it is
  *never* received;
* ``crash-recovery-loss`` — a recovery inbox wipe discarded mail
  addressed to a process that is nonfaulty under the plan (it takes
  infinitely many steps, yet lost messages);
* ``duplication`` — an extra copy entered the buffer; the paper's
  system delivers each sent message at most once, so any duplication
  leaves the model;
* ``partition-unhealed`` — a never-healing partition froze a copy
  addressed to a nonfaulty process in transit forever;
* ``post-fault-step`` — the schedule shows a designated-faulty process
  stepping after its fault point (the injection itself misbehaved).

When the run contains no buffer-mutating injections, the verdict also
carries the replay-based :class:`~repro.analysis.admissibility.\
AdmissibilityReport` with its quantitative fairness debt; runs with
omission/duplication/inbox-wipe actions cannot be replayed from the
schedule alone, so the report is ``None`` and the verdict rests on the
action log.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.admissibility import (
    AdmissibilityReport,
    analyze_admissibility,
)
from repro.core.configuration import Configuration
from repro.core.events import Schedule
from repro.core.protocol import Protocol
from repro.faults.plan import FaultAction, FaultPlan

__all__ = ["FaultAuditVerdict", "audit_run", "audit_simulation"]


@dataclass(frozen=True)
class FaultAuditVerdict:
    """The certificate attached to one fault-injected run.

    Attributes
    ----------
    admissible:
        Whether the run is consistent with Section 2's definition.
    violated_clauses:
        The fairness clauses broken, in deterministic order (empty iff
        *admissible*).
    faulty:
        The processes the plan designates faulty (finitely many steps).
    report:
        Replay-based fairness accounting, when the run is replayable
        (no buffer-mutating injections); ``None`` otherwise.
    notes:
        Human-readable detail per violation.
    """

    admissible: bool
    violated_clauses: tuple[str, ...]
    faulty: frozenset[str]
    report: AdmissibilityReport | None
    notes: tuple[str, ...] = ()

    def summary(self) -> str:
        if self.admissible:
            detail = (
                self.report.summary() if self.report is not None else "ok"
            )
            return f"admissible ({detail})"
        return "inadmissible: " + ", ".join(self.violated_clauses)


def audit_run(
    protocol: Protocol,
    initial: Configuration,
    schedule: Schedule,
    plan: FaultPlan,
    fault_actions: tuple[FaultAction, ...] = (),
) -> FaultAuditVerdict:
    """Certify one run of *schedule* under *plan* against Section 2.

    *fault_actions* is the injection log produced by the engine
    (:attr:`repro.core.simulation.SimulationResult.fault_actions`); the
    verdict classifies the run from the plan's faulty set, the log, and
    — when the log contains no buffer mutations — a full replay.
    """
    faulty = plan.faulty_processes
    violated: dict[str, None] = {}
    notes: list[str] = []

    if len(faulty) > 1:
        violated["multiple-faulty"] = None
        notes.append(
            f"{len(faulty)} faulty processes: {sorted(faulty)}"
        )

    for action in fault_actions:
        destination = (
            action.message.destination if action.message is not None else None
        )
        if action.kind == "omission-drop":
            if destination not in faulty:
                violated["omission"] = None
                notes.append(
                    f"step {action.step}: dropped message to nonfaulty "
                    f"{destination}"
                )
        elif action.kind == "inbox-wipe":
            if action.process not in faulty:
                violated["crash-recovery-loss"] = None
                notes.append(
                    f"step {action.step}: recovery wiped mail of "
                    f"nonfaulty {action.process}"
                )
        elif action.kind == "duplicate":
            violated["duplication"] = None
            notes.append(
                f"step {action.step}: duplicated message to {destination}"
            )
        elif action.kind == "partition-freeze":
            if destination not in faulty:
                violated["partition-unhealed"] = None
                notes.append(
                    f"step {action.step}: unhealed partition froze "
                    f"message to nonfaulty {destination}"
                )

    report: AdmissibilityReport | None = None
    replayable = not any(
        action.kind in FaultAction.BUFFER_KINDS for action in fault_actions
    )
    if replayable:
        report = analyze_admissibility(
            protocol,
            initial,
            schedule,
            faulty=faulty,
            fault_point=plan.fault_point(),
        )
        if report.violations:
            violated["post-fault-step"] = None
            notes.extend(report.violations)

    clauses = tuple(violated)
    return FaultAuditVerdict(
        admissible=not clauses,
        violated_clauses=clauses,
        faulty=faulty,
        report=report,
        notes=tuple(notes),
    )


def audit_simulation(
    protocol: Protocol,
    initial: Configuration,
    result,
    plan: FaultPlan,
) -> FaultAuditVerdict:
    """Certify a :class:`~repro.core.simulation.SimulationResult`."""
    return audit_run(
        protocol,
        initial,
        result.schedule,
        plan,
        fault_actions=tuple(result.fault_actions),
    )
