"""Space-time (Lamport) diagrams for runs.

Renders a run as the classic distributed-systems picture: one column
per process, time flowing downward, each row one event — null steps,
deliveries (annotated with the message value and the send step it came
from), sends, and decisions.  Used by the examples and invaluable when
staring at an adversary schedule trying to see *why* nobody decides.

The renderer tracks message identity the same way the admissibility
accountant does: FIFO per (value, destination), which matches the
model's delivery nondeterminism up to permutation of identical copies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import Configuration
from repro.core.events import Event, Schedule
from repro.core.protocol import Protocol

__all__ = ["SpacetimeEvent", "spacetime_diagram"]


@dataclass(frozen=True)
class SpacetimeEvent:
    """One row of the diagram, fully resolved."""

    index: int
    process: str
    kind: str  # "null" | "recv"
    value: object | None
    sent_at: int | None
    sends: tuple[tuple[str, object], ...]
    decided: int | None


def _resolve_events(
    protocol: Protocol, initial: Configuration, schedule: Schedule
) -> list[SpacetimeEvent]:
    pending: list[tuple[str, object, int]] = [
        (message.destination, message.value, -1)
        for message in initial.buffer
    ]
    configuration = initial
    decided_before = {
        name for name, state in initial.states() if state.decided
    }
    rows: list[SpacetimeEvent] = []
    for index, event in enumerate(schedule):
        sent_at: int | None = None
        if not event.is_null_delivery:
            for position, (dest, value, origin) in enumerate(pending):
                if dest == event.process and value == event.value:
                    sent_at = origin
                    del pending[position]
                    break
        state = configuration.state_of(event.process)
        transition = protocol.process(event.process).apply(
            state, event.value
        )
        configuration = protocol.apply_event(configuration, event)
        for message in transition.sends:
            pending.append((message.destination, message.value, index))
        decided = None
        if (
            transition.state.decided
            and event.process not in decided_before
        ):
            decided = transition.state.output
            decided_before.add(event.process)
        rows.append(
            SpacetimeEvent(
                index=index,
                process=event.process,
                kind="null" if event.is_null_delivery else "recv",
                value=None if event.is_null_delivery else event.value,
                sent_at=sent_at,
                sends=tuple(
                    (message.destination, message.value)
                    for message in transition.sends
                ),
                decided=decided,
            )
        )
    return rows


def spacetime_diagram(
    protocol: Protocol,
    initial: Configuration,
    schedule: Schedule,
    max_rows: int | None = None,
    column_width: int | None = None,
) -> str:
    """Render *schedule* from *initial* as an ASCII space-time diagram.

    Each process owns a column; each event is a row in its column:

    * ``·`` — null step;
    * ``◁ value (from #k)`` — delivery of a message sent at step k
      (``#-`` for messages already buffered in the initial
      configuration);
    * ``▷ dest:value`` — message(s) sent by this step;
    * ``★ DECIDES v`` — the step set the output register.
    """
    rows = _resolve_events(protocol, initial, schedule)
    names = protocol.process_names
    column = {name: position for position, name in enumerate(names)}

    def describe(row: SpacetimeEvent) -> str:
        parts: list[str] = []
        if row.kind == "null":
            parts.append("·")
        else:
            origin = "#-" if row.sent_at == -1 else f"#{row.sent_at}"
            parts.append(f"◁{row.value!r}({origin})")
        for dest, value in row.sends:
            parts.append(f"▷{dest}:{value!r}")
        if row.decided is not None:
            parts.append(f"★DECIDES {row.decided}")
        return " ".join(parts)

    shown = rows if max_rows is None else rows[:max_rows]
    # Column width adapts to the widest cell unless pinned by the caller.
    if column_width is None:
        widest = max(
            (len(describe(row)) for row in shown), default=8
        )
        column_width = max(widest + 2, 10)

    def pad(text: str) -> str:
        return text[:column_width].ljust(column_width)

    header = "step  " + "".join(pad(name) for name in names)
    lines = [header, "      " + "".join(pad("│") for _ in names)]
    for row in shown:
        cells = ["│"] * len(names)
        cells[column[row.process]] = describe(row)
        lines.append(
            f"{row.index:4d}  " + "".join(pad(cell) for cell in cells)
        )
    if max_rows is not None and len(rows) > max_rows:
        lines.append(f"      ... {len(rows) - max_rows} more steps")
    decisions = [
        (row.process, row.decided) for row in rows if row.decided is not None
    ]
    lines.append(
        "      decisions: "
        + (
            ", ".join(f"{name}={value}" for name, value in decisions)
            if decisions
            else "none — nobody ever decided"
        )
    )
    return "\n".join(lines)
