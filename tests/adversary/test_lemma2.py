"""Tests for the executable Lemma 2 checker."""

from repro.adversary.lemmas import find_lemma2
from repro.core.valency import Valency, ValencyAnalyzer
from repro.protocols import (
    AlwaysZeroProcess,
    InputEchoProcess,
    make_protocol,
)


class TestBivalentInitials:
    def test_arbiter_has_bivalent_initial(self, arbiter3, arbiter3_analyzer):
        result = find_lemma2(arbiter3, arbiter3_analyzer)
        assert result.certificate is not None
        assert result.certificate.verify(arbiter3)
        vector = arbiter3.input_vector(result.certificate.bivalent_initial)
        # The proposers (p1, p2) must disagree for bivalence.
        assert vector[1] != vector[2]

    def test_parity_arbiter_has_bivalent_initial(
        self, parity_arbiter3, parity_arbiter3_analyzer
    ):
        result = find_lemma2(parity_arbiter3, parity_arbiter3_analyzer)
        assert result.certificate is not None
        assert result.certificate.verify(parity_arbiter3)

    def test_classification_covers_all_initials(
        self, arbiter3, arbiter3_analyzer
    ):
        result = find_lemma2(arbiter3, arbiter3_analyzer)
        assert len(result.classification) == 8
        census = list(result.classification.values())
        assert census.count(Valency.BIVALENT) == 4


class TestBoundary:
    def test_wait_for_all_has_boundary_not_bivalence(
        self, wait_for_all3, wait_for_all3_analyzer
    ):
        result = find_lemma2(wait_for_all3, wait_for_all3_analyzer)
        assert result.certificate is None
        assert result.boundary is not None
        zero, one, process = result.boundary
        assert (
            wait_for_all3_analyzer.valency(zero) is Valency.ZERO_VALENT
        )
        assert wait_for_all3_analyzer.valency(one) is Valency.ONE_VALENT
        # The two initial configurations differ exactly at `process`.
        zero_vec = wait_for_all3.input_vector(zero)
        one_vec = wait_for_all3.input_vector(one)
        diffs = [
            name
            for name, a, b in zip(
                wait_for_all3.process_names, zero_vec, one_vec
            )
            if a != b
        ]
        assert diffs == [process]

    def test_boundary_orientation(self, two_pc3):
        analyzer = ValencyAnalyzer(two_pc3)
        result = find_lemma2(two_pc3, analyzer)
        zero, one, _ = result.boundary
        # 2PC commits (decides 1) iff all inputs are 1.
        assert two_pc3.input_vector(one) == (1, 1, 1)
        assert sum(two_pc3.input_vector(zero)) == 2


class TestDegenerateProtocols:
    def test_always_zero_has_no_lemma2_objects(self):
        protocol = make_protocol(AlwaysZeroProcess, 2)
        analyzer = ValencyAnalyzer(protocol)
        result = find_lemma2(protocol, analyzer)
        assert result.certificate is None
        assert result.boundary is None  # no 1-valent initial exists
        assert result.none_valent is None
        assert all(
            valency is Valency.ZERO_VALENT
            for valency in result.classification.values()
        )

    def test_input_echo_counts_as_bivalent(self):
        # InputEcho violates agreement, so mixed-input initials reach
        # configurations with decision values {0} and {1}: V = {0, 1}.
        # Lemma 2 machinery reports them as bivalent — correctly, since
        # bivalence is defined via V, not via safety.
        protocol = make_protocol(InputEchoProcess, 2)
        analyzer = ValencyAnalyzer(protocol)
        result = find_lemma2(protocol, analyzer)
        assert result.certificate is not None
