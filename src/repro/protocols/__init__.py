"""The protocol zoo: consensus attempts, Theorem 2, and escape hatches.

Asynchronous-model protocols (subject to Theorem 1):

* :class:`~repro.protocols.trivial.AlwaysZeroProcess`,
  :class:`~repro.protocols.trivial.InputEchoProcess` — negative controls
  that fail partial correctness.
* :class:`~repro.protocols.voting.WaitForAllProcess` — safe voting that a
  single crash stalls.
* :class:`~repro.protocols.voting.QuorumVoteProcess` — live voting that
  violates agreement.
* :class:`~repro.protocols.arbiter.ArbiterProcess` — order-sensitive,
  safe, with genuinely bivalent initial configurations.
* :class:`~repro.protocols.two_phase_commit.TwoPhaseCommitProcess`,
  :class:`~repro.protocols.three_phase_commit.ThreePhaseCommitProcess` —
  the introduction's transaction-commit problem.
* :class:`~repro.protocols.initially_dead.InitiallyDeadProcess` —
  Section 4's Theorem 2 protocol.
* :class:`~repro.protocols.benor.BenOrProcess` — randomized consensus
  (conclusion, reference [2]).

Synchronous-model contrast:

* :class:`~repro.protocols.floodset.FloodSetProcess` — crash-tolerant
  consensus in f+1 rounds, on the
  :mod:`repro.synchrony.rounds` executor.
"""

from repro.protocols.arbiter import ArbiterProcess
from repro.protocols.base import ConsensusProcess, default_names, make_protocol
from repro.protocols.parity_arbiter import ParityArbiterProcess
from repro.protocols.benor import BenOrProcess
from repro.protocols.common_coin import CommonCoinProcess
from repro.protocols.floodset import FloodSetProcess
from repro.protocols.initially_dead import InitiallyDeadProcess
from repro.protocols.phase_king import ByzantineProcess, PhaseKingProcess
from repro.protocols.three_phase_commit import ThreePhaseCommitProcess
from repro.protocols.timeout_arbiter import TimeoutArbiterProcess
from repro.protocols.trivial import AlwaysZeroProcess, InputEchoProcess
from repro.protocols.two_phase_commit import TwoPhaseCommitProcess
from repro.protocols.voting import QuorumVoteProcess, WaitForAllProcess, tally

__all__ = [
    "ArbiterProcess",
    "ConsensusProcess",
    "default_names",
    "make_protocol",
    "BenOrProcess",
    "CommonCoinProcess",
    "FloodSetProcess",
    "InitiallyDeadProcess",
    "ByzantineProcess",
    "PhaseKingProcess",
    "ThreePhaseCommitProcess",
    "TimeoutArbiterProcess",
    "AlwaysZeroProcess",
    "InputEchoProcess",
    "ParityArbiterProcess",
    "TwoPhaseCommitProcess",
    "QuorumVoteProcess",
    "WaitForAllProcess",
    "tally",
]
