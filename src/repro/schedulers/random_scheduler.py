"""Uniformly random scheduling with seeded determinism.

Models a benign but unpredictable asynchronous environment: at each step
a uniformly random live process takes a step and receives either a
uniformly random pending message or (with configurable probability) the
null marker.  All randomness flows through one seeded ``random.Random``
so every run is reproducible from its seed.
"""

from __future__ import annotations

import random

from repro.core.configuration import Configuration
from repro.core.events import NULL, Event
from repro.core.protocol import Protocol
from repro.schedulers.base import CrashPlan, Scheduler

__all__ = ["RandomScheduler"]


class RandomScheduler(Scheduler):
    """Pick a random live process; deliver a random pending message.

    Parameters
    ----------
    seed:
        Seed for the internal PRNG.
    null_probability:
        Chance that a scheduled process receives the null marker even
        though messages are pending (the message system "is allowed to
        return ∅ a finite number of times").  When a process has no
        pending messages it always receives null.
    crash_plan:
        Optional crash-fault schedule; crashed processes are never
        scheduled again.
    """

    def __init__(
        self,
        seed: int = 0,
        null_probability: float = 0.1,
        crash_plan: CrashPlan | None = None,
    ):
        super().__init__(crash_plan)
        if not 0.0 <= null_probability < 1.0:
            raise ValueError(
                f"null_probability must be in [0, 1), got {null_probability}"
            )
        self._seed = seed
        self._null_probability = null_probability
        self._rng = random.Random(seed)

    def next_event(
        self,
        protocol: Protocol,
        configuration: Configuration,
        step_index: int,
    ) -> Event | None:
        live = self.crash_plan.live_at(protocol.process_names, step_index)
        if not live:
            return None
        process = self._rng.choice(live)
        pending = configuration.buffer.messages_for(process)
        if not pending or self._rng.random() < self._null_probability:
            return Event(process, NULL)
        message = self._rng.choice(pending)
        return Event(process, message.value)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
