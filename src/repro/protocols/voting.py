"""Broadcast-voting consensus attempts.

Two variants of the obvious protocol — "everyone broadcasts their vote,
then applies a deterministic rule":

* :class:`WaitForAllProcess` waits for all N votes.  It is partially
  correct (everyone who decides has seen the same full vote multiset),
  but a single crash leaves every other process waiting forever: the
  canonical liveness casualty of Theorem 1.
* :class:`QuorumVoteProcess` decides after a quorum of votes.  It is
  live with up to ``N - quorum`` crashes but *unsafe*: two processes can
  observe different quorums and decide differently.  It is the zoo's
  negative control for agreement (partial-correctness condition 1).

Together they illustrate the trade-off the theorem makes unavoidable:
with binary voting you can have safety or crash-liveness, not both.

Message universe: ``("vote", sender, value)``.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.process import ProcessState, Transition
from repro.protocols.base import ConsensusProcess

__all__ = ["WaitForAllProcess", "QuorumVoteProcess", "tally"]


def tally(votes: frozenset[tuple[str, int]]) -> int:
    """Deterministic decision rule: majority value, ties broken to 1."""
    ones = sum(1 for _, value in votes if value == 1)
    zeros = len(votes) - ones
    return 1 if ones >= zeros else 0


class _VotingProcess(ConsensusProcess):
    """Shared mechanics: broadcast once, collect votes, decide at a
    threshold.  Subclasses fix the threshold."""

    #: Identical automata, and every name the state mentions lives in
    #: renameable positions (the ``(sender, value)`` vote pairs and the
    #: ``("vote", sender, value)`` message tuples) — validated by the
    #: automorphism check before the symmetry quotient trusts it.
    symmetric = True

    #: Number of votes (including one's own) required before deciding.
    def _threshold(self) -> int:
        raise NotImplementedError

    def initial_data(self, input_value: int) -> Hashable:
        # (has_broadcast, votes collected so far)
        return (False, frozenset())

    def step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        broadcast_done, votes = state.data
        sends: tuple = ()

        if not broadcast_done:
            # First step: atomically broadcast own vote to everyone else
            # and record it locally.
            sends = self.broadcast(
                self.others, ("vote", self.name, state.input)
            )
            votes = votes | {(self.name, state.input)}
            broadcast_done = True

        if (
            message_value is not None
            and isinstance(message_value, tuple)
            and message_value[0] == "vote"
        ):
            _, sender, value = message_value
            votes = votes | {(sender, value)}

        new_state = state.with_data((broadcast_done, votes))
        if not new_state.decided and len(votes) >= self._threshold():
            new_state = new_state.with_decision(tally(votes))
        return Transition(new_state, sends)


class WaitForAllProcess(_VotingProcess):
    """Vote, then wait for all N votes; decide the majority (ties → 1).

    Partially correct: any process that decides has the full vote set, so
    all deciders compute the same tally, and all-0 / all-1 inputs reach
    both decision values.  Every initial configuration is *univalent*
    (the decision is a function of the inputs alone), so the FLP
    adversary defeats it in fault mode: silencing any single process at
    the Lemma-2 adjacency boundary yields an admissible run in which
    nobody ever decides.
    """

    def _threshold(self) -> int:
        return self.n


class QuorumVoteProcess(_VotingProcess):
    """Vote, then decide on the majority of the first *quorum* votes seen.

    Parameters
    ----------
    quorum:
        Votes needed before deciding; defaults to a strict majority.

    Unsafe by design: with N = 3 and inputs (0, 0, 1), one process can
    collect quorum {0, 0} and decide 0 while another collects {0, 1} and
    decides 1.  :func:`repro.core.correctness.check_partial_correctness`
    must find the disagreement witness.
    """

    def __init__(self, name: str, peers, quorum: int | None = None):
        super().__init__(name, peers)
        self.quorum = quorum if quorum is not None else self.majority
        if not 1 <= self.quorum <= self.n:
            raise ValueError(
                f"quorum must be in [1, {self.n}], got {self.quorum}"
            )

    def _threshold(self) -> int:
        return self.quorum
