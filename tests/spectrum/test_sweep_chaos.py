"""Sweep-kill chaos: SIGKILL mid-grid, resume, byte-identical answer."""

from repro.core.resilience import CHAOS_SCENARIOS
from repro.spectrum.chaos import run_sweep_kill


class TestScenarioRegistration:
    def test_sweep_kill_is_a_chaos_scenario(self):
        assert "sweep-kill" in CHAOS_SCENARIOS


class TestSweepKill:
    def test_killed_sweep_resumes_identically(self, tmp_path):
        outcome = run_sweep_kill(
            work_dir=str(tmp_path), throttle_s=0.4
        )
        assert outcome.scenario == "sweep-kill"
        assert outcome.recovered
        assert outcome.fingerprint_match
        # The kill really landed mid-grid and the rerun really resumed
        # rather than recomputing from scratch.
        assert outcome.stats["mid_grid"] is True
        assert outcome.stats["killed_at_cell"] >= 1
        assert outcome.stats["resumed_cells"] >= 1
