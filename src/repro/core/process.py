"""Processes as deterministic automata (paper, Section 2).

Each process ``p`` has a one-bit input register ``x_p``, a write-once
output register ``y_p`` with values in ``{b, 0, 1}`` (``b`` rendered here
as :data:`~repro.core.values.UNDECIDED`), and internal storage.  The whole
of it — input, output, and internal storage — is the process's *internal
state*, modeled by the immutable :class:`ProcessState`.

A process acts deterministically according to a transition function: in
one atomic step it attempts to receive a message, performs local
computation on the basis of whether (and which) message arrived, and
sends a finite set of messages to other processes.  Concrete protocols
subclass :class:`Process` and implement :meth:`Process.step`.

The model requires the state space to be hashable (so configurations can
be compared and memoized) but places no finiteness restriction — the
paper allows "possibly infinitely many states".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Iterable, NamedTuple

from repro.core.errors import ProtocolViolation
from repro.core.messages import Message
from repro.core.values import UNDECIDED, is_decision_value, is_input_value

__all__ = ["ProcessState", "Transition", "Process"]


class ProcessState:
    """Immutable snapshot of one process's internal state.

    Attributes
    ----------
    input:
        The initial value in the input register ``x_p`` (0 or 1).  Fixed
        for the lifetime of the process.
    output:
        The output register ``y_p``: :data:`UNDECIDED` until the process
        decides, then 0 or 1, forever (write-once; enforced by
        :meth:`Process.apply`).
    data:
        Protocol-specific internal storage.  Must be hashable; protocols
        typically use tuples, frozensets, or frozen dataclasses.
    """

    __slots__ = ("input", "output", "data", "_hash")

    def __init__(self, input: int, output: int | None, data: Hashable):
        if not is_input_value(input):
            raise ValueError(f"input register must be 0 or 1, got {input!r}")
        if output is not UNDECIDED and not is_decision_value(output):
            raise ValueError(
                f"output register must be UNDECIDED, 0 or 1, got {output!r}"
            )
        object.__setattr__(self, "input", input)
        object.__setattr__(self, "output", output)
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "_hash", hash((input, output, data)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ProcessState is immutable")

    @property
    def decided(self) -> bool:
        """``True`` iff this is a decision state (output register set)."""
        return self.output is not UNDECIDED

    def with_data(self, data: Hashable) -> "ProcessState":
        """Copy of this state with new internal storage."""
        return ProcessState(self.input, self.output, data)

    def with_decision(self, value: int) -> "ProcessState":
        """Copy of this state with the output register set to *value*.

        Setting the same value twice is a no-op; changing a decision is a
        :class:`ProtocolViolation` (the register is write-once).
        """
        if self.decided:
            if self.output == value:
                return self
            raise ProtocolViolation(
                f"output register is write-once: already {self.output}, "
                f"cannot set {value}"
            )
        if not is_decision_value(value):
            raise ValueError(f"decision must be 0 or 1, got {value!r}")
        return ProcessState(self.input, value, self.data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProcessState):
            return NotImplemented
        return (
            self.input == other.input
            and self.output == other.output
            and self.data == other.data
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Reconstruct through __init__: the frozen ``__setattr__`` rejects
        # slot-wise unpickling, and the cached hash must be recomputed in
        # the receiving process (string hashes are per-PYTHONHASHSEED).
        return (ProcessState, (self.input, self.output, self.data))

    def __repr__(self) -> str:
        out = "b" if self.output is UNDECIDED else self.output
        return f"ProcessState(x={self.input}, y={out}, data={self.data!r})"


class Transition(NamedTuple):
    """Result of one atomic step: the new state and the messages sent."""

    state: ProcessState
    sends: tuple[Message, ...]


class Process(ABC):
    """A deterministic process automaton.

    Subclasses implement :meth:`initial_data` and :meth:`step`.  The
    framework calls :meth:`apply`, which wraps :meth:`step` with the
    structural checks of the model (write-once output register, no
    self-renaming, finite send set).

    Parameters
    ----------
    name:
        The process's name, unique within its protocol.
    """

    #: Declare ``True`` on subclasses whose behaviour is invariant under
    #: process renaming (identical automata, no name-keyed branching such
    #: as per-name coin tapes).  The declaration is a *claim*, consumed
    #: and validated by the symmetry quotient
    #: (:mod:`repro.core.reduction`): protocols that never declare it are
    #: refused under ``--symmetry``, declared-but-false claims fail the
    #: automorphism check and fall back with a warning.
    symmetric = False

    def __init__(self, name: str):
        self.name = name

    # -- hooks for subclasses ------------------------------------------------

    @abstractmethod
    def initial_data(self, input_value: int) -> Hashable:
        """Initial internal storage, given the input-register value.

        The paper's initial states "prescribe fixed starting values for
        all but the input register", so everything except ``input_value``
        must be a deterministic function of the protocol parameters.
        """

    @abstractmethod
    def step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        """The transition function.

        Called with the current state and the value of the delivered
        message, or ``None`` for a null delivery (the ``receive`` returned
        the empty marker).  Must be deterministic and must return a
        :class:`Transition`.  Use :meth:`send_to` to construct outgoing
        messages and :meth:`ProcessState.with_decision` to decide.
        """

    # -- framework API ---------------------------------------------------------

    def initial_state(self, input_value: int) -> ProcessState:
        """The process's initial state for the given input value."""
        return ProcessState(
            input_value, UNDECIDED, self.initial_data(input_value)
        )

    def apply(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        """Run one step with the model's structural rules enforced.

        Raises
        ------
        ProtocolViolation
            If the step changed a decided output register, altered the
            input register, or returned malformed results.
        """
        transition = self.step(state, message_value)
        if not isinstance(transition, Transition):
            raise ProtocolViolation(
                f"process {self.name}: step() must return a Transition, "
                f"got {type(transition).__name__}"
            )
        new_state, sends = transition
        if new_state.input != state.input:
            raise ProtocolViolation(
                f"process {self.name}: input register is read-only"
            )
        if state.decided and new_state.output != state.output:
            raise ProtocolViolation(
                f"process {self.name}: output register is write-once "
                f"({state.output} -> {new_state.output})"
            )
        for message in sends:
            if not isinstance(message, Message):
                raise ProtocolViolation(
                    f"process {self.name}: sends must be Message instances"
                )
        return transition

    # -- helpers for subclasses -------------------------------------------------

    @staticmethod
    def send_to(destination: str, value: Hashable) -> Message:
        """Construct an outgoing message ``(destination, value)``."""
        return Message(destination, value)

    @staticmethod
    def broadcast(
        destinations: Iterable[str], value: Hashable
    ) -> tuple[Message, ...]:
        """Construct the paper's atomic broadcast: one message per
        destination, all placed in the buffer in a single step."""
        return tuple(Message(d, value) for d in destinations)

    @staticmethod
    def stay(state: ProcessState) -> Transition:
        """A no-op transition: keep the state, send nothing."""
        return Transition(state, ())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
