"""Adversary-graded Monte-Carlo resilience workbench.

The paper's conclusion names the escape hatches from asynchronous
impossibility — randomization and partial synchrony — and Aspnes'
survey frames the cost of randomized consensus as a function of
*adversary strength*.  This subpackage charts that terrain empirically:
a Monte-Carlo runtime runs thousands of seeded simulations per grid
cell over (protocol, n, f, adversary grade, GST, detector class) and
reports termination probability and expected rounds-to-decide with
confidence intervals.

* :mod:`repro.spectrum.adversary` — the graded message adversaries
  (oblivious, content-aware, adaptive full-information), driven by the
  :mod:`repro.faults` clause algebra;
* :mod:`repro.spectrum.protocols` — phased Ben-Or, the randomized
  escape hatch, runnable under the same executor as the DLS rotating
  coordinator;
* :mod:`repro.spectrum.montecarlo` — the sweep runtime: grid cells,
  per-cell checkpointing, parallel fan-out, budget degradation, and
  the phase-boundary expectations the benchmark gates;
* :mod:`repro.spectrum.chaos` — the ``sweep-kill`` chaos scenario
  (SIGKILL a sweep mid-grid, resume fingerprint-identically).
"""

from repro.spectrum.adversary import (
    ADVERSARY_GRADES,
    AdaptiveAdversary,
    ContentAwareAdversary,
    GradedAdversary,
    ObliviousAdversary,
    make_adversary,
)
from repro.spectrum.montecarlo import (
    CellOutcome,
    SpectrumCell,
    SweepResult,
    SweepRunner,
    check_phase_expectations,
    default_grid,
    run_cell,
    smoke_grid,
)
from repro.spectrum.protocols import BenOrPhasedProcess

__all__ = [
    "ADVERSARY_GRADES",
    "AdaptiveAdversary",
    "ContentAwareAdversary",
    "GradedAdversary",
    "ObliviousAdversary",
    "make_adversary",
    "BenOrPhasedProcess",
    "CellOutcome",
    "SpectrumCell",
    "SweepResult",
    "SweepRunner",
    "check_phase_expectations",
    "default_grid",
    "run_cell",
    "smoke_grid",
]
