"""Bench E3 — Lemma 3 / Figures 2-3 (bivalent-successor search).

Regenerates the E3 table and micro-benchmarks one search, for both the
success (parity arbiter) and Case-2-failure (plain arbiter) paths.
"""

import pytest

from repro.adversary.lemmas import find_bivalent_successor
from repro.core.events import NULL, Event
from repro.core.valency import ValencyAnalyzer
from repro.protocols import (
    ArbiterProcess,
    ParityArbiterProcess,
    make_protocol,
)


def test_e3_table(benchmark, run_and_render):
    result = run_and_render(benchmark, "E3")
    for row in result.rows:
        assert (
            row["immediate"] + row["deferred"] + row["case2_failures"]
            == row["searches"]
        )


@pytest.fixture(scope="module")
def warm_parity():
    protocol = make_protocol(ParityArbiterProcess, 3)
    analyzer = ValencyAnalyzer(protocol)
    config = protocol.initial_configuration([0, 0, 1])
    config = protocol.apply_event(config, Event("p1", NULL))
    config = protocol.apply_event(config, Event("p2", NULL))
    analyzer.valency(config)  # warm the cache
    return protocol, analyzer, config


def test_search_success_path(benchmark, warm_parity):
    protocol, analyzer, config = warm_parity
    claim = Event("p0", ("claim", "p1", 0, 0))

    def search():
        return find_bivalent_successor(protocol, analyzer, config, claim)

    outcome = benchmark(search)
    assert outcome.found


def test_search_failure_path(benchmark):
    protocol = make_protocol(ArbiterProcess, 3)
    analyzer = ValencyAnalyzer(protocol)
    config = protocol.initial_configuration([0, 0, 1])
    config = protocol.apply_event(config, Event("p1", NULL))
    analyzer.valency(config)
    claim = Event("p0", ("claim", "p1", 0))

    def search():
        return find_bivalent_successor(protocol, analyzer, config, claim)

    outcome = benchmark(search)
    assert outcome.failure is not None
