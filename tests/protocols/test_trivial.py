"""Tests for the degenerate negative-control protocols."""

from repro.core.simulation import StopCondition, simulate
from repro.protocols import AlwaysZeroProcess, InputEchoProcess, make_protocol
from repro.schedulers import RoundRobinScheduler


class TestAlwaysZero:
    def test_everyone_decides_zero_immediately(self):
        protocol = make_protocol(AlwaysZeroProcess, 3)
        result = simulate(
            protocol,
            protocol.initial_configuration([1, 1, 1]),
            RoundRobinScheduler(),
            max_steps=10,
        )
        assert result.decided
        assert result.decision_values == frozenset({0})
        assert result.steps == 3  # one step each

    def test_decision_ignores_inputs(self):
        protocol = make_protocol(AlwaysZeroProcess, 2)
        for inputs in ([0, 0], [0, 1], [1, 1]):
            result = simulate(
                protocol,
                protocol.initial_configuration(inputs),
                RoundRobinScheduler(),
                max_steps=10,
            )
            assert result.decision_values == frozenset({0})

    def test_no_messages_ever_sent(self):
        protocol = make_protocol(AlwaysZeroProcess, 2)
        result = simulate(
            protocol,
            protocol.initial_configuration([1, 0]),
            RoundRobinScheduler(),
            max_steps=10,
            stop=StopCondition.ALL_DECIDED,
        )
        assert len(result.final_configuration.buffer) == 0


class TestInputEcho:
    def test_mixed_inputs_disagree(self):
        protocol = make_protocol(InputEchoProcess, 2)
        result = simulate(
            protocol,
            protocol.initial_configuration([0, 1]),
            RoundRobinScheduler(),
            max_steps=10,
        )
        assert result.decisions == {"p0": 0, "p1": 1}
        assert not result.agreement_holds

    def test_uniform_inputs_agree_by_luck(self):
        protocol = make_protocol(InputEchoProcess, 2)
        result = simulate(
            protocol,
            protocol.initial_configuration([1, 1]),
            RoundRobinScheduler(),
            max_steps=10,
        )
        assert result.agreement_holds
        assert result.decision_values == frozenset({1})
