"""Integration: Theorem 1's adversary defeats Theorem 2's own protocol.

Section 4's protocol is partially correct and totally *usable* when all
failures are initial — but it is not totally correct in spite of one
fault, and Theorem 1 says no protocol is.  This test runs the adversary
against the initially-dead-processes protocol at N=3 (where its
reachable graph is finite) and checks the collision plays out exactly
as the two theorems predict:

* the protocol HAS bivalent initial configurations — its decision
  depends on the stage-1 hearing order, not just the inputs;
* the staged construction makes progress, then hits a serialization
  point and exits through fault mode;
* the silenced process is a mid-protocol death — precisely the failure
  Section 4's hypotheses ("no processes die during its execution")
  exclude, observed here being *necessary*.
"""

import pytest

from repro.adversary.certificates import AdversaryMode
from repro.adversary.flp import FLPAdversary
from repro.protocols import InitiallyDeadProcess, make_protocol


@pytest.fixture(scope="module")
def collision():
    protocol = make_protocol(InitiallyDeadProcess, 3)
    adversary = FLPAdversary(protocol)
    certificate = adversary.build_run(stages=10)
    return protocol, adversary, certificate


class TestTheoremsCollide:
    def test_theorem2_protocol_has_bivalent_initials(self, collision):
        _protocol, adversary, _certificate = collision
        lemma2 = adversary.last_lemma2
        assert lemma2 is not None
        assert lemma2.certificate is not None  # bivalent initial exists

    def test_adversary_wins_via_fault_mode(self, collision):
        _protocol, _adversary, certificate = collision
        assert certificate.mode is AdversaryMode.FAULT
        assert certificate.faulty_process is not None
        assert len(certificate.stages) >= 1  # staged progress first

    def test_certificate_verifies(self, collision):
        protocol, _adversary, certificate = collision
        assert certificate.verify(protocol)

    def test_hypercube_census(self, collision):
        """Uniform inputs are univalent (validity pins the outcome);
        mixed inputs are bivalent (the stage-1 hearing order decides
        who is in the initial clique)."""
        from repro.core.valency import Valency

        _protocol, adversary, _certificate = collision
        classification = adversary.last_lemma2.classification
        assert classification[(0, 0, 0)] is Valency.ZERO_VALENT
        assert classification[(1, 1, 1)] is Valency.ONE_VALENT
        mixed = [
            valency
            for vector, valency in classification.items()
            if len(set(vector)) == 2
        ]
        assert Valency.BIVALENT in mixed

    def test_fault_is_a_mid_protocol_death(self, collision):
        """The victim took steps before being silenced: this is a death
        DURING execution, the case Theorem 2 excludes."""
        _protocol, _adversary, certificate = collision
        victim = certificate.faulty_process
        pre_fault = [
            event.process
            for event in certificate.schedule[: certificate.fault_point]
        ]
        assert victim in pre_fault
