"""Shared helpers for emitting the ``BENCH_core_ops.json`` artifact.

The pytest-benchmark suites measure interactively; these helpers give
the bench modules a dependency-free ``python benchmarks/bench_*.py``
path that records the perf trajectory of the hot paths into a small
JSON artifact, committed once per PR so regressions are visible in
review diffs.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Callable

#: Artifact location: repo root, covered by .gitignore (committed
#: deliberately with ``git add -f`` when refreshed).
ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_core_ops.json"


def best_of(fn: Callable[[], object], repeat: int = 3) -> float:
    """Best-of-*repeat* wall time of ``fn()``, in seconds."""
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def write_artifact(sections: dict[str, object]) -> Path:
    """Write *sections* plus environment metadata to the artifact."""
    payload = {
        "artifact": "BENCH_core_ops",
        "generated_unix_time": round(time.time(), 3),
        "python": platform.python_version(),
        "machine": platform.machine(),
        **sections,
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return ARTIFACT_PATH
