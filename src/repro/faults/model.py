"""FaultedProtocol: bake a plan's static fragment into step semantics.

Exhaustive valency exploration walks the *reachable configuration
graph*, which is memoryless: a configuration does not remember how many
steps produced it.  Only the time-independent projection of a fault
plan — :meth:`FaultPlan.static_fragment` — can therefore be explored
exhaustively:

* **initially dead** processes take no events and receive no sends
  (Section 4's fault model, exactly);
* **lossy destinations** (unbounded deterministic omission) add a
  nondeterministic *drop edge* per buffered copy: the graph branches on
  "the message arrives" vs "the channel eats it", the standard way
  omission faults enter a model-checking transition relation;
* **severed links** (never-healing partitions) filter sends at the
  source — a copy that can never be delivered is equivalent, for
  reachability, to a copy never sent.

The wrapper subclasses :class:`~repro.core.protocol.Protocol` and
overrides :meth:`enabled_events` and :meth:`apply_event`, so every
consumer that routes steps through the protocol (the dict exploration
engine, simulation, schedule replay) honours the faults with no further
wiring.  The packed engine speaks through a codec rather than protocol
methods, so :meth:`FaultedProtocol.packed_codec` supplies
:class:`FaultedPackedCodec` — the same fault fragment expressed at the
packed-id level — and faulted exploration runs packed like everything
else.  The dict engine remains reachable via ``packed=False`` and is
kept as the cross-check in the test suite.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.configuration import Configuration
from repro.core.errors import ProtocolViolation, UnknownProcess
from repro.core.events import NULL, Event
from repro.core.messages import Message
from repro.core.packing import PackedCodec
from repro.core.protocol import Protocol
from repro.faults.plan import FaultCounters, FaultPlan

__all__ = ["Drop", "FaultedPackedCodec", "FaultedProtocol"]


class Drop:
    """Marker wrapping a message value: "the channel loses this copy".

    An event ``(p, Drop(m))`` consumes the buffered message ``(p, m)``
    without delivering it — the lossy-channel branch of the transition
    relation.  Hashable and comparable so drop events memoize in the
    transition cache like any other event.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: Hashable):
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash(("repro.faults.Drop", value)))

    def __setattr__(self, name, value):
        raise AttributeError("Drop is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Drop):
            return NotImplemented
        return self.value == other.value

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Drop, (self.value,))

    def __repr__(self) -> str:
        return f"Drop({self.value!r})"


class FaultedProtocol(Protocol):
    """*base* with *plan*'s static fault fragment baked into its steps.

    Raises :class:`~repro.core.errors.FaultModelError` when the plan
    contains time-dependent clauses (mid-run crashes, recovery windows,
    bounded budgets, healing partitions) — those are simulation-only;
    see :class:`~repro.schedulers.faulty.FaultyScheduler`.
    """

    #: Parallel expansion workers must route every step through
    #: :meth:`apply_event` (drop pseudo-events, send filtering) instead
    #: of the stock worker fast path.
    custom_step_semantics = True

    def __init__(self, base: Protocol, plan: FaultPlan):
        super().__init__(
            [base.process(name) for name in base.process_names]
        )
        plan.validate_for(base.process_names)
        self.base = base
        self.plan = plan
        dead, lossy, severed = plan.static_fragment(base.process_names)
        self._dead = dead
        self._lossy = lossy
        self._severed = severed
        self.fault_counters = FaultCounters()

    # -- step semantics ----------------------------------------------------

    def enabled_events(
        self, configuration: Configuration, include_null: bool = True
    ) -> tuple[Event, ...]:
        """Applicable events under the fault fragment.

        Dead processes contribute nothing; each buffered copy to a
        lossy destination contributes a drop edge alongside its
        delivery edge.
        """
        counters = self.fault_counters
        events: list[Event] = []
        if include_null:
            for name in self.process_names:
                if name in self._dead:
                    counters.dead_exclusions += 1
                    continue
                events.append(Event(name, NULL))
        for message in configuration.buffer.distinct_messages():
            if message.destination in self._dead:
                counters.dead_exclusions += 1
                continue
            events.append(Event(message.destination, message.value))
            if message.destination in self._lossy:
                events.append(
                    Event(message.destination, Drop(message.value))
                )
        return tuple(events)

    def apply_event(
        self, configuration: Configuration, event: Event
    ) -> Configuration:
        if isinstance(event.value, Drop):
            # The channel eats the copy: remove it from the buffer,
            # nobody's state changes.
            buffer = configuration.buffer.deliver(
                Message(event.process, event.value.value)
            )
            self.fault_counters.drop_edges += 1
            return configuration.with_buffer(buffer)
        # Same two-phase step as Protocol.apply_event, with the plan
        # filtering the send phase.
        if event.process not in self.process_names:
            raise UnknownProcess(event.process)
        state = configuration.state_of(event.process)
        if event.is_null_delivery:
            buffer = configuration.buffer
        else:
            buffer = configuration.buffer.deliver(event.message)
        transition = self.process(event.process).apply(state, event.value)
        counters = self.fault_counters
        sends = []
        for message in transition.sends:
            if message.destination not in self.process_names:
                raise ProtocolViolation(
                    f"process {event.process} sent a message to unknown "
                    f"process {message.destination!r}"
                )
            if message.destination in self._dead:
                # A copy to a dead process can never be delivered;
                # filtering it at the source keeps the graph small
                # without changing reachability.
                counters.dead_exclusions += 1
                continue
            if (event.process, message.destination) in self._severed:
                counters.send_blocks += 1
                continue
            sends.append(message)
        buffer = buffer.send_all(sends)
        return configuration.replace(event.process, transition.state, buffer)

    def consumed_message(self, event: Event) -> Message | None:
        """The buffered message *event* consumes — unwrapping drops."""
        if isinstance(event.value, Drop):
            return Message(event.process, event.value.value)
        return super().consumed_message(event)

    def packed_codec(self) -> "FaultedPackedCodec":
        return FaultedPackedCodec(self)

    def __repr__(self) -> str:
        return (
            f"FaultedProtocol(N={self.num_processes}, "
            f"plan={self.plan.describe()})"
        )


class FaultedPackedCodec(PackedCodec):
    """Packed codec speaking :class:`FaultedProtocol`'s step semantics.

    Three deviations from the base codec, each mirroring one clause of
    the static fault fragment:

    * :meth:`events_for` reproduces the faulted
      :meth:`~FaultedProtocol.enabled_events` order exactly — dead
      processes excluded, a :class:`Drop` edge after each delivery to a
      lossy destination — so a packed exploration interns the same
      successors in the same order as the dict engine and node ids
      match across engines;
    * :meth:`apply_packed` handles drop pseudo-events as pure buffer
      transitions (the stepping process's state id is untouched),
      sharing the delivery memo with the corresponding real delivery —
      removing a copy is the same buffer operation whether the process
      or the channel consumed it;
    * :meth:`_outgoing` filters sends to dead destinations and across
      severed links at step-memo misses (sound: the filter depends only
      on the static ``(sender, destination)`` pair).

    Fault counters bump on memoized paths only at miss time, so their
    exact values differ from a dict-engine run; the invariant consumers
    rely on — a fault clause that shaped the graph has a nonzero
    counter — holds in both engines.
    """

    def __init__(self, protocol: FaultedProtocol):
        super().__init__(protocol)
        self._dead = protocol._dead
        self._lossy = protocol._lossy
        self._severed = protocol._severed
        self._counters = protocol.fault_counters

    def events_for(self, buffer_id: int) -> tuple[Event, ...]:
        events = self._buffer_events[buffer_id]
        if events is None:
            counters = self._counters
            enabled: list[Event] = []
            for name in self._names:
                if name in self._dead:
                    counters.dead_exclusions += 1
                    continue
                enabled.append(Event(name, NULL))
            for message in self.buffer_at(buffer_id).distinct_messages():
                if message.destination in self._dead:
                    counters.dead_exclusions += 1
                    continue
                enabled.append(Event(message.destination, message.value))
                if message.destination in self._lossy:
                    enabled.append(
                        Event(message.destination, Drop(message.value))
                    )
            events = tuple(enabled)
            self._buffer_events[buffer_id] = events
        return events

    def kernel_step(
        self, position: int, state_id: int, event: Event
    ) -> "tuple[int, tuple[Message, ...]]":
        """Drop pseudo-events are pure buffer transitions: the stepping
        process's state id is unchanged and nothing is sent, so their
        dense step-table rows are the identity with the empty batch.
        Like the scalar path, the drop counter bumps at fill time only."""
        if isinstance(event.value, Drop):
            self._counters.drop_edges += 1
            return state_id, ()
        return super().kernel_step(position, state_id, event)

    def kernel_null_events(self) -> tuple[Event, ...]:
        counters = self._counters
        enabled: list[Event] = []
        for name in self._names:
            if name in self._dead:
                counters.dead_exclusions += 1
                continue
            enabled.append(Event(name, NULL))
        return tuple(enabled)

    def kernel_message_events(self, message: Message) -> tuple[Event, ...]:
        if message.destination in self._dead:
            self._counters.dead_exclusions += 1
            return ()
        events = [Event(message.destination, message.value)]
        if message.destination in self._lossy:
            events.append(Event(message.destination, Drop(message.value)))
        return tuple(events)

    def apply_packed(
        self, packed: tuple[int, ...], event: Event
    ) -> tuple[int, ...]:
        if isinstance(event.value, Drop):
            buffer_id = packed[-1]
            message = Message(event.process, event.value.value)
            delivery_key = (buffer_id, message)
            delivered = self._deliveries.get(delivery_key)
            if delivered is None:
                delivered = self.intern_buffer(
                    self.buffer_at(buffer_id).deliver(message)
                )
                self._deliveries[delivery_key] = delivered
            self._counters.drop_edges += 1
            successor = list(packed)
            successor[-1] = delivered
            return tuple(successor)
        return super().apply_packed(packed, event)

    def _outgoing(
        self, sender: str, sends: tuple[Message, ...]
    ) -> tuple[Message, ...]:
        sends = super()._outgoing(sender, sends)
        counters = self._counters
        kept = []
        for message in sends:
            if message.destination in self._dead:
                counters.dead_exclusions += 1
                continue
            if (sender, message.destination) in self._severed:
                counters.send_blocks += 1
                continue
            kept.append(message)
        return tuple(kept)
