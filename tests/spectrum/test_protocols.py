"""Phased Ben-Or under the partial-synchrony executor."""

import pytest

from repro.spectrum.adversary import make_adversary
from repro.spectrum.protocols import BenOrPhasedProcess
from repro.synchrony.partial import run_partial_sync

NAMES = ["p0", "p1", "p2"]


def _processes(f=1, seed=0, names=NAMES):
    return [BenOrPhasedProcess(name, names, f, seed=seed) for name in names]


class TestConstruction:
    def test_rejects_f_out_of_range(self):
        with pytest.raises(ValueError, match="0 <= f < n"):
            BenOrPhasedProcess("p0", NAMES, f=3)

    def test_rejects_non_binary_input(self):
        process = BenOrPhasedProcess("p0", NAMES, f=1)
        with pytest.raises(ValueError, match="binary"):
            process.initial_state(2)


class TestSynchronousRuns:
    def test_unanimous_inputs_decide_in_one_round(self):
        result = run_partial_sync(
            _processes(), {name: 1 for name in NAMES}, gst=1, max_rounds=5
        )
        assert result.all_live_decided
        assert set(result.decisions.values()) == {1}
        assert all(r == 1 for r in result.decision_rounds.values())

    def test_majority_input_wins_without_faults(self):
        inputs = {"p0": 0, "p1": 0, "p2": 1}
        result = run_partial_sync(
            _processes(), inputs, gst=1, max_rounds=5
        )
        assert result.all_live_decided
        assert result.agreement_holds
        assert set(result.decisions.values()) == {0}

    def test_survives_f_crashes(self):
        result = run_partial_sync(
            _processes(),
            {name: 1 for name in NAMES},
            gst=1,
            crash_rounds={"p2": 1},
            max_rounds=10,
        )
        assert result.agreement_holds
        assert all(
            result.decisions[name] == 1 for name in result.live
        )


class TestSafetyMechanics:
    def test_decided_process_proposes_its_value_forever(self):
        process = BenOrPhasedProcess("p0", NAMES, f=1)
        state = (1, 1, frozenset(), frozenset())
        outgoing = process.outgoing(state, round_number=7, phase=1)
        assert outgoing == {name: ("P", 1) for name in NAMES}

    def test_no_strict_majority_proposes_none(self):
        process = BenOrPhasedProcess("p0", ["p0", "p1", "p2", "p3"], f=1)
        reports = frozenset({("p0", 0), ("p1", 0), ("p2", 1), ("p3", 1)})
        state = (0, None, reports, frozenset())
        outgoing = process.outgoing(state, round_number=1, phase=1)
        assert outgoing["p1"] == ("P", None)

    def test_coin_is_seed_deterministic(self):
        process = BenOrPhasedProcess("p0", NAMES, f=1, seed=42)
        state = (0, None, frozenset(), frozenset())
        flips = {
            process.update(state, 3, 1, {})[0] for _ in range(5)
        }
        assert len(flips) == 1

    def test_f_plus_one_matching_proposals_decide(self):
        process = BenOrPhasedProcess("p0", NAMES, f=1)
        state = (0, None, frozenset(), frozenset())
        received = {"p1": ("P", 1), "p2": ("P", 1)}
        estimate, decided, _, _ = process.update(state, 1, 1, received)
        assert decided == 1 and estimate == 1

    def test_single_proposal_adopts_without_deciding(self):
        process = BenOrPhasedProcess("p0", NAMES, f=1)
        state = (0, None, frozenset(), frozenset())
        received = {"p1": ("P", 1), "p2": ("P", None)}
        estimate, decided, _, _ = process.update(state, 1, 1, received)
        assert decided is None and estimate == 1


class TestUnderAdversary:
    def test_terminates_under_capped_oblivious_adversary(self):
        # f < n/2 with the per-receiver cap at f: every sampled run must
        # decide — the termination half of the phase diagram.
        for run_seed in range(10):
            adversary = make_adversary(
                "oblivious", seed=run_seed, per_receiver_cap=1
            )
            adversary.begin_run(run_seed)
            inputs = {
                name: (run_seed >> i) & 1 for i, name in enumerate(NAMES)
            }
            result = run_partial_sync(
                _processes(seed=run_seed),
                inputs,
                gst=41,
                max_rounds=40,
                adversary=adversary,
            )
            assert result.agreement_holds
            assert result.all_live_decided, f"run_seed={run_seed} stuck"
            assert set(result.decisions.values()) <= set(inputs.values())
