"""E1 — Lemma 1 / Figure 1: disjoint schedules commute.

For each zoo protocol, sample reachable configurations by random walks,
generate random disjoint applicable schedule pairs, and close the
Figure-1 diamond.  The paper's claim is universal, so the expected
column is ``diamonds_closed == trials`` with zero failures, for every
protocol.
"""

from __future__ import annotations

import random

from repro.adversary.lemmas import commutativity_diamond, random_disjoint_schedules
from repro.core.protocol import Protocol
from repro.experiments.harness import ExperimentResult, experiment
from repro.experiments.zoo import broken_zoo, safe_zoo

__all__ = ["run"]


def _random_reachable(
    protocol: Protocol, rng: random.Random, max_walk: int = 12
):
    """A random accessible configuration: random inputs, random walk."""
    inputs = [rng.randint(0, 1) for _ in protocol.process_names]
    configuration = protocol.initial_configuration(inputs)
    for _ in range(rng.randint(0, max_walk)):
        events = protocol.enabled_events(configuration)
        configuration = protocol.apply_event(
            configuration, rng.choice(events)
        )
    return configuration


@experiment("E1", "Lemma 1 (Figure 1): commutativity of disjoint schedules")
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    trials = 50 if quick else 400
    rng = random.Random(seed)
    rows = []
    # Lemma 1 is a property of the *model*, so it must hold even for
    # protocols that are not partially correct — include the broken zoo.
    for label, protocol in safe_zoo(quick) + broken_zoo(quick):
        closed = 0
        nonempty = 0
        for _ in range(trials):
            configuration = _random_reachable(protocol, rng)
            sigma1, sigma2 = random_disjoint_schedules(
                protocol, configuration, rng
            )
            witness = commutativity_diamond(
                protocol, configuration, sigma1, sigma2
            )
            if witness.verify(protocol):
                closed += 1
            if len(sigma1) and len(sigma2):
                nonempty += 1
        rows.append(
            {
                "protocol": label,
                "trials": trials,
                "diamonds_closed": closed,
                "both_nonempty": nonempty,
                "failures": trials - closed,
            }
        )
    return ExperimentResult(
        exp_id="E1",
        title="Lemma 1 (Figure 1): commutativity of disjoint schedules",
        rows=tuple(rows),
        notes=(
            "expected: failures == 0 for every protocol (the lemma is "
            "universal over the model, independent of protocol "
            "correctness)",
        ),
        seed=seed,
        quick=quick,
    )
