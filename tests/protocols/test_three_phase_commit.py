"""Tests for three-phase commit."""

import pytest

from repro.core.events import NULL, Event
from repro.core.simulation import StopCondition, simulate
from repro.schedulers import CrashPlan, RandomScheduler, RoundRobinScheduler


def run_3pc(protocol, inputs, scheduler=None, max_steps=300):
    return simulate(
        protocol,
        protocol.initial_configuration(inputs),
        scheduler or RoundRobinScheduler(),
        max_steps=max_steps,
        stop=StopCondition.ALL_DECIDED,
    )


class TestOutcomes:
    def test_all_yes_commits(self, three_pc3):
        result = run_3pc(three_pc3, [1, 1, 1])
        assert result.decided
        assert result.decision_values == frozenset({1})

    @pytest.mark.parametrize("inputs", [[0, 1, 1], [1, 0, 1], [1, 1, 0]])
    def test_any_no_aborts(self, three_pc3, inputs):
        result = run_3pc(three_pc3, inputs)
        assert result.decision_values == frozenset({0})

    def test_agreement_over_random_schedules(self, three_pc3):
        for seed in range(10):
            result = run_3pc(
                three_pc3,
                [1, 1, 1],
                RandomScheduler(seed=seed),
                max_steps=800,
            )
            assert result.agreement_holds
            if result.decided:
                assert result.decision_values == frozenset({1})


class TestPreparePhase:
    def test_prepare_precedes_commit(self, three_pc3):
        """The 3PC refinement: after all votes, the coordinator is NOT
        yet decided — it must first gather acks."""
        config = three_pc3.initial_configuration([1, 1, 1])
        config = three_pc3.apply_event(config, Event("p1", NULL))
        config = three_pc3.apply_event(config, Event("p2", NULL))
        config = three_pc3.apply_event(config, Event("p0", NULL))
        config = three_pc3.apply_event(
            config, Event("p0", ("vote", "p1", 1))
        )
        config = three_pc3.apply_event(
            config, Event("p0", ("vote", "p2", 1))
        )
        state = config.state_of("p0")
        assert not state.decided
        assert state.data[0] == "preparing"
        # Prepare messages are now in flight to both participants.
        prepares = [
            m for m in config.buffer if m.value == ("prepare",)
        ]
        assert len(prepares) == 2

    def test_participant_acks_prepare(self, three_pc3):
        config = three_pc3.initial_configuration([1, 1, 1])
        # Drive to the point where the coordinator has broadcast prepare.
        for event in (
            Event("p1", NULL),
            Event("p2", NULL),
            Event("p0", NULL),
            Event("p0", ("vote", "p1", 1)),
            Event("p0", ("vote", "p2", 1)),
        ):
            config = three_pc3.apply_event(config, event)
        config = three_pc3.apply_event(
            config, Event("p1", ("prepare",))
        )
        assert config.state_of("p1").data == ("prepared",)
        acks = [m for m in config.buffer if m.value == ("ack", "p1")]
        assert len(acks) == 1

    def test_abort_skips_prepare(self, three_pc3):
        result = run_3pc(three_pc3, [1, 0, 1])
        assert result.decision_values == frozenset({0})
        # No participant ever reached the prepared state on the abort
        # path except possibly... actually abort never prepares:
        final = result.final_configuration
        assert final.state_of("p2").data != ("prepared",)


class TestBlocking:
    def test_coordinator_crash_still_blocks_3pc(self, three_pc3):
        """3PC's non-blocking claim needs timeouts; pure asynchrony has
        none, so the crash blocks it exactly like 2PC."""
        result = run_3pc(
            three_pc3,
            [1, 1, 1],
            RoundRobinScheduler(crash_plan=CrashPlan({"p0": 0})),
            max_steps=500,
        )
        assert not result.decided
        assert result.decisions == {}

    def test_crash_during_prepare_blocks(self, three_pc3):
        # Kill the coordinator after ~9 steps: votes are in, prepares
        # possibly out, commit never sent.
        result = run_3pc(
            three_pc3,
            [1, 1, 1],
            RoundRobinScheduler(crash_plan=CrashPlan({"p0": 9})),
            max_steps=500,
        )
        # Participants may be prepared but can never decide.
        assert "p1" not in result.decisions or "p2" not in result.decisions
