"""Model-level fault engine: plans, injection, auditing, survivability.

The paper's result is a statement about fault models, so the fault
model deserves to be a first-class object.  This package provides:

* :class:`FaultPlan` and its clause algebra (:class:`Crash`,
  :class:`CrashRecovery`, :class:`Omission`, :class:`Duplication`,
  :class:`Delay`, :class:`Partition`) — declarative, validated,
  composable descriptions of who fails and how;
* :class:`~repro.faults.model.FaultedProtocol` — the plan's static
  fragment baked into step semantics for exhaustive exploration;
* :func:`~repro.faults.audit.audit_run` — certification of injected
  runs against Section 2's admissibility definition;
* :func:`~repro.faults.survivability.survivability_matrix` — the
  protocol zoo swept against fault-model families, reproducing the
  paper's predictions (Theorem 2 survives initially-dead minorities
  but stalls under one mid-run crash; 2PC blocks under omission).

The run-time injector, :class:`~repro.schedulers.faulty.FaultyScheduler`,
lives with the other schedulers in :mod:`repro.schedulers`.
"""

from repro.faults.audit import FaultAuditVerdict, audit_run, audit_simulation
from repro.faults.model import Drop, FaultedPackedCodec, FaultedProtocol
from repro.faults.plan import (
    Crash,
    CrashRecovery,
    Delay,
    Duplication,
    FaultAction,
    FaultCounters,
    FaultPlan,
    Omission,
    Partition,
    PlanCrashView,
)
from repro.faults.survivability import (
    FAULT_MODELS,
    SurvivabilityCell,
    check_expectations,
    plans_for,
    survivability_matrix,
)

__all__ = [
    "Crash",
    "CrashRecovery",
    "Delay",
    "Duplication",
    "Omission",
    "Partition",
    "FaultPlan",
    "FaultAction",
    "FaultCounters",
    "PlanCrashView",
    "Drop",
    "FaultedPackedCodec",
    "FaultedProtocol",
    "FaultAuditVerdict",
    "audit_run",
    "audit_simulation",
    "FAULT_MODELS",
    "SurvivabilityCell",
    "plans_for",
    "survivability_matrix",
    "check_expectations",
]
