"""Tests for the Rabin-style shared-coin consensus."""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis.stats import mean
from repro.core.simulation import StopCondition, simulate
from repro.experiments.exp_benor import coin_trial
from repro.protocols import BenOrProcess, CommonCoinProcess, make_protocol
from repro.protocols.common_coin import shared_coin
from repro.schedulers import CrashPlan, RandomScheduler


class TestSharedCoin:
    def test_deterministic(self):
        assert shared_coin(3, 7) == shared_coin(3, 7)
        assert shared_coin(3, 7) in (0, 1)

    def test_same_for_all_processes(self):
        protocol = make_protocol(CommonCoinProcess, 4, seed=5)
        flips = {
            protocol.process(name)._coin_flip(9)
            for name in protocol.process_names
        }
        assert len(flips) == 1  # the coin is COMMON

    def test_benor_coins_differ_across_processes(self):
        # The contrast: private tapes disagree for some round.
        protocol = make_protocol(BenOrProcess, 4, seed=5)
        disagreed = any(
            len(
                {
                    protocol.process(name)._coin_flip(r)
                    for name in protocol.process_names
                }
            )
            == 2
            for r in range(12)
        )
        assert disagreed

    def test_varies_with_seed_and_round(self):
        flips = {
            shared_coin(seed, r) for seed in range(10) for r in range(10)
        }
        assert flips == {0, 1}


class TestTermination:
    def test_split_inputs_decide_quickly(self):
        for seed in range(5):
            result, rounds = coin_trial(CommonCoinProcess, 6, seed=seed)
            assert result.decided
            assert result.agreement_holds
            assert rounds <= 6  # O(1) expected; generous bound

    def test_faster_than_private_coins_at_n6(self):
        private, shared = [], []
        for seed in range(12):
            _, r_private = coin_trial(BenOrProcess, 6, seed=seed)
            _, r_shared = coin_trial(CommonCoinProcess, 6, seed=seed)
            private.append(r_private)
            shared.append(r_shared)
        assert mean(shared) < mean(private)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_agreement_with_shared_coins(seed):
    """Safety: inherited unchanged from the Ben-Or skeleton."""
    rng = random.Random(seed)
    n = rng.choice([3, 4, 5])
    inputs = [rng.randint(0, 1) for _ in range(n)]
    f = (n - 1) // 2
    crash = (
        CrashPlan({f"p{rng.randrange(n)}": rng.randint(0, 40)})
        if f > 0 and rng.random() < 0.5
        else CrashPlan.none()
    )
    protocol = make_protocol(CommonCoinProcess, n, f=f, seed=seed)
    result = simulate(
        protocol,
        protocol.initial_configuration(inputs),
        RandomScheduler(seed=seed + 1, crash_plan=crash),
        max_steps=6000,
        stop=StopCondition.ALL_DECIDED,
    )
    assert result.agreement_holds
    assert result.decision_values <= set(inputs)
