"""The admissibility auditor: every injected run gets a certificate."""

from repro.analysis import admissibility as admissibility_module
from repro.core.simulation import StopCondition, simulate
from repro.faults import (
    Crash,
    CrashRecovery,
    Duplication,
    FaultPlan,
    Omission,
    Partition,
    audit_run,
    audit_simulation,
)
from repro.protocols import (
    TwoPhaseCommitProcess,
    WaitForAllProcess,
    make_protocol,
)
from repro.schedulers import FaultyScheduler, RoundRobinScheduler


def run_under(protocol, plan, inputs, *, max_steps=400):
    scheduler = FaultyScheduler(RoundRobinScheduler(), plan)
    initial = protocol.initial_configuration(inputs)
    result = simulate(
        protocol,
        initial,
        scheduler,
        max_steps=max_steps,
        stop=StopCondition.ALL_DECIDED,
    )
    return initial, result


def test_fault_free_run_is_admissible_with_report():
    protocol = make_protocol(WaitForAllProcess, 3)
    plan = FaultPlan.none()
    initial, result = run_under(protocol, plan, [1, 0, 1])
    verdict = audit_simulation(protocol, initial, result, plan)
    assert verdict.admissible
    assert verdict.violated_clauses == ()
    assert verdict.report is not None
    assert verdict.report.fault_ok
    assert "admissible" in verdict.summary()


def test_single_crash_is_admissible():
    protocol = make_protocol(WaitForAllProcess, 3)
    plan = FaultPlan([Crash("p0", 0)])
    initial, result = run_under(protocol, plan, [1, 1, 1])
    verdict = audit_simulation(protocol, initial, result, plan)
    assert verdict.admissible
    assert verdict.faulty == frozenset({"p0"})


def test_two_crashes_flag_multiple_faulty():
    protocol = make_protocol(WaitForAllProcess, 3)
    plan = FaultPlan([Crash("p0", 0), Crash("p1", 0)])
    initial, result = run_under(protocol, plan, [1, 1, 1])
    verdict = audit_simulation(protocol, initial, result, plan)
    assert not verdict.admissible
    assert verdict.violated_clauses == ("multiple-faulty",)


def test_omission_to_nonfaulty_flags_omission():
    protocol = make_protocol(TwoPhaseCommitProcess, 3)
    plan = FaultPlan([Omission(destination="p0", budget=2)])
    initial, result = run_under(protocol, plan, [1, 1, 1])
    verdict = audit_simulation(protocol, initial, result, plan)
    assert not verdict.admissible
    assert "omission" in verdict.violated_clauses
    # Buffer-mutating injections make the schedule non-replayable.
    assert verdict.report is None


def test_omission_to_the_faulty_process_is_fine():
    # Mail to the (single) faulty process need never be delivered, so
    # dropping it breaks nothing in Section 2's definition.
    protocol = make_protocol(WaitForAllProcess, 3)
    plan = FaultPlan(
        [Crash("p0", 0), Omission(destination="p0", budget=None)]
    )
    initial, result = run_under(protocol, plan, [1, 1, 1])
    verdict = audit_simulation(protocol, initial, result, plan)
    assert verdict.admissible


def test_duplication_always_flags():
    protocol = make_protocol(WaitForAllProcess, 3)
    plan = FaultPlan([Duplication(destination="p1", budget=1)])
    initial, result = run_under(protocol, plan, [1, 0, 1])
    verdict = audit_simulation(protocol, initial, result, plan)
    assert not verdict.admissible
    assert verdict.violated_clauses == ("duplication",)


def test_recovery_wipe_flags_crash_recovery_loss():
    protocol = make_protocol(WaitForAllProcess, 3)
    plan = FaultPlan([CrashRecovery("p0", 2, 10)])
    initial, result = run_under(protocol, plan, [1, 1, 0])
    verdict = audit_simulation(protocol, initial, result, plan)
    assert not verdict.admissible
    assert "crash-recovery-loss" in verdict.violated_clauses


def test_forever_partition_flags_unhealed():
    protocol = make_protocol(WaitForAllProcess, 3)
    plan = FaultPlan(
        [Partition((frozenset({"p0"}), frozenset({"p1", "p2"})))]
    )
    initial, result = run_under(protocol, plan, [1, 1, 1])
    verdict = audit_simulation(protocol, initial, result, plan)
    assert not verdict.admissible
    assert "partition-unhealed" in verdict.violated_clauses


def test_healing_partition_stays_admissible():
    protocol = make_protocol(WaitForAllProcess, 3)
    plan = FaultPlan(
        [
            Partition(
                (frozenset({"p0"}), frozenset({"p1", "p2"})),
                heal_at=12,
            )
        ]
    )
    initial, result = run_under(protocol, plan, [1, 1, 1])
    verdict = audit_simulation(protocol, initial, result, plan)
    assert verdict.admissible


def test_audit_names_reexported_from_analysis_admissibility():
    # The auditor is discoverable where the admissibility machinery
    # already lives.
    assert admissibility_module.audit_run is audit_run
    assert admissibility_module.FaultAuditVerdict is not None
