"""Tests for the broadcast-voting protocols (and the tally rule)."""

import pytest

from repro.core.simulation import StopCondition, simulate
from repro.protocols import (
    QuorumVoteProcess,
    WaitForAllProcess,
    make_protocol,
)
from repro.protocols.voting import tally
from repro.schedulers import CrashPlan, RandomScheduler, RoundRobinScheduler


class TestTally:
    def test_majority_zero(self):
        assert tally(frozenset({("a", 0), ("b", 0), ("c", 1)})) == 0

    def test_majority_one(self):
        assert tally(frozenset({("a", 1), ("b", 1), ("c", 0)})) == 1

    def test_tie_breaks_to_one(self):
        assert tally(frozenset({("a", 0), ("b", 1)})) == 1

    def test_unanimous(self):
        assert tally(frozenset({("a", 0), ("b", 0)})) == 0


class TestWaitForAll:
    def test_decides_majority_under_fair_scheduling(self, wait_for_all3):
        result = simulate(
            wait_for_all3,
            wait_for_all3.initial_configuration([1, 0, 1]),
            RoundRobinScheduler(),
            max_steps=200,
        )
        assert result.decided
        assert result.decision_values == frozenset({1})

    def test_all_zero_decides_zero(self, wait_for_all3):
        result = simulate(
            wait_for_all3,
            wait_for_all3.initial_configuration([0, 0, 0]),
            RoundRobinScheduler(),
            max_steps=200,
        )
        assert result.decision_values == frozenset({0})

    @pytest.mark.parametrize("victim", ["p0", "p1", "p2"])
    def test_any_single_crash_blocks(self, wait_for_all3, victim):
        result = simulate(
            wait_for_all3,
            wait_for_all3.initial_configuration([1, 1, 1]),
            RoundRobinScheduler(crash_plan=CrashPlan({victim: 0})),
            max_steps=300,
        )
        assert not result.decided
        assert result.decisions == {}

    def test_message_before_first_step_is_handled(self, wait_for_all3):
        """A process whose first event is a delivery must broadcast and
        count the incoming vote in the same atomic step."""
        from repro.core.events import NULL, Event

        config = wait_for_all3.initial_configuration([1, 0, 0])
        config = wait_for_all3.apply_event(config, Event("p0", NULL))
        # p1's very first step is receiving p0's vote.
        config = wait_for_all3.apply_event(
            config, Event("p1", ("vote", "p0", 1))
        )
        _broadcast, votes = config.state_of("p1").data
        assert ("p0", 1) in votes
        assert ("p1", 0) in votes


class TestQuorumVote:
    def test_quorum_defaults_to_majority(self):
        protocol = make_protocol(QuorumVoteProcess, 5)
        assert protocol.process("p0").quorum == 3

    def test_explicit_quorum_validated(self):
        with pytest.raises(ValueError):
            make_protocol(QuorumVoteProcess, 3, quorum=4)
        with pytest.raises(ValueError):
            make_protocol(QuorumVoteProcess, 3, quorum=0)

    def test_survives_minority_crashes(self):
        protocol = make_protocol(QuorumVoteProcess, 3)
        result = simulate(
            protocol,
            protocol.initial_configuration([1, 1, 1]),
            RoundRobinScheduler(crash_plan=CrashPlan({"p2": 0})),
            max_steps=300,
        )
        # The two live processes have a quorum: they decide.
        assert set(result.decisions) == {"p0", "p1"}

    def test_disagreement_exists_under_some_schedule(self):
        """The unsafe protocol really does disagree: find a random
        schedule producing two different decisions."""
        protocol = make_protocol(QuorumVoteProcess, 3)
        initial = protocol.initial_configuration([0, 0, 1])
        for seed in range(60):
            result = simulate(
                protocol,
                initial,
                RandomScheduler(seed=seed, null_probability=0.2),
                max_steps=400,
            )
            if len(result.decision_values) == 2:
                return
        pytest.fail("no disagreement found in 60 seeds")

    def test_quorum_one_is_input_echo(self):
        protocol = make_protocol(QuorumVoteProcess, 2, quorum=1)
        result = simulate(
            protocol,
            protocol.initial_configuration([0, 1]),
            RoundRobinScheduler(),
            max_steps=50,
        )
        assert result.decisions == {"p0": 0, "p1": 1}
