"""Unit tests for the seeded random scheduler."""

import pytest

from repro.core.simulation import StopCondition, simulate
from repro.protocols import WaitForAllProcess, make_protocol
from repro.schedulers import CrashPlan, RandomScheduler


class TestDeterminism:
    def test_same_seed_same_run(self, wait_for_all3):
        initial = wait_for_all3.initial_configuration([1, 0, 1])
        a = simulate(
            wait_for_all3, initial, RandomScheduler(seed=7), max_steps=100
        )
        b = simulate(
            wait_for_all3, initial, RandomScheduler(seed=7), max_steps=100
        )
        assert a.schedule == b.schedule
        assert a.final_configuration == b.final_configuration

    def test_different_seeds_usually_differ(self, wait_for_all3):
        initial = wait_for_all3.initial_configuration([1, 0, 1])
        schedules = {
            simulate(
                wait_for_all3,
                initial,
                RandomScheduler(seed=seed),
                max_steps=50,
            ).schedule
            for seed in range(5)
        }
        assert len(schedules) > 1

    def test_reset_replays(self, wait_for_all3):
        scheduler = RandomScheduler(seed=3)
        initial = wait_for_all3.initial_configuration([0, 0, 1])
        first = scheduler.next_event(wait_for_all3, initial, 0)
        scheduler.reset()
        assert scheduler.next_event(wait_for_all3, initial, 0) == first


class TestBehaviour:
    def test_null_probability_validation(self):
        with pytest.raises(ValueError):
            RandomScheduler(null_probability=1.0)
        with pytest.raises(ValueError):
            RandomScheduler(null_probability=-0.1)

    def test_only_applicable_events_produced(self, wait_for_all3):
        scheduler = RandomScheduler(seed=11, null_probability=0.3)
        config = wait_for_all3.initial_configuration([1, 1, 0])
        for step in range(60):
            event = scheduler.next_event(wait_for_all3, config, step)
            assert event.is_applicable(config)
            config = wait_for_all3.apply_event(config, event)

    def test_decides_eventually_without_faults(self, wait_for_all3):
        for seed in range(5):
            result = simulate(
                wait_for_all3,
                wait_for_all3.initial_configuration([1, 0, 1]),
                RandomScheduler(seed=seed),
                max_steps=2000,
                stop=StopCondition.ALL_DECIDED,
            )
            assert result.decided

    def test_crash_plan_respected(self, wait_for_all3):
        scheduler = RandomScheduler(seed=5, crash_plan=CrashPlan({"p2": 0}))
        config = wait_for_all3.initial_configuration([0, 0, 0])
        for step in range(40):
            event = scheduler.next_event(wait_for_all3, config, step)
            assert event.process != "p2"
            config = wait_for_all3.apply_event(config, event)

    def test_all_crashed_returns_none(self, wait_for_all3):
        scheduler = RandomScheduler(
            crash_plan=CrashPlan({"p0": 0, "p1": 0, "p2": 0})
        )
        config = wait_for_all3.initial_configuration([0, 0, 0])
        assert scheduler.next_event(wait_for_all3, config, 0) is None
