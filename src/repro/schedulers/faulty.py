"""FaultyScheduler: apply any :class:`FaultPlan` to any base scheduler.

The wrapper composes three mechanisms, all invisible to the wrapped
scheduler:

* **liveness** — the base scheduler's :attr:`crash_plan` is replaced by
  a view of the fault plan, so crash windows, recovery, and delay
  freezes govern who it may schedule without it knowing fault plans
  exist (a pure crash-stop plan is handed over as a native
  :class:`CrashPlan`, keeping the no-fault path overhead-free);
* **buffer perturbation** — before each step the simulator calls
  :meth:`perturb`, which drops omitted copies, adds duplicated copies,
  and wipes the inbox of a process at its recovery step, recording each
  injection as a :class:`~repro.faults.plan.FaultAction` for the audit
  trail;
* **partition masking** — while a partition is active, copies crossing
  group boundaries are hidden from the base scheduler (frozen in
  transit) and reappear when it heals.

Message senders are not part of the paper's model (a buffer message is
``(destination, value)``), so the wrapper attributes senders itself by
diffing successive buffers: the only process that stepped between two
observations is the sender of every newly appeared copy.
"""

from __future__ import annotations

import random

from repro.core.configuration import Configuration
from repro.core.events import Event
from repro.core.messages import Message, MessageBuffer
from repro.core.protocol import Protocol
from repro.faults.plan import (
    FaultAction,
    FaultCounters,
    FaultPlan,
    PlanCrashView,
)
from repro.schedulers.base import Scheduler

__all__ = ["FaultyScheduler"]


class _Copy:
    """One in-flight message copy with its attributed sender."""

    __slots__ = ("message", "sender", "sent_at", "frozen_flagged")

    def __init__(self, message: Message, sender: str | None, sent_at: int):
        self.message = message
        self.sender = sender
        self.sent_at = sent_at
        #: Whether a partition-freeze action was already emitted for it.
        self.frozen_flagged = False


class _SenderTracker:
    """Buffer diffing with sender attribution.

    Like :class:`~repro.schedulers.base.FifoTracker`, but each tracked
    copy carries the process whose step put it in the buffer.  The
    tracker must see every buffer the run produces — both the ones the
    protocol steps make and the ones the wrapper's own perturbations
    make (via :meth:`drop`, :meth:`duplicate`, :meth:`wipe`) — to stay
    consistent.
    """

    def __init__(self):
        self.copies: list[_Copy] = []
        self._last_buffer = MessageBuffer.empty()

    def observe(
        self,
        buffer: MessageBuffer,
        stepper: str | None,
        step_index: int,
    ) -> list[_Copy]:
        """Sync with *buffer*; return the newly arrived copies."""
        if buffer == self._last_buffer:
            return []
        for message, old_count in self._last_buffer.items():
            for _ in range(old_count - buffer.count(message)):
                self._remove_one(message)
        arrivals: list[_Copy] = []
        for message in buffer.distinct_messages():
            delta = buffer.count(message) - self._last_buffer.count(message)
            for _ in range(max(delta, 0)):
                copy = _Copy(message, stepper, step_index)
                self.copies.append(copy)
                arrivals.append(copy)
        self._last_buffer = buffer
        return arrivals

    def drop(self, copy: _Copy, buffer: MessageBuffer) -> MessageBuffer:
        """Remove *copy* from both the tracker and *buffer*."""
        self.copies.remove(copy)
        buffer = buffer.deliver(copy.message)
        self._last_buffer = self._last_buffer.deliver(copy.message)
        return buffer

    def duplicate(self, copy: _Copy, buffer: MessageBuffer) -> MessageBuffer:
        """Add a clone of *copy* to both the tracker and *buffer*."""
        clone = _Copy(copy.message, copy.sender, copy.sent_at)
        self.copies.append(clone)
        buffer = buffer.send(copy.message)
        self._last_buffer = self._last_buffer.send(copy.message)
        return buffer

    def copies_for(self, process: str) -> list[_Copy]:
        return [
            copy
            for copy in self.copies
            if copy.message.destination == process
        ]

    def _remove_one(self, message: Message) -> None:
        for index, copy in enumerate(self.copies):
            if copy.message == message:
                del self.copies[index]
                return

    def reset(self) -> None:
        self.copies = []
        self._last_buffer = MessageBuffer.empty()


class FaultyScheduler(Scheduler):
    """Wrap *base* so every choice it makes happens under *plan*.

    Parameters
    ----------
    base:
        Any scheduler.  Its own ``crash_plan`` (if any) is folded into
        the fault plan — a conflict between the two raises
        :class:`~repro.core.errors.FaultModelError`.
    plan:
        The validated fault plan to apply.
    seed:
        Seed for the probability draws of probabilistic omission /
        duplication clauses (deterministic given the seed and the run).
    """

    def __init__(self, base: Scheduler, plan: FaultPlan, seed: int = 0):
        base_plan = getattr(base, "crash_plan", None)
        if base_plan is not None and base_plan.crash_times:
            plan = plan.merged_with_crashes(base_plan.crash_times)
        super().__init__(None)
        self.base = base
        self.plan = plan
        self.seed = seed
        self.counters = FaultCounters()
        self.actions: list[FaultAction] = []
        self.crash_plan = PlanCrashView(plan)
        # Hand the base scheduler the plan's liveness structure in the
        # cheapest form it can express.
        simple = plan.simple_crash_plan()
        base.crash_plan = simple if simple is not None else self.crash_plan
        self._dynamic = plan.needs_buffer_engine
        self._tracker = _SenderTracker()
        self._rng = random.Random(seed)
        self._last_stepper: str | None = None
        self._omission_budgets = [c.budget for c in plan.omissions]
        self._dup_budgets = [c.budget for c in plan.duplications]
        self._transitioned: set[tuple[str, str]] = set()

    # -- the perturb hook --------------------------------------------------

    def perturb(
        self,
        protocol: Protocol,
        configuration: Configuration,
        step_index: int,
    ) -> tuple[Configuration, tuple[FaultAction, ...]]:
        """Apply the plan's buffer-level faults due at *step_index*.

        Called by :func:`repro.core.simulation.simulate` at the top of
        every step.  Returns the (possibly) perturbed configuration and
        the fault actions injected at this step.
        """
        plan = self.plan
        actions: list[FaultAction] = []
        # Crash / recovery transitions are pure bookkeeping except for
        # the recovery-time inbox wipe; record them even on the fast
        # path so the audit trail is complete.
        for clause in plan.crashes:
            if clause.at_step == step_index:
                self._mark(
                    actions, step_index, "crash", clause.process
                )
        if not self._dynamic:
            if actions:
                self.actions.extend(actions)
            return configuration, tuple(actions)

        buffer = configuration.buffer
        arrivals = self._tracker.observe(
            buffer, self._last_stepper, step_index
        )
        for clause in plan.recoveries:
            if clause.at_step == step_index:
                self._mark(actions, step_index, "crash", clause.process)
            if clause.recover_at == step_index:
                # Restart with per-step state intact but the inbox
                # emptied: every copy pending to the process is lost.
                for copy in self._tracker.copies_for(clause.process):
                    buffer = self._tracker.drop(copy, buffer)
                    self.counters.inbox_wipes += 1
                    actions.append(
                        FaultAction(
                            step_index,
                            "inbox-wipe",
                            process=clause.process,
                            message=copy.message,
                        )
                    )
                self.counters.recoveries += 1
                self._mark(actions, step_index, "recover", clause.process)
        # Omission and duplication examine each copy once, on arrival.
        for copy in arrivals:
            dropped = False
            for index, clause in enumerate(plan.omissions):
                if not self._matches(clause, copy):
                    continue
                budget = self._omission_budgets[index]
                if budget is not None and budget <= 0:
                    continue
                if not self._draw(clause.probability):
                    continue
                if budget is not None:
                    self._omission_budgets[index] = budget - 1
                buffer = self._tracker.drop(copy, buffer)
                self.counters.omission_drops += 1
                actions.append(
                    FaultAction(
                        step_index,
                        "omission-drop",
                        message=copy.message,
                        detail=f"clause {index}",
                    )
                )
                dropped = True
                break
            if dropped:
                continue
            for index, clause in enumerate(plan.duplications):
                if not self._matches(clause, copy):
                    continue
                if self._dup_budgets[index] <= 0:
                    continue
                if not self._draw(clause.probability):
                    continue
                self._dup_budgets[index] -= 1
                buffer = self._tracker.duplicate(copy, buffer)
                self.counters.duplications += 1
                actions.append(
                    FaultAction(
                        step_index,
                        "duplicate",
                        message=copy.message,
                        detail=f"clause {index}",
                    )
                )
                break
        # Flag copies a never-healing partition has frozen for good —
        # the auditor needs them even though they stay in the buffer.
        if plan.partitions:
            for copy in self._tracker.copies:
                if copy.frozen_flagged:
                    continue
                if plan.severs_link_forever(
                    copy.sender, copy.message.destination
                ):
                    copy.frozen_flagged = True
                    actions.append(
                        FaultAction(
                            step_index,
                            "partition-freeze",
                            message=copy.message,
                            detail=f"sender {copy.sender}",
                        )
                    )
        if actions:
            self.actions.extend(actions)
        if buffer is not configuration.buffer:
            configuration = configuration.with_buffer(buffer)
        return configuration, tuple(actions)

    def _mark(
        self,
        actions: list[FaultAction],
        step_index: int,
        kind: str,
        process: str,
    ) -> None:
        key = (kind, process)
        if key in self._transitioned:
            return
        self._transitioned.add(key)
        if kind == "crash":
            self.counters.crashes += 1
        actions.append(FaultAction(step_index, kind, process=process))

    @staticmethod
    def _matches(clause, copy: _Copy) -> bool:
        if (
            clause.destination is not None
            and clause.destination != copy.message.destination
        ):
            return False
        if clause.sender is not None and clause.sender != copy.sender:
            return False
        return True

    def _draw(self, probability: float) -> bool:
        if probability >= 1.0:
            return True
        return self._rng.random() < probability

    # -- scheduling --------------------------------------------------------

    def next_event(
        self,
        protocol: Protocol,
        configuration: Configuration,
        step_index: int,
    ) -> Event | None:
        masked = configuration
        if self._dynamic and self.plan.partitions:
            # Keep the tracker in sync even if the simulator skipped a
            # perturb (direct next_event use), then hide frozen copies.
            self._tracker.observe(
                configuration.buffer, self._last_stepper, step_index
            )
            visible = [
                copy.message
                for copy in self._tracker.copies
                if not self.plan.blocks_link(
                    copy.sender, copy.message.destination, step_index
                )
            ]
            if len(visible) != len(self._tracker.copies):
                self.counters.partition_blocks += len(
                    self._tracker.copies
                ) - len(visible)
                masked = configuration.with_buffer(
                    MessageBuffer.of(visible)
                )
        event = self.base.next_event(protocol, masked, step_index)
        if event is None and self._pending_wakeup(step_index):
            # The base scheduler sees nothing to do, but the plan still
            # holds a future transition (a recovery, a delay ending, a
            # partition healing).  Idle with null deliveries so the run
            # reaches it instead of ending early.
            event = self._idle_event(protocol, step_index)
        self._last_stepper = event.process if event is not None else None
        return event

    def _pending_wakeup(self, step_index: int) -> bool:
        plan = self.plan
        return (
            any(c.recover_at > step_index for c in plan.recoveries)
            or any(
                c.end is not None and c.end > step_index
                for c in plan.delays
            )
            or any(
                c.heal_at is not None and c.heal_at > step_index
                for c in plan.partitions
            )
        )

    def _idle_event(self, protocol: Protocol, step_index: int) -> Event | None:
        for name in protocol.process_names:
            if self.plan.may_step(name, step_index):
                return Event(name, None)
        return None

    def live_processes(self, protocol: Protocol) -> tuple[str, ...]:
        return tuple(
            name
            for name in protocol.process_names
            if self.plan.eventually_live(name)
        )

    def reset(self) -> None:
        self.base.reset()
        self.counters = FaultCounters()
        self.actions = []
        self._tracker.reset()
        self._rng = random.Random(self.seed)
        self._last_stepper = None
        self._omission_budgets = [c.budget for c in self.plan.omissions]
        self._dup_budgets = [c.budget for c in self.plan.duplications]
        self._transitioned = set()
