"""Bench A4 — timeouts trade blocking for disagreement."""

from repro.core.correctness import check_partial_correctness
from repro.protocols import TimeoutArbiterProcess, make_protocol


def test_a4_table(benchmark, run_and_render):
    result = run_and_render(benchmark, "A4")
    rows = {row["protocol"]: row for row in result.rows}
    assert rows["timeout-arbiter/4"]["exhaustive_agreement"] is False
    assert rows["arbiter/4"]["exhaustive_agreement"] is True


def test_exhaustive_disagreement_search(benchmark):
    protocol = make_protocol(TimeoutArbiterProcess, 4, timeout=2)

    report = benchmark(check_partial_correctness, protocol)
    assert not report.agreement_ok
