"""Public-API stability tests: everything advertised is importable.

A downstream user's contract is the ``__all__`` of ``repro`` and its
subpackages; these tests keep the advertised names real (every entry
resolves) and keep the README's quickstart honest by executing it.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.schedulers",
    "repro.adversary",
    "repro.protocols",
    "repro.graphs",
    "repro.synchrony",
    "repro.analysis",
    "repro.experiments",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_entries_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), package_name
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_module_docstrings_exist(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__ and len(package.__doc__) > 40, package_name


def test_version_exposed():
    import repro

    assert repro.__version__


def test_readme_quickstart_executes():
    """The exact snippet from README.md's Quickstart section."""
    from repro import (
        FLPAdversary,
        check_partial_correctness,
        make_protocol,
    )
    from repro.protocols import ParityArbiterProcess

    protocol = make_protocol(ParityArbiterProcess, 3)
    assert check_partial_correctness(protocol).is_partially_correct

    adversary = FLPAdversary(protocol)
    certificate = adversary.build_run(stages=30)
    assert certificate.verify(protocol)
    assert len(certificate.stages) == 30


def test_init_docstring_quickstart_executes():
    """The snippet in repro/__init__.py's module docstring."""
    from repro import ArbiterProcess, FLPAdversary, make_protocol

    protocol = make_protocol(ArbiterProcess, n=3)
    adversary = FLPAdversary(protocol)
    certificate = adversary.build_run(stages=25)
    assert certificate.verify(protocol)


def test_registry_covers_all_zoo_protocol_classes():
    """Every concrete zoo process class is reachable via the registry."""
    from repro import registry
    from repro.protocols import (
        ArbiterProcess,
        BenOrProcess,
        CommonCoinProcess,
        InitiallyDeadProcess,
        ParityArbiterProcess,
        QuorumVoteProcess,
        ThreePhaseCommitProcess,
        TimeoutArbiterProcess,
        TwoPhaseCommitProcess,
        WaitForAllProcess,
    )

    classes = {
        type(
            registry.build(name).process(
                registry.build(name).process_names[0]
            )
        )
        for name in registry.names()
    }
    for cls in (
        ArbiterProcess,
        BenOrProcess,
        CommonCoinProcess,
        InitiallyDeadProcess,
        ParityArbiterProcess,
        QuorumVoteProcess,
        ThreePhaseCommitProcess,
        TimeoutArbiterProcess,
        TwoPhaseCommitProcess,
        WaitForAllProcess,
    ):
        assert cls in classes, cls.__name__


def test_experiment_json_round_trips():
    import json

    from repro.experiments.harness import run_experiment

    result = run_experiment("E8", quick=True)
    payload = json.loads(result.to_json())
    assert payload["exp_id"] == "E8"
    assert payload["rows"]
    assert all(isinstance(row, dict) for row in payload["rows"])
