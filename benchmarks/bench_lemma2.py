"""Bench E2 — Lemma 2 (bivalent initial configurations).

Regenerates the E2 table and micro-benchmarks the full initial-hypercube
classification for one protocol.
"""

from repro.adversary.lemmas import find_lemma2
from repro.core.valency import ValencyAnalyzer
from repro.protocols import ArbiterProcess, make_protocol


def test_e2_table(benchmark, run_and_render):
    result = run_and_render(benchmark, "E2")
    rows = {row["protocol"]: row for row in result.rows}
    assert rows["arbiter/3"]["bivalent"] > 0
    assert rows["2pc/3"]["bivalent"] == 0
    for row in result.rows:
        assert row["verified"]


def test_hypercube_classification(benchmark):
    protocol = make_protocol(ArbiterProcess, 3)

    def classify():
        analyzer = ValencyAnalyzer(protocol)  # cold cache each round
        return find_lemma2(protocol, analyzer)

    result = benchmark(classify)
    assert result.certificate is not None
