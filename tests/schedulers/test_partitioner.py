"""Unit tests for the delay scheduler (window of vulnerability)."""

import pytest

from repro.core.simulation import StopCondition, simulate
from repro.protocols import TwoPhaseCommitProcess, make_protocol
from repro.schedulers import DelayScheduler


@pytest.fixture
def protocol():
    return make_protocol(TwoPhaseCommitProcess, 3)


class TestWindowSemantics:
    def test_is_delayed_within_window(self):
        scheduler = DelayScheduler({"p0"}, window=(5, 10))
        assert not scheduler.is_delayed("p0", 4)
        assert scheduler.is_delayed("p0", 5)
        assert scheduler.is_delayed("p0", 9)
        assert not scheduler.is_delayed("p0", 10)

    def test_open_ended_window(self):
        scheduler = DelayScheduler({"p0"}, window=(0, None))
        assert scheduler.is_delayed("p0", 10**9)

    def test_non_victims_never_delayed(self):
        scheduler = DelayScheduler({"p0"}, window=(0, None))
        assert not scheduler.is_delayed("p1", 3)

    def test_malformed_window_rejected(self):
        with pytest.raises(ValueError):
            DelayScheduler({"p0"}, window=(5, 2))
        with pytest.raises(ValueError):
            DelayScheduler({"p0"}, window=(-1, None))


class TestBlockingBehaviour:
    def test_delayed_coordinator_blocks_commit(self, protocol):
        result = simulate(
            protocol,
            protocol.initial_configuration([1, 1, 1]),
            DelayScheduler({"p0"}, window=(0, None)),
            max_steps=200,
            stop=StopCondition.ALL_DECIDED,
        )
        assert not result.decided
        assert result.decisions == {}  # yes-voters cannot act alone

    def test_delay_lifts_and_protocol_completes(self, protocol):
        result = simulate(
            protocol,
            protocol.initial_configuration([1, 1, 1]),
            DelayScheduler({"p0"}, window=(0, 50)),
            max_steps=400,
            stop=StopCondition.ALL_DECIDED,
        )
        assert result.decided
        assert result.decision_values == frozenset({1})

    def test_delaying_abort_voter_does_not_block_aborts(self, protocol):
        # A no-voter's vote is not needed for the others to... actually
        # the coordinator still waits for its vote: the commit problem's
        # window again, from the other side.
        result = simulate(
            protocol,
            protocol.initial_configuration([1, 1, 0]),
            DelayScheduler({"p2"}, window=(0, None)),
            max_steps=200,
            stop=StopCondition.ALL_DECIDED,
        )
        # p2 itself (delayed) never even votes; the coordinator blocks.
        assert "p0" not in result.decisions

    def test_never_schedules_delayed_process(self, protocol):
        scheduler = DelayScheduler({"p1"}, window=(0, None))
        config = protocol.initial_configuration([1, 1, 1])
        for step in range(30):
            event = scheduler.next_event(protocol, config, step)
            if event is None:
                break
            assert event.process != "p1"
            config = protocol.apply_event(config, event)

    def test_all_delayed_returns_none(self, protocol):
        scheduler = DelayScheduler(
            {"p0", "p1", "p2"}, window=(0, None)
        )
        config = protocol.initial_configuration([1, 1, 1])
        assert scheduler.next_event(protocol, config, 0) is None

    def test_reset(self, protocol):
        scheduler = DelayScheduler({"p0"}, window=(0, None))
        config = protocol.initial_configuration([1, 1, 1])
        first = scheduler.next_event(protocol, config, 0)
        scheduler.reset()
        assert scheduler.next_event(protocol, config, 0) == first
