"""Tests for Ben-Or randomized consensus, including property-based
safety checks (agreement is deterministic; only termination is
probabilistic)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.simulation import StopCondition, simulate
from repro.protocols import BenOrProcess, make_protocol
from repro.protocols.benor import BOTTOM, _coin
from repro.schedulers import CrashPlan, RandomScheduler, RoundRobinScheduler


def run_benor(n, inputs, seed=0, f=None, crash_plan=None, max_steps=5000):
    protocol = make_protocol(BenOrProcess, n, f=f, seed=seed)
    scheduler = RandomScheduler(
        seed=seed + 1,
        null_probability=0.2,
        crash_plan=crash_plan or CrashPlan.none(),
    )
    return simulate(
        protocol,
        protocol.initial_configuration(inputs),
        scheduler,
        max_steps=max_steps,
        stop=StopCondition.ALL_DECIDED,
    )


class TestParameters:
    def test_default_f_is_max(self):
        assert make_protocol(BenOrProcess, 5).process("p0").f == 2
        assert make_protocol(BenOrProcess, 4).process("p0").f == 1

    def test_f_must_be_below_half(self):
        with pytest.raises(ValueError):
            make_protocol(BenOrProcess, 4, f=2)
        with pytest.raises(ValueError):
            make_protocol(BenOrProcess, 3, f=-1)

    def test_quorum(self):
        assert make_protocol(BenOrProcess, 5, f=2).process("p0").quorum == 3

    def test_coin_is_deterministic(self):
        assert _coin(1, "p0", 3) == _coin(1, "p0", 3)
        assert _coin(1, "p0", 3) in (0, 1)

    def test_coin_varies_with_inputs(self):
        flips = {_coin(s, "p0", r) for s in range(8) for r in range(8)}
        assert flips == {0, 1}


class TestFastPaths:
    def test_unanimous_inputs_decide_that_value(self):
        for value in (0, 1):
            result = run_benor(3, [value] * 3, seed=5)
            assert result.decided
            assert result.decision_values == frozenset({value})

    def test_validity_one_holder_dead(self):
        # The only 1-holder never speaks: 0 is the only outcome.
        result = run_benor(
            3,
            [0, 0, 1],
            seed=2,
            crash_plan=CrashPlan({"p2": 0}),
        )
        assert result.decision_values <= frozenset({0})

    def test_round_robin_also_terminates(self):
        protocol = make_protocol(BenOrProcess, 3, seed=3)
        result = simulate(
            protocol,
            protocol.initial_configuration([1, 0, 1]),
            RoundRobinScheduler(),
            max_steps=5000,
            stop=StopCondition.ALL_DECIDED,
        )
        assert result.decided
        assert result.agreement_holds


class TestDecisionGossip:
    def test_courtesy_decide_message_unsticks_laggards(self):
        result = run_benor(4, [1, 1, 0, 0], seed=9)
        assert result.decided
        assert len(result.decisions) == 4
        assert result.agreement_holds


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_agreement_is_never_violated(seed):
    """Safety property: whatever the tape, schedule, and single crash,
    no two processes decide differently."""
    rng = random.Random(seed)
    n = rng.choice([3, 4, 5])
    inputs = [rng.randint(0, 1) for _ in range(n)]
    f = (n - 1) // 2
    crash = (
        CrashPlan({f"p{rng.randrange(n)}": rng.randint(0, 50)})
        if rng.random() < 0.5 and f > 0
        else CrashPlan.none()
    )
    result = run_benor(n, inputs, seed=seed, f=f, crash_plan=crash)
    assert result.agreement_holds


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_validity_holds(seed):
    rng = random.Random(seed)
    inputs = [rng.randint(0, 1) for _ in range(3)]
    result = run_benor(3, inputs, seed=seed)
    assert result.decision_values <= set(inputs)


def test_bottom_marker_distinct_from_values():
    assert BOTTOM not in (0, 1)
