"""Section 4: consensus despite initially dead processes (Theorem 2).

"There is a partially correct consensus protocol in which all nonfaulty
processes always reach a decision, provided no processes die during its
execution and a strict majority of the processes are alive initially."

The protocol works in two stages, with L = ⌈(N+1)/2⌉:

**Stage 1.**  Every process broadcasts its process number, then listens
for stage-1 messages from L-1 *other* processes.  This defines a directed
graph ``G`` with an edge ``i -> j`` iff ``j`` received a message from
``i`` — so ``G`` has in-degree exactly L-1 at every (live) node.

**Stage 2.**  Each process broadcasts its process number, its initial
value, and the names of the L-1 processes it heard from in stage 1.  It
then waits until it has received a stage-2 message from *every ancestor
in G it knows about* — initially its L-1 direct predecessors, with more
ancestors learned transitively from arriving stage-2 messages.  When all
currently-known ancestors have been heard from, the process knows all of
its ancestors and every edge of ``G`` incident on them, computes the
transitive closure ``G+`` restricted to them, and finds the *initial
clique* (the unique clique of ``G+`` with no incoming edges; it has
cardinality ≥ L) via the paper's test: ``k`` is in the initial clique iff
``k`` is an ancestor of every node ``j`` that is an ancestor of ``k``.

Finally every process decides by "any agreed-upon rule" applied to the
initial values of the initial-clique members — here, majority with ties
to 1 (the same rule as the voting zoo, :func:`repro.protocols.voting.tally`).

Liveness holds because dead processes never broadcast and hence never
become anyone's ancestor, while all live processes (≥ L of them) do.
With a *majority* initially dead, every live process waits forever for
its (L-1)-th stage-1 message — the experiment suite's negative control.

Message universe: ``("s1", sender)`` and
``("s2", sender, input, predecessors)``.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.process import ProcessState, Transition
from repro.graphs.digraph import Digraph
from repro.protocols.base import ConsensusProcess
from repro.protocols.voting import tally

__all__ = ["InitiallyDeadProcess", "build_stage_graph"]


def build_stage_graph(
    entries: frozenset[tuple[str, int, frozenset[str]]]
) -> Digraph:
    """Reconstruct (the known part of) ``G`` from stage-2 entries.

    Each entry ``(j, input_j, preds_j)`` contributes the edges
    ``i -> j`` for every ``i`` in ``preds_j``.
    """
    graph = Digraph()
    for name, _value, predecessors in entries:
        graph.add_node(name)
        for predecessor in predecessors:
            graph.add_edge(predecessor, name)
    return graph


class InitiallyDeadProcess(ConsensusProcess):
    """One process of the Section-4 protocol."""

    def initial_data(self, input_value: int) -> Hashable:
        # (stage-1 broadcast done, phase, stage-1 senders heard,
        #  fixed predecessor set, stage-2 entries collected)
        return (False, "s1", frozenset(), frozenset(), frozenset())

    @property
    def listen_quota(self) -> int:
        """L - 1: how many stage-1 messages to wait for."""
        return self.majority - 1

    def step(
        self, state: ProcessState, message_value: Hashable | None
    ) -> Transition:
        broadcast1, phase, heard1, preds, entries = state.data
        sends: list = []

        if not broadcast1:
            # First step ever: stage-1 broadcast of our process number.
            sends.extend(self.broadcast(self.others, ("s1", self.name)))
            broadcast1 = True

        if isinstance(message_value, tuple) and message_value:
            kind = message_value[0]
            if kind == "s1" and phase == "s1":
                sender = message_value[1]
                if len(heard1) < self.listen_quota:
                    heard1 = heard1 | {sender}
            elif kind == "s2":
                _, sender, value, sender_preds = message_value
                entries = entries | {(sender, value, sender_preds)}

        if phase == "s1" and len(heard1) >= self.listen_quota:
            # Enter stage 2: fix our predecessor set, broadcast it, and
            # count our own entry as received.
            phase = "s2"
            preds = heard1
            sends.extend(
                self.broadcast(
                    self.others, ("s2", self.name, state.input, preds)
                )
            )
            entries = entries | {(self.name, state.input, preds)}

        new_state = state.with_data(
            (broadcast1, phase, heard1, preds, entries)
        )

        if phase == "s2" and not new_state.decided:
            decision = self._try_decide(preds, entries)
            if decision is not None:
                new_state = new_state.with_data(
                    (broadcast1, "done", heard1, preds, entries)
                ).with_decision(decision)

        return Transition(new_state, tuple(sends))

    # -- stage-2 termination and decision -------------------------------------

    def _known_ancestors(
        self,
        preds: frozenset[str],
        entries: frozenset[tuple[str, int, frozenset[str]]],
    ) -> frozenset[str]:
        """Every ancestor of this process currently derivable: direct
        predecessors, plus (transitively) the predecessors revealed by
        the stage-2 messages of processes already known to be ancestors."""
        by_sender = {name: sender_preds for name, _, sender_preds in entries}
        known = set(preds)
        frontier = list(preds)
        while frontier:
            current = frontier.pop()
            for predecessor in by_sender.get(current, frozenset()):
                if predecessor not in known:
                    known.add(predecessor)
                    frontier.append(predecessor)
        return frozenset(known)

    def _try_decide(
        self,
        preds: frozenset[str],
        entries: frozenset[tuple[str, int, frozenset[str]]],
    ) -> int | None:
        """Decide if every known ancestor's stage-2 message has arrived."""
        known = self._known_ancestors(preds, entries)
        received_from = frozenset(name for name, _, _ in entries)
        if not known <= received_from:
            return None  # Keep waiting: some known ancestor is unheard.
        graph = build_stage_graph(entries)
        clique = graph.initial_clique() & (known | {self.name})
        if not clique:  # pragma: no cover - cannot happen per Theorem 2
            return None
        values = {name: value for name, value, _ in entries}
        clique_votes = frozenset(
            (name, values[name]) for name in clique
        )
        return tally(clique_votes)
