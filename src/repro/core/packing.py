"""Packed configuration encoding: flat integer tuples for the hot paths.

The exploration engine spends its time hashing and comparing
configurations.  A rich :class:`~repro.core.configuration.Configuration`
hashes via a sorted tuple of ``(name, ProcessState)`` items plus a
frozenset-of-items buffer hash — Python-object work on every dictionary
probe.  This module interns every distinct :class:`ProcessState` and
:class:`MessageBuffer` to a dense integer id *once*, so a configuration
becomes a flat ``tuple[int, ...]``::

    (state_id[p0], state_id[p1], ..., state_id[pN-1], buffer_id)

which hashes and compares in C.  The round-trip is lossless:
:meth:`PackedCodec.decode` rebuilds the identical rich configuration for
traces, witnesses, and ``describe()``.

On top of the encoding, :meth:`PackedCodec.apply_packed` applies one
event to a packed configuration without constructing rich objects at
all, by memoizing the three independent ingredients of a step:

* the *process step* ``(process, state_id, message value) ->
  (new state_id, sends)`` — the transition function is deterministic,
  so this is shared across every configuration in which that process
  sits in that state;
* the *delivery* ``(buffer_id, message) -> buffer_id``;
* the *send batch* ``(buffer_id, sends) -> buffer_id``.

A successor is then tuple surgery on small ints.  Only genuinely novel
(state, message) steps and buffer transitions ever touch the rich
objects — and each exactly once per codec lifetime.

Soundness: every memoized ingredient is a pure function of its key
(process determinism is the model's own hypothesis), so the packed
application and :meth:`~repro.core.protocol.Protocol.apply_event` agree
on every event — which the test suite asserts, including Lemma 1's
commutativity at the packed-id level.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.core.configuration import Configuration
from repro.core.errors import ProtocolViolation, UnknownProcess
from repro.core.events import NULL, Event
from repro.core.messages import Message, MessageBuffer
from repro.core.process import ProcessState
from repro.core.protocol import Protocol

__all__ = ["PackedCodec", "PackedConfiguration"]

#: A packed configuration: per-process state ids + trailing buffer id.
PackedConfiguration = "tuple[int, ...]"


class PackedCodec:
    """Interning codec between rich configurations and packed tuples.

    Bound to one protocol (the process roster fixes tuple positions:
    index ``i`` holds the state id of the ``i``-th process in sorted
    name order, the last slot holds the buffer id).  All ids are dense
    and allocated in first-seen order, so the encoding is deterministic
    for a deterministic exploration order — independent of
    ``PYTHONHASHSEED``.
    """

    def __init__(self, protocol: Protocol):
        self.protocol = protocol
        self._names = protocol.process_names
        self._position = {name: i for i, name in enumerate(self._names)}
        self._automata = [protocol.process(name) for name in self._names]
        # State interning: id -> rich, rich -> id, id -> output register
        # (None while undecided) for O(1) packed decision queries.
        self._states: list[ProcessState] = []
        self._state_ids: dict[ProcessState, int] = {}
        self._state_output: list[int | None] = []
        # Buffer interning, plus the per-buffer enabled-event cache.
        # With a transition kernel attached, ``_buffers`` slots may hold
        # ``None``: the kernel allocated the id from a flat rep and the
        # rich buffer materializes on first ``buffer_at``.
        self._buffers: list[MessageBuffer | None] = []
        self._buffer_ids: dict[MessageBuffer, int] = {}
        self._buffer_events: list[tuple[Event, ...] | None] = []
        self._kernel = None
        # Transition memos (see module docstring).
        self._steps: dict[
            tuple[int, int, Hashable], tuple[int, tuple[Message, ...]]
        ] = {}
        self._deliveries: dict[tuple[int, Message], int] = {}
        self._sends: dict[tuple[int, tuple[Message, ...]], int] = {}
        #: Packed step applications answered from the memo / computed
        #: fresh through the rich transition function.
        self.step_hits = 0
        self.step_misses = 0

    # -- interning ---------------------------------------------------------

    @property
    def width(self) -> int:
        """Length of a packed tuple: N state slots + 1 buffer slot."""
        return len(self._names) + 1

    @property
    def process_names(self) -> tuple[str, ...]:
        """Process names in tuple-position order (slot ``i`` holds the
        state id of ``process_names[i]``)."""
        return self._names

    def position_of(self, process: str) -> int:
        """Tuple index of *process*'s state slot."""
        return self._position[process]

    def intern_state(self, state: ProcessState) -> int:
        """The dense id of *state*, allocating one if new."""
        sid = self._state_ids.get(state)
        if sid is None:
            sid = len(self._states)
            self._state_ids[state] = sid
            self._states.append(state)
            self._state_output.append(
                state.output if state.decided else None
            )
        return sid

    def intern_buffer(self, buffer: MessageBuffer) -> int:
        """The dense id of *buffer*, allocating one if new.

        With a kernel attached, a rich-side miss routes through the
        kernel's rep index: the multiset may already own an id as an
        unmaterialized placeholder, and allocating a second id would
        break the first-seen-order contract every fingerprint rests on.
        """
        bid = self._buffer_ids.get(buffer)
        if bid is None:
            if self._kernel is not None:
                return self._kernel.intern_rich_buffer(buffer)
            bid = len(self._buffers)
            self._buffer_ids[buffer] = bid
            self._buffers.append(buffer)
            self._buffer_events.append(None)
        return bid

    def attach_kernel(self, kernel) -> None:
        """Bind a :class:`~repro.core.kernel.TransitionKernel` as this
        codec's lazy-buffer owner (at most one per codec)."""
        self._kernel = kernel

    def state_at(self, state_id: int) -> ProcessState:
        """The rich state interned at *state_id*."""
        return self._states[state_id]

    def buffer_at(self, buffer_id: int) -> MessageBuffer:
        """The rich buffer interned at *buffer_id*, materializing a
        kernel-allocated placeholder on demand."""
        buffer = self._buffers[buffer_id]
        if buffer is None:
            buffer = self._kernel.materialize_buffer(buffer_id)
        return buffer

    def __len__(self) -> int:
        """Distinct interned states (buffers tracked separately)."""
        return len(self._states)

    @property
    def interned_buffers(self) -> int:
        return len(self._buffers)

    # -- encode / decode ---------------------------------------------------

    def encode(self, configuration: Configuration) -> tuple[int, ...]:
        """The packed form of *configuration* (interning as needed)."""
        names = self._names
        if configuration.process_names != names:
            raise ValueError(
                f"configuration processes {configuration.process_names!r} "
                f"do not match the codec's protocol {names!r}"
            )
        intern_state = self.intern_state
        ids = [
            intern_state(state) for _name, state in configuration.states()
        ]
        ids.append(self.intern_buffer(configuration.buffer))
        return tuple(ids)

    def decode(self, packed: tuple[int, ...]) -> Configuration:
        """The rich configuration for *packed* (lossless round-trip)."""
        states = self._states
        return Configuration(
            {
                name: states[sid]
                for name, sid in zip(self._names, packed)
            },
            self.buffer_at(packed[-1]),
        )

    def decision_values(self, packed: tuple[int, ...]) -> frozenset[int]:
        """Decision values of *packed* without decoding it."""
        output = self._state_output
        return frozenset(
            value
            for sid in packed[:-1]
            if (value := output[sid]) is not None
        )

    def has_decision(self, packed: tuple[int, ...]) -> bool:
        """Whether any process in *packed* has decided (no set built —
        this sits on the ample reducer's per-edge visibility path)."""
        output = self._state_output
        for sid in packed[:-1]:
            if output[sid] is not None:
                return True
        return False

    # -- packed step semantics ---------------------------------------------

    def events_for(self, buffer_id: int) -> tuple[Event, ...]:
        """Enabled events for any configuration with this buffer.

        Event applicability depends only on the buffer (null deliveries
        are always enabled, one delivery per distinct message), so the
        tuple is cached per buffer id.  The order matches
        :meth:`Protocol.enabled_events` exactly — exploration edge order
        is identical between the packed and rich engines.
        """
        events = self._buffer_events[buffer_id]
        if events is None:
            enabled = [Event(name, NULL) for name in self._names]
            enabled.extend(
                Event(message.destination, message.value)
                for message in self.buffer_at(buffer_id).distinct_messages()
            )
            events = tuple(enabled)
            self._buffer_events[buffer_id] = events
        return events

    def _outgoing(
        self, sender: str, sends: tuple[Message, ...]
    ) -> tuple[Message, ...]:
        """The send batch actually placed in the buffer by *sender*.

        The base codec only validates destinations; fault-aware codecs
        override this to filter sends (dead destinations, severed
        links).  Runs at step-memo misses only, so any filtering must be
        a pure function of ``(sender, destination)`` — which the static
        fault fragment guarantees.
        """
        for message in sends:
            if message.destination not in self._position:
                raise ProtocolViolation(
                    f"process {sender} sent a message to "
                    f"unknown process {message.destination!r}"
                )
        return sends

    # -- batched-kernel hooks ----------------------------------------------

    def kernel_step(
        self, position: int, state_id: int, event: Event
    ) -> tuple[int, tuple[Message, ...]]:
        """The step component of *event*: ``(new_state_id, sends)``.

        The :class:`~repro.core.kernel.TransitionKernel`'s fill oracle
        for its dense step tables.  Shares ``_steps`` with
        :meth:`apply_packed`, so scalar and kernel expansion fill each
        other's memo and state-id allocation order is engine-independent.
        Fault-aware codecs override this for their pseudo-events.
        """
        step_key = (position, state_id, event.value)
        step = self._steps.get(step_key)
        if step is None:
            self.step_misses += 1
            transition = self._automata[position].apply(
                self._states[state_id], event.value
            )
            step = (
                self.intern_state(transition.state),
                self._outgoing(event.process, transition.sends),
            )
            self._steps[step_key] = step
        else:
            self.step_hits += 1
        return step

    def kernel_null_events(self) -> tuple[Event, ...]:
        """The null-delivery events, in enabled-event order — the fixed
        prefix of every :meth:`events_for` row."""
        return tuple(Event(name, NULL) for name in self._names)

    def kernel_message_events(self, message: Message) -> tuple[Event, ...]:
        """The events one distinct buffered *message* contributes to the
        enabled-event row (fault-aware codecs add drop edges / exclude
        dead destinations here)."""
        return (Event(message.destination, message.value),)

    def apply_packed(
        self, packed: tuple[int, ...], event: Event
    ) -> tuple[int, ...]:
        """``e(C)`` on packed tuples; rich objects only on memo misses."""
        try:
            position = self._position[event.process]
        except KeyError:
            raise UnknownProcess(event.process) from None
        state_id = packed[position]
        step_key = (position, state_id, event.value)
        step = self._steps.get(step_key)
        if step is None:
            self.step_misses += 1
            transition = self._automata[position].apply(
                self._states[state_id], event.value
            )
            step = (
                self.intern_state(transition.state),
                self._outgoing(event.process, transition.sends),
            )
            self._steps[step_key] = step
        else:
            self.step_hits += 1
        new_state_id, sends = step

        buffer_id = packed[-1]
        if event.value is not NULL:
            message = Message(event.process, event.value)
            delivery_key = (buffer_id, message)
            delivered = self._deliveries.get(delivery_key)
            if delivered is None:
                delivered = self.intern_buffer(
                    self.buffer_at(buffer_id).deliver(message)
                )
                self._deliveries[delivery_key] = delivered
            buffer_id = delivered
        if sends:
            send_key = (buffer_id, sends)
            sent = self._sends.get(send_key)
            if sent is None:
                sent = self.intern_buffer(
                    self.buffer_at(buffer_id).send_all(sends)
                )
                self._sends[send_key] = sent
            buffer_id = sent

        successor = list(packed)
        successor[position] = new_state_id
        successor[-1] = buffer_id
        return tuple(successor)

    def expand_packed(
        self, packed: tuple[int, ...]
    ) -> list[tuple[Event, tuple[int, ...]]]:
        """All ``(event, successor)`` edges of *packed*, in the canonical
        enabled-event order."""
        apply_packed = self.apply_packed
        return [
            (event, apply_packed(packed, event))
            for event in self.events_for(packed[-1])
        ]

    def apply_rich(
        self, configuration: Configuration, event: Event
    ) -> Configuration:
        """``e(C)`` on rich configurations, routed through the packed
        memos — lets :class:`~repro.core.exploration.TransitionCache`
        reuse everything the exploration engine already computed."""
        return self.decode(self.apply_packed(self.encode(configuration), event))

    def iter_states(self) -> Iterator[tuple[int, ProcessState]]:
        """Iterate over ``(id, state)`` pairs (diagnostics)."""
        return iter(enumerate(self._states))

    # -- worker mirror sync --------------------------------------------------

    def table_sizes(self) -> tuple[int, int]:
        """Current ``(state, buffer)`` table lengths (sync watermarks)."""
        return len(self._states), len(self._buffers)

    def table_delta(
        self, states_from: int, buffers_from: int
    ) -> tuple[list[ProcessState], list[MessageBuffer], int, int]:
        """Everything interned since the given watermarks.

        Shared-memory expansion workers keep a mirror of the id tables
        so they can resolve packed rows without any per-level pickling
        of configurations; each BFS level ships only the states and
        buffers interned *since the previous level* — every rich object
        crosses the process boundary at most once per run.  Returns
        ``(new_states, new_buffers, state_total, buffer_total)``.
        Kernel-allocated placeholders materialize here — the mirror on
        the far side has no rep index to resolve them from.
        """
        buffers = self._buffers[buffers_from:]
        if self._kernel is not None and None in buffers:
            buffer_at = self.buffer_at
            buffers = [
                buffer_at(bid)
                for bid in range(buffers_from, len(self._buffers))
            ]
        return (
            self._states[states_from:],
            buffers,
            len(self._states),
            len(self._buffers),
        )

    # -- checkpointing ------------------------------------------------------

    def snapshot_state(self) -> dict[str, object]:
        """Picklable snapshot of every interning table and memo.

        The id lists are the load-bearing part — packed tuples reference
        states and buffers by dense id, and future interning must
        continue the same first-seen-order allocation for resumed
        explorations to stay byte-identical with uninterrupted ones.
        The transition memos are included too so a resume does not pay
        the rich-object cost again for already-seen steps.  Buffer slots
        a kernel allocated lazily snapshot as ``None``; the kernel's own
        snapshot carries their reps.
        """
        return {
            "states": list(self._states),
            "buffers": list(self._buffers),
            "steps": dict(self._steps),
            "deliveries": dict(self._deliveries),
            "sends": dict(self._sends),
            "step_hits": self.step_hits,
            "step_misses": self.step_misses,
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Install a :meth:`snapshot_state` payload into this codec.

        Derived tables (reverse id maps, per-state outputs, per-buffer
        enabled-event caches) are rebuilt rather than stored: they are
        pure functions of the id lists, and rebuilding keeps the
        snapshot small and impossible to de-synchronize.
        """
        self._states = list(state["states"])
        self._state_ids = {s: i for i, s in enumerate(self._states)}
        self._state_output = [
            s.output if s.decided else None for s in self._states
        ]
        self._buffers = list(state["buffers"])
        # Placeholder slots (a kernel checkpoint's lazily-allocated
        # buffers) stay out of the rich index; the kernel's restored rep
        # index is their identity until they materialize.
        self._buffer_ids = {
            b: i for i, b in enumerate(self._buffers) if b is not None
        }
        self._buffer_events = [None] * len(self._buffers)
        self._steps = dict(state["steps"])
        self._deliveries = dict(state["deliveries"])
        self._sends = dict(state["sends"])
        self.step_hits = int(state["step_hits"])
        self.step_misses = int(state["step_misses"])
