"""Tests for the Lemma-2 hypercube renderer."""

from repro.analysis.diagrams import hypercube_diagram
from repro.core.valency import ValencyAnalyzer


class TestHypercubeDiagram:
    def test_gray_code_rows_are_adjacent(self, arbiter3, arbiter3_analyzer):
        text = hypercube_diagram(arbiter3_analyzer.classify_initials())
        lines = [l for l in text.splitlines()[1:] if l.strip()]
        assert len(lines) == 8
        previous = None
        for line in lines:
            bits = line.split()[0]
            vector = tuple(int(c) for c in bits)
            if previous is not None:
                assert sum(
                    a != b for a, b in zip(previous, vector)
                ) == 1  # Gray code: one flip per row
                assert "flip p" in line
            previous = vector

    def test_valency_glyphs_present(self, arbiter3_analyzer):
        text = hypercube_diagram(arbiter3_analyzer.classify_initials())
        assert "[±]" in text  # bivalent corners exist for the arbiter
        assert "[0]" in text and "[1]" in text

    def test_boundary_visible_for_input_determined(
        self, wait_for_all3_analyzer
    ):
        text = hypercube_diagram(
            wait_for_all3_analyzer.classify_initials()
        )
        assert "[±]" not in text  # no bivalent corner
        assert "[0]" in text and "[1]" in text

    def test_empty_classification(self):
        assert "empty" in hypercube_diagram({})
