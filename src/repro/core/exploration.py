"""Reachable-configuration graphs.

The proof machinery of the paper quantifies over *accessible*
configurations — those reachable from some initial configuration by a
schedule.  For finite protocol instances the reachable set is a finite
directed graph whose edges are events; this module builds that graph
explicitly, with memoization on configuration identity and an explicit
budget so unbounded protocols degrade to a truthful partial answer
instead of hanging.

The graph is the substrate for exact valency computation
(:mod:`repro.core.valency`): valency is reverse reachability from
decision configurations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.configuration import Configuration
from repro.core.errors import ExplorationLimitExceeded
from repro.core.events import Event
from repro.core.protocol import Protocol

__all__ = [
    "ConfigurationGraph",
    "TransitionCache",
    "explore",
    "reachable_set",
]

#: Default exploration budget (number of distinct configurations).
DEFAULT_MAX_CONFIGURATIONS = 200_000


class TransitionCache:
    """Memoized ``(configuration, event) -> successor`` application.

    The valency analyzer and the adversary explore heavily overlapping
    graphs (the full accessible set, then one event-filtered 𝒞 per
    stage, then each ``e``-successor's own reachable set).  Since the
    model is deterministic, every transition computed once can be
    reused across all of them; sharing one cache turns re-exploration
    into dictionary lookups.

    The cache belongs to exactly one protocol — mixing protocols would
    conflate transition functions — which :meth:`apply` asserts.
    """

    def __init__(self, protocol: "Protocol"):
        self.protocol = protocol
        self._transitions: dict[
            tuple[Configuration, Event], Configuration
        ] = {}

    def apply(
        self, protocol: "Protocol", configuration: Configuration,
        event: Event,
    ) -> Configuration:
        """``e(C)``, memoized."""
        if protocol is not self.protocol:
            raise ValueError(
                "TransitionCache is bound to a different protocol"
            )
        key = (configuration, event)
        successor = self._transitions.get(key)
        if successor is None:
            successor = protocol.apply_event(configuration, event)
            self._transitions[key] = successor
        return successor

    def __len__(self) -> int:
        return len(self._transitions)


@dataclass
class ConfigurationGraph:
    """The explored portion of the configuration graph rooted at ``root``.

    Attributes
    ----------
    root:
        The configuration exploration started from.
    configurations:
        Every explored configuration, indexed by node id.  ``root`` is
        node 0.
    successors:
        ``successors[i]`` lists ``(event, j)`` pairs: applying ``event``
        to configuration ``i`` yields configuration ``j``.  Populated
        only for *expanded* nodes.
    predecessors:
        Reverse adjacency (node ids only), for reverse reachability.
    frontier:
        Node ids that were discovered but never expanded because the
        budget ran out.  Empty iff :attr:`complete`.
    complete:
        ``True`` iff the reachable set was exhausted — every discovered
        configuration was expanded.  Only then are "cannot reach"
        judgements sound.
    """

    root: Configuration
    configurations: list[Configuration] = field(default_factory=list)
    successors: list[list[tuple[Event, int]]] = field(default_factory=list)
    predecessors: list[list[int]] = field(default_factory=list)
    frontier: set[int] = field(default_factory=set)
    complete: bool = True
    _index: dict[Configuration, int] = field(default_factory=dict)

    def node_id(self, configuration: Configuration) -> int:
        """The id of *configuration* in this graph.

        Raises
        ------
        KeyError
            If the configuration was not discovered during exploration.
        """
        return self._index[configuration]

    def __contains__(self, configuration: Configuration) -> bool:
        return configuration in self._index

    def __len__(self) -> int:
        return len(self.configurations)

    def nodes_reaching(self, targets: set[int]) -> set[int]:
        """All node ids with a path into *targets* (including targets).

        This is reverse BFS over :attr:`predecessors` — the primitive
        underlying valency: a configuration is (say) 0-valent iff it
        reaches a 0-decision configuration and no 1-decision one.
        """
        seen = set(targets)
        queue = deque(targets)
        while queue:
            node = queue.popleft()
            for predecessor in self.predecessors[node]:
                if predecessor not in seen:
                    seen.add(predecessor)
                    queue.append(predecessor)
        return seen

    def decision_nodes(self, value: int) -> set[int]:
        """Node ids of configurations having decision value *value*."""
        return {
            i
            for i, configuration in enumerate(self.configurations)
            if value in configuration.decision_values()
        }

    def iter_edges(self) -> Iterator[tuple[int, Event, int]]:
        """Iterate over all edges as ``(source, event, target)``."""
        for source, out in enumerate(self.successors):
            for event, target in out:
                yield source, event, target


def explore(
    protocol: Protocol,
    root: Configuration,
    max_configurations: int = DEFAULT_MAX_CONFIGURATIONS,
    event_filter: Callable[[Configuration, Event], bool] | None = None,
    include_null: bool = True,
    cache: TransitionCache | None = None,
) -> ConfigurationGraph:
    """Breadth-first exploration of the configuration graph from *root*.

    Parameters
    ----------
    protocol:
        Supplies the step semantics and the enabled-event enumeration.
    root:
        Starting configuration (need not be initial).
    max_configurations:
        Budget on distinct configurations.  When exceeded, the result has
        ``complete=False`` and the unexpanded nodes in ``frontier``; no
        exception is raised (callers needing exactness check
        ``complete``).
    event_filter:
        Optional predicate; events for which it returns ``False`` are not
        taken.  Lemma 3's set 𝒞 ("reachable from C without applying e")
        is exploration with the filter ``event != e``.
    include_null:
        Whether null-delivery events are explored.  The model always
        allows them; protocols designed so that null deliveries are
        no-ops keep the graph small either way, but excluding them is
        useful for delivery-only analyses.
    cache:
        Optional shared :class:`TransitionCache`; explorations with
        overlapping state spaces (the valency analyzer, the adversary's
        per-stage 𝒞 searches) reuse each other's computed transitions.
    """
    graph = ConfigurationGraph(root=root)
    graph.configurations.append(root)
    graph.successors.append([])
    graph.predecessors.append([])
    graph._index[root] = 0

    queue: deque[int] = deque([0])
    expanded: set[int] = set()

    while queue:
        node = queue.popleft()
        if node in expanded:
            continue
        expanded.add(node)
        configuration = graph.configurations[node]
        for event in protocol.enabled_events(
            configuration, include_null=include_null
        ):
            if event_filter is not None and not event_filter(
                configuration, event
            ):
                continue
            if cache is not None:
                successor = cache.apply(protocol, configuration, event)
            else:
                successor = protocol.apply_event(configuration, event)
            existing = graph._index.get(successor)
            if existing is None:
                if len(graph.configurations) >= max_configurations:
                    # Budget exhausted: record the truthful partial result.
                    graph.complete = False
                    graph.frontier = {
                        n
                        for n in range(len(graph.configurations))
                        if n not in expanded
                    }
                    # The current node is only partially expanded.
                    graph.frontier.add(node)
                    return graph
                existing = len(graph.configurations)
                graph.configurations.append(successor)
                graph.successors.append([])
                graph.predecessors.append([])
                graph._index[successor] = existing
                queue.append(existing)
            graph.successors[node].append((event, existing))
            if node not in graph.predecessors[existing]:
                graph.predecessors[existing].append(node)

    graph.complete = True
    graph.frontier = set()
    return graph


def reachable_set(
    protocol: Protocol,
    root: Configuration,
    max_configurations: int = DEFAULT_MAX_CONFIGURATIONS,
    require_complete: bool = False,
) -> set[Configuration]:
    """The set of configurations reachable from *root*.

    With ``require_complete=True`` an incomplete exploration raises
    :class:`ExplorationLimitExceeded` instead of returning a partial set.
    """
    graph = explore(protocol, root, max_configurations=max_configurations)
    if require_complete and not graph.complete:
        raise ExplorationLimitExceeded(
            f"reachable set from {root!r} exceeds "
            f"{max_configurations} configurations"
        )
    return set(graph.configurations)
